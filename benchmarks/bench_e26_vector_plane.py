"""E26 — Vectorized sample plane vs. the PR 3 interned scalar kernel.

The vector plane's pitch (PR 4): draw whole batches of repairs as packed
``uint64`` bitset rows (one ``numpy`` call per batch instead of one
``randrange`` per block per sample) and count witness hits with column
reductions instead of per-sample subset tests.  This bench reuses the E21
inconsistency-sweep instance shape and scores the same all-candidates
workload on both planes:

* **interned scalar** — PR 3's kernel, pinned via ``backend="scalar"``:
  mask draws one sample at a time, integer subset tests per (candidate,
  sample);
* **vector** — ``backend="vector"``: the same witness semantics over the
  packed sample matrix.

The two planes are *different deterministic streams* (each reproducible
under its own seed contract), so the cross-plane estimates agree
statistically, not bit-for-bit.  The bit-for-bit assertion here is the
**decode-parity harness**: every vector estimate is recomputed by decoding
the plane's outcome matrices through the scalar mask construction and
re-counting hits in pure Python — those recomputed estimates must equal
the packed-plane estimates exactly.  Speedup is asserted at ≥ 3× per
sample for both generators, and an end-to-end ``batch_estimate`` run is
timed on both planes (vector reruns asserted identical).
"""

import random
import time

from repro.chains.generators import M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.engine import DEFAULT_BATCH_SIZE, BatchRequest, EstimationSession, batch_estimate
from repro.workloads.inconsistency import database_with_inconsistency

from bench_utils import emit

FACTS = 40
RATIO = 0.6
BLOCK_SIZE = 3
SAMPLES = 32 * DEFAULT_BATCH_SIZE  # whole batches, decode-friendly
SEED = 26
MIN_SPEEDUP = 3.0

GENERATORS = [M_UR, M_US]


def build_workload():
    database, constraints = database_with_inconsistency(
        FACTS, RATIO, block_size=BLOCK_SIZE, rng=random.Random(SEED)
    )
    x, y = var("x"), var("y")
    query = cq((x, y), (atom("R", x, y),))
    candidates = sorted(query.answers(database), key=repr)
    return database, constraints, query, candidates


def prepare_session(database, constraints, generator, backend, query, candidates):
    """A session with structure + witnesses warm.

    Witness enumeration (homomorphism search) is identical on both planes
    and cached per session; keeping it outside the timed region makes the
    measurement about the draw-and-evaluate plane itself.
    """
    session = EstimationSession(database, constraints, generator, backend=backend)
    session.index()
    for candidate in candidates:
        session.witness_masks(query, candidate)
    return session


def run_scalar(session, query, candidates):
    """PR 3's interned kernel, pinned explicitly."""
    pool = session.pool(random.Random(SEED))
    return [
        session.fixed_budget_pooled(pool, query, candidate, samples=SAMPLES).estimate
        for candidate in candidates
    ]


def run_vector(session, query, candidates):
    pool = session.vector_pool(SEED)
    return [
        session.fixed_budget_pooled(pool, query, candidate, samples=SAMPLES).estimate
        for candidate in candidates
    ]


def decode_parity_estimates(database, constraints, generator, query, candidates):
    """Re-derive the vector estimates through the scalar decode path."""
    session = EstimationSession(database, constraints, generator)
    plane = session.vector_plane(SEED)
    masks = []
    batch = 0
    while len(masks) < SAMPLES:
        outcomes, _ = plane.draw_batch(batch, DEFAULT_BATCH_SIZE)
        masks.extend(plane.decode_masks(outcomes))
        batch += 1
    masks = masks[:SAMPLES]
    estimates = []
    for candidate in candidates:
        witnesses = session.witness_masks(query, candidate)
        hits = sum(
            1 for mask in masks if any(w & mask == w for w in witnesses)
        )
        estimates.append(hits / SAMPLES)
    return estimates


def end_to_end(database, constraints, query, candidates):
    """Wall-clock ``batch_estimate`` on both planes (vector rerun asserted)."""
    requests = [
        BatchRequest(
            database,
            constraints,
            generator,
            query,
            answer=candidate,
            epsilon=0.4,
            delta=0.1,
        )
        for generator in GENERATORS
        for candidate in candidates
    ]
    timings = {}
    for backend in ("scalar", "vector"):
        started = time.perf_counter()
        results = batch_estimate(requests, seed=SEED, backend=backend)
        timings[backend] = time.perf_counter() - started
        assert all(r.ok for r in results)
        if backend == "vector":
            rerun = batch_estimate(requests, seed=SEED, backend=backend)
            assert [r.result for r in rerun] == [r.result for r in results]
    return timings


def compare():
    database, constraints, query, candidates = build_workload()
    rows = []
    for generator in GENERATORS:
        scalar_session = prepare_session(
            database, constraints, generator, "scalar", query, candidates
        )
        vector_session = prepare_session(
            database, constraints, generator, "vector", query, candidates
        )
        started = time.perf_counter()
        scalar_estimates = run_scalar(scalar_session, query, candidates)
        scalar_seconds = time.perf_counter() - started
        started = time.perf_counter()
        vector_estimates = run_vector(vector_session, query, candidates)
        vector_seconds = time.perf_counter() - started
        decoded = decode_parity_estimates(
            database, constraints, generator, query, candidates
        )
        rows.append(
            (
                generator.name,
                scalar_estimates,
                vector_estimates,
                decoded,
                scalar_seconds,
                vector_seconds,
            )
        )
    timings = end_to_end(database, constraints, query, candidates)
    return candidates, rows, timings


def test_e26_vector_plane(benchmark):
    candidates, rows, timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert len(candidates) == FACTS
    for name, scalar_estimates, vector_estimates, decoded, scalar_s, vector_s in rows:
        # Decode parity: packed-plane hits equal pure-Python recounts of
        # the same outcome matrices, bit for bit.
        assert vector_estimates == decoded
        # Cross-plane sanity: same distribution, so the all-candidate
        # means sit within Monte-Carlo noise of each other.
        gap = max(
            abs(a - b) for a, b in zip(scalar_estimates, vector_estimates)
        )
        assert gap <= 0.1
        speedup = scalar_s / vector_s
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: vector plane only {speedup:.1f}x faster "
            f"({scalar_s:.3f}s vs {vector_s:.3f}s)"
        )
        emit(
            "E26",
            generator=name,
            candidates=len(candidates),
            samples=SAMPLES,
            scalar_seconds=round(scalar_s, 3),
            vector_seconds=round(vector_s, 3),
            speedup=round(speedup, 1),
            vector_us_per_sample=round(vector_s / SAMPLES * 1e6, 2),
            decode_parity=vector_estimates == decoded,
            max_cross_plane_gap=round(gap, 4),
        )
    emit(
        "E26",
        workload="E21 inconsistency sweep",
        facts=FACTS,
        ratio=RATIO,
        block_size=BLOCK_SIZE,
        batch=DEFAULT_BATCH_SIZE,
        e2e_scalar_seconds=round(timings["scalar"], 3),
        e2e_vector_seconds=round(timings["vector"], 3),
        e2e_speedup=round(timings["scalar"] / timings["vector"], 1),
    )
