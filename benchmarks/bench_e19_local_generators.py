"""E19 — Beyond uniform: local generators and the trust-weighted chain.

Section 7 credits ``M_uo``'s approximability to locality; the library makes
locality an interface.  This bench (a) reproduces the introduction's
source-trust numbers (0.25 / 0.375 / 0.375) with the
``TrustWeightedOperations`` generator, and (b) shows the three engines a
local generator gets for free — explicit chain, exact state-space DP,
leaf-distribution sampler — agreeing with one another.
"""

import random
from collections import Counter
from fractions import Fraction

from repro.chains.local import (
    LocalChainSampler,
    local_answer_probability,
    local_repair_distribution,
)
from repro.chains.trust import TrustWeightedOperations
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.queries import atom, boolean_cq

from bench_utils import emit


def intro_instance():
    schema = Schema.from_spec({"Emp": ["id", "name"]})
    alice = fact("Emp", 1, "Alice")
    tom = fact("Emp", 1, "Tom")
    database = Database([alice, tom], schema=schema)
    constraints = FDSet(schema, [fd("Emp", "id", "name")])
    return database, constraints, alice, tom


def running_instance():
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    database = Database(
        [
            fact("R", "a1", "b1", "c1"),
            fact("R", "a1", "b2", "c2"),
            fact("R", "a2", "b1", "c2"),
        ],
        schema=schema,
    )
    constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    return database, constraints


def test_e19_intro_trust_numbers(benchmark):
    def masses():
        database, constraints, alice, tom = intro_instance()
        generator = TrustWeightedOperations()
        return generator.operation_distribution(database, constraints), alice, tom

    distribution, alice, tom = benchmark(masses)
    by_removed = {op.removed: p for op, p in distribution.items()}
    assert by_removed[frozenset({alice, tom})] == Fraction(1, 4)
    assert by_removed[frozenset({alice})] == Fraction(3, 8)
    assert by_removed[frozenset({tom})] == Fraction(3, 8)
    emit(
        "E19",
        artifact="intro example",
        remove_both="1/4",
        remove_single="3/8 each",
        paper="0.25 / 0.375 / 0.375",
    )


def test_e19_three_engines_agree(benchmark):
    def all_engines():
        database, constraints = running_instance()
        generator = TrustWeightedOperations()
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        chain = generator.chain(database, constraints)
        chain.validate()
        return (
            chain.answer_probability(query),
            local_answer_probability(database, constraints, generator, query),
            local_repair_distribution(database, constraints, generator),
            chain.repair_probabilities(),
        )

    chain_value, dp_value, dp_repairs, chain_repairs = benchmark(all_engines)
    assert chain_value == dp_value
    assert dp_repairs == chain_repairs
    emit(
        "E19",
        generator="M_trust",
        P_via_chain=str(chain_value),
        P_via_dp=str(dp_value),
        repairs=len(dp_repairs),
    )


def test_e19_sampler_fidelity(benchmark):
    database, constraints, alice, tom = intro_instance()
    generator = TrustWeightedOperations.with_trust(
        {alice: Fraction(4, 5), tom: Fraction(2, 5)}
    )
    exact = local_repair_distribution(database, constraints, generator)
    sampler = LocalChainSampler(database, constraints, generator, random.Random(903))

    def sample_block():
        return Counter(sampler.sample() for _ in range(8_000))

    counts = benchmark(sample_block)
    worst = max(
        abs(counts.get(repair, 0) / 8_000 - float(probability))
        for repair, probability in exact.items()
    )
    assert worst < 0.02
    emit(
        "E19",
        trust="alice 0.8 / tom 0.4",
        exact={str(k): str(v) for k, v in sorted(exact.items(), key=lambda x: str(x[0]))},
        worst_abs_deviation=round(worst, 4),
    )
