"""E6 — Theorem 5.1(2): FPRAS for RRFreq under primary keys.

Sweeps random block databases and accuracy targets; for each, compares the
Monte-Carlo estimate (Lemma 5.2 sampler + Lemma 5.3 bound) against the exact
repair relative frequency.  Shape claim: the observed relative error stays
within ε while the sample count grows as the theory predicts.
"""

import random

from repro.approx.fpras import fpras_ocqa
from repro.chains.generators import M_UR
from repro.core.queries import atom, boolean_cq
from repro.exact import rrfreq
from repro.workloads import random_block_database

from bench_utils import emit, relative_error

EPSILONS = [0.5, 0.25, 0.15]


def build_instance(seed):
    rng = random.Random(seed)
    database, constraints = random_block_database(4, 3, rng, min_block_size=2)
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    return database, constraints, query


def run_sweep():
    results = []
    for seed in (100, 101):
        database, constraints, query = build_instance(seed)
        exact = float(rrfreq(database, constraints, query))
        for epsilon in EPSILONS:
            estimate = fpras_ocqa(
                database,
                constraints,
                M_UR,
                query,
                epsilon=epsilon,
                delta=0.1,
                method="dklr",
                rng=random.Random(seed + int(epsilon * 1000)),
            )
            results.append((seed, epsilon, exact, estimate))
    return results


def test_e6_fpras_rrfreq(benchmark):
    results = benchmark(run_sweep)
    failures = 0
    for seed, epsilon, exact, estimate in results:
        error = relative_error(estimate.estimate, exact)
        emit(
            "E6",
            seed=seed,
            epsilon=epsilon,
            exact=round(exact, 4),
            estimate=round(estimate.estimate, 4),
            rel_error=round(error, 4),
            samples=estimate.samples_used,
        )
        if error > epsilon:
            failures += 1
    # δ = 0.1 per run over 6 runs: allow at most one excursion.
    assert failures <= 1
    emit("E6", runs=len(results), error_excursions=failures, delta=0.1)


def test_e6_sampler_throughput(benchmark):
    """Per-sample cost of the repair sampler on a mid-size instance."""
    from repro.sampling.repair_sampler import RepairSampler

    database, constraints = random_block_database(
        40, 5, random.Random(7), min_block_size=2
    )
    sampler = RepairSampler(database, constraints, rng=random.Random(8))
    repair = benchmark(sampler.sample)
    assert constraints.satisfied_by(repair)
