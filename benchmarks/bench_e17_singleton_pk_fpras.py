"""E17 — Appendix E positive results: singleton-operation FPRASes.

Theorems E.1(2) and E.8(2): under primary keys, ``rrfreq¹`` and ``srfreq¹``
admit FPRASes via the Lemma E.2 sampler (one fact per block) and the
Lemma E.9 sequence sampler, with the ``1/|D|^{|Q|}`` bounds of Lemmas
E.3/E.10.
"""

import random

from repro.approx.bounds import singleton_frequency_lower_bound
from repro.approx.fpras import fpras_ocqa
from repro.chains.generators import M_UR1, M_US1
from repro.core.queries import atom, boolean_cq
from repro.exact import rrfreq1, srfreq1
from repro.workloads import random_block_database

from bench_utils import emit, relative_error


def build_instance(seed):
    rng = random.Random(seed)
    database, constraints = random_block_database(4, 3, rng, min_block_size=2)
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    return database, constraints, query


def run_sweep():
    results = []
    for seed in (800, 801):
        database, constraints, query = build_instance(seed)
        exact_r = float(rrfreq1(database, constraints, query))
        exact_s = float(srfreq1(database, constraints, query))
        estimate_r = fpras_ocqa(
            database, constraints, M_UR1, query,
            epsilon=0.2, delta=0.1, method="dklr", rng=random.Random(seed + 1),
        )
        estimate_s = fpras_ocqa(
            database, constraints, M_US1, query,
            epsilon=0.2, delta=0.1, method="dklr", rng=random.Random(seed + 2),
        )
        results.append((seed, database, query, exact_r, estimate_r, exact_s, estimate_s))
    return results


def test_e17_singleton_fpras(benchmark):
    results = benchmark(run_sweep)
    failures = 0
    for seed, database, query, exact_r, est_r, exact_s, est_s in results:
        bound = float(singleton_frequency_lower_bound(database, query))
        assert exact_r == 0 or exact_r >= bound
        assert exact_s == 0 or exact_s >= bound
        error_r = relative_error(est_r.estimate, exact_r)
        error_s = relative_error(est_s.estimate, exact_s)
        emit(
            "E17",
            seed=seed,
            rrfreq1_exact=round(exact_r, 4),
            rrfreq1_estimate=round(est_r.estimate, 4),
            srfreq1_exact=round(exact_s, 4),
            srfreq1_estimate=round(est_s.estimate, 4),
        )
        failures += (error_r > 0.2) + (error_s > 0.2)
    assert failures <= 1
    emit("E17", claim="Theorems E.1(2)/E.8(2) hold empirically", excursions=failures)


def test_e17_singleton_sampler_throughput(benchmark):
    from repro.sampling.repair_sampler import RepairSampler

    database, constraints = random_block_database(
        40, 5, random.Random(810), min_block_size=2
    )
    sampler = RepairSampler(
        database, constraints, singleton_only=True, rng=random.Random(811)
    )
    repair = benchmark(sampler.sample)
    assert constraints.satisfied_by(repair)
