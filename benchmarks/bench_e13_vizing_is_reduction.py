"""E13 — Proposition 5.5 / Lemmas 5.4, E.4: graphs as key-conflict databases.

Regenerates the ``|CORep(D_G, Σ_K)| = |IS(G)|`` identity (and the non-empty
variant for singleton operations) on bounded-degree connected graphs via
the Misra–Gries edge colouring, and times the polynomial construction.
"""

import random

from repro.core.conflict_graph import ConflictGraph
from repro.exact import count_candidate_repairs
from repro.reductions.vizing import independent_set_database
from repro.workloads.graphs import random_connected_bounded_degree_graph

from bench_utils import emit


def identity_sweep():
    rows = []
    for seed, n_nodes in ((500, 5), (501, 6), (502, 7), (503, 8)):
        graph = random_connected_bounded_degree_graph(
            n_nodes, 3, random.Random(seed)
        )
        instance = independent_set_database(graph)
        corep = count_candidate_repairs(instance.database, instance.constraints)
        corep1 = count_candidate_repairs(
            instance.database, instance.constraints, singleton_only=True
        )
        rows.append((seed, graph, instance, corep, corep1))
    return rows


def test_e13_identity(benchmark):
    rows = benchmark(identity_sweep)
    for seed, graph, instance, corep, corep1 in rows:
        independent_sets = graph.count_independent_sets()
        assert corep == independent_sets  # Lemma 5.4 via Prop 5.5
        assert corep1 == independent_sets - 1  # Lemma E.4
        conflict = ConflictGraph.of(instance.database, instance.constraints)
        assert conflict.edge_count() == graph.edge_count()
        emit(
            "E13",
            seed=seed,
            nodes=graph.node_count(),
            edges=graph.edge_count(),
            corep=corep,
            independent_sets=independent_sets,
            corep1=corep1,
        )
    emit("E13", identity="|CORep| = |IS(G)|, |CORep1| = |IS(G)| - 1")


def test_e13_construction_cost(benchmark):
    """The encoding (including Misra–Gries) is polynomial — time it at n=40."""
    graph = random_connected_bounded_degree_graph(40, 4, random.Random(510))

    def construct():
        return independent_set_database(graph)

    instance = benchmark(construct)
    relation = instance.constraints.schema.relation("R")
    assert relation.arity == graph.max_degree() + 1
    emit(
        "E13",
        construction="Misra-Gries + facts",
        nodes=40,
        arity=relation.arity,
        keys=len(instance.constraints),
    )
