"""E9 — Theorem 7.5 / Lemma D.8: M_uo,1 FPRAS for arbitrary FDs.

Singleton operations restore approximability for general FDs: the walker of
Lemma D.7 plus Lemma D.8's ``1/(e|D|)^{|Q|}`` bound.  Instances mix star
FDs (the Prop D.6 gadget shape) and the running example's two-FD pattern.
"""

import random

from repro.approx.bounds import uo_singleton_fd_lower_bound
from repro.approx.fpras import fpras_ocqa
from repro.chains.generators import M_UO1
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.queries import atom, boolean_cq
from repro.exact import uniform_operations_answer_probability
from repro.workloads import fd_star_database

from bench_utils import emit, relative_error


def instances():
    built = []
    database, constraints = fd_star_database(n_stars=2, spokes_per_star=3)
    built.append(("fd_stars", database, constraints, boolean_cq(atom("R", "s0", 0, 0))))
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    two_fd = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    chain_db = Database(
        [
            fact("R", "a1", "b1", "c1"),
            fact("R", "a1", "b2", "c2"),
            fact("R", "a2", "b1", "c2"),
            fact("R", "a2", "b3", "c3"),
        ],
        schema=schema,
    )
    built.append(
        ("two_fds", chain_db, two_fd, boolean_cq(atom("R", "a1", "b1", "c1")))
    )
    return built


def run_sweep():
    results = []
    for name, database, constraints, query in instances():
        exact = float(
            uniform_operations_answer_probability(
                database, constraints, query, singleton_only=True
            )
        )
        estimate = fpras_ocqa(
            database,
            constraints,
            M_UO1,
            query,
            epsilon=0.2,
            delta=0.1,
            method="dklr",
            rng=random.Random(hash(name) % 2**31),
        )
        results.append((name, database, query, exact, estimate))
    return results


def test_e9_fpras_uo1_fds(benchmark):
    results = benchmark(run_sweep)
    failures = 0
    for name, database, query, exact, estimate in results:
        error = relative_error(estimate.estimate, exact)
        bound = uo_singleton_fd_lower_bound(database, query)
        assert exact == 0 or exact >= float(bound)  # Lemma D.8
        emit(
            "E9",
            workload=name,
            exact=round(exact, 4),
            estimate=round(estimate.estimate, 4),
            rel_error=round(error, 4),
            samples=estimate.samples_used,
            bound=f"{float(bound):.2e}",
        )
        if error > 0.2:
            failures += 1
    assert failures <= 1
    emit("E9", claim="M_uo,1 FPRAS covers non-key FDs (Theorem 7.5)")


def test_e9_singleton_walker_throughput(benchmark):
    from repro.sampling.operations_sampler import UniformOperationsSampler

    database, constraints = fd_star_database(n_stars=10, spokes_per_star=5)
    walker = UniformOperationsSampler(
        database, constraints, singleton_only=True, rng=random.Random(99)
    )
    repair = benchmark(walker.sample)
    assert constraints.satisfied_by(repair)
