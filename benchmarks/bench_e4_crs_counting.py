"""E4 — Example C.2 / Lemma C.1: polynomial counting of |CRS|.

Regenerates ``|CRS| = 99`` for the Figure 2 database via both the paper's
``P^{k,i}_j`` dynamic program and the shuffle-product DP, cross-checks them
against the exponential state-space count, and times the polynomial DP on a
size sweep (the shape claim: polynomial counting scales where brute force
cannot).
"""

from repro.counting import count_crs_for_block_sizes, count_crs_paper_dp
from repro.exact import count_complete_sequences
from repro.workloads import block_database, figure2_database

from bench_utils import emit

SWEEP = [(3, 2), (4, 4), (5, 5, 5), (6, 6, 6, 6), (8, 8, 8, 8, 8)]


def count_sweep():
    return [count_crs_for_block_sizes(sizes) for sizes in SWEEP]


def test_e4_crs_counting(benchmark):
    counts = benchmark(count_sweep)
    database, constraints = figure2_database()

    # Example C.2.
    assert count_crs_paper_dp((3, 2)) == 99
    assert count_crs_for_block_sizes((3, 2)) == 99
    assert count_complete_sequences(database, constraints) == 99
    emit("E4", artifact="example_C2", crs=99, paper=99)

    for sizes, value in zip(SWEEP, counts):
        assert value == count_crs_paper_dp(sizes)
        emit("E4", block_sizes=sizes, crs=value)

    # Shape: the polynomial DP handles instances whose |CRS| is astronomically
    # beyond enumeration.
    big = count_crs_for_block_sizes(tuple([10] * 10))
    assert big > 10**40
    emit("E4", block_sizes="10 x 10", crs_digits=len(str(big)))


def test_e4_paper_dp_timing(benchmark):
    value = benchmark(count_crs_paper_dp, (6, 6, 6, 6))
    assert value == count_crs_for_block_sizes((6, 6, 6, 6))


def test_e4_bruteforce_crossover(benchmark):
    """Exponential state-space counting on the largest instance it can take."""
    database, constraints = block_database([4, 4])

    def brute():
        return count_complete_sequences(database, constraints)

    value = benchmark(brute)
    assert value == count_crs_for_block_sizes((4, 4))
    emit("E4", crossover="state-space DP at (4,4)", crs=value)
