"""E3 — Example B.3: rrfreq = 1/4 and the Lemma 5.3 lower bound 1/12.

Regenerates the worked rrfreq computation of Example B.3 (query
``Ans(x) :- R(a1, x)``, answer ``b1``) and sweeps the Lemma 5.3 bound over
every single-fact query of the database.
"""

from fractions import Fraction

from repro.approx.bounds import rrfreq_lower_bound
from repro.core.queries import atom, boolean_cq, cq, var
from repro.exact import rrfreq
from repro.workloads import figure2_database

from bench_utils import emit


def compute_example_b3():
    database, constraints = figure2_database()
    x = var("x")
    query = cq((x,), (atom("R", "a1", x),))
    return rrfreq(database, constraints, query, ("b1",))


def test_e3_rrfreq_and_bound(benchmark):
    value = benchmark(compute_example_b3)
    database, constraints = figure2_database()

    assert value == Fraction(1, 4)  # Example B.3: 3 of 12 repairs
    x = var("x")
    query = cq((x,), (atom("R", "a1", x),))
    bound = rrfreq_lower_bound(database, query)
    assert bound == Fraction(1, 12)  # (2 * 6)^1
    assert value >= bound

    emit("E3", artifact="example_B3", rrfreq=str(value), paper="1/4")
    emit("E3", bound="Lemma 5.3", value=str(bound), paper="1/12")

    # The bound holds for every positive single-fact query.
    violations = 0
    for f in database.sorted_facts():
        single = boolean_cq(atom("R", *f.values))
        freq = rrfreq(database, constraints, single)
        if freq > 0 and freq < rrfreq_lower_bound(database, single):
            violations += 1
    assert violations == 0
    emit("E3", sweep="all single-fact queries", bound_violations=violations)
