"""E11 — Theorems 5.1(1), 6.1(1), 7.1(1): the ♯H-Coloring reduction.

Validates the Turing reduction's oracle identity
``|hom(G, H)| = 3^{|V|} (1 - rrfreq)`` on a family of graphs, the
cross-semantics identities ``rrfreq = srfreq = P_{M_uo}`` on ``D_G``
(Appendices C.1 and D.1), and shows the exponential growth of exact
computation on these instances (the ♯P-hardness shape).
"""

import time

from repro.exact import rrfreq, srfreq, uniform_operations_answer_probability
from repro.reductions.graphs import complete_graph, cycle_graph, path_graph
from repro.reductions.hcoloring import (
    count_h_colorings,
    hcoloring_instance,
    hom_count_via_oracle,
)

from bench_utils import emit

GRAPHS = [
    ("P2", path_graph(2)),
    ("P3", path_graph(3)),
    ("C3", cycle_graph(3)),
    ("C4", cycle_graph(4)),
    ("K3", complete_graph(3)),
]


def oracle_identity_sweep():
    rows = []
    for name, graph in GRAPHS:
        instance = hcoloring_instance(graph)

        def oracle(database, answer, _constraints=instance.constraints, _q=instance.query):
            return rrfreq(database, _constraints, _q, answer)

        via_oracle = hom_count_via_oracle(graph, oracle)
        brute = count_h_colorings(graph)
        rows.append((name, graph, via_oracle, brute))
    return rows


def test_e11_oracle_identity(benchmark):
    rows = benchmark(oracle_identity_sweep)
    for name, graph, via_oracle, brute in rows:
        assert via_oracle == brute
        emit(
            "E11",
            graph=name,
            hom_via_oracle=via_oracle,
            hom_bruteforce=brute,
            repair_space=3 ** graph.node_count(),
        )
    emit("E11", identity="HOM(G) = 3^|V| (1 - rrfreq)", status="exact match")


def test_e11_cross_semantics_identities(benchmark):
    def all_semantics():
        instance = hcoloring_instance(path_graph(3))
        r = rrfreq(instance.database, instance.constraints, instance.query)
        s = srfreq(instance.database, instance.constraints, instance.query)
        u = uniform_operations_answer_probability(
            instance.database, instance.constraints, instance.query
        )
        return r, s, u

    r, s, u = benchmark(all_semantics)
    assert r == s == u
    emit("E11", identity="rrfreq = srfreq = P_uo on D_G", value=str(r))


def test_e11_exact_cost_grows_exponentially(benchmark):
    """Shape of ♯P-hardness: exact rrfreq time explodes with |V|."""

    def timed_sweep():
        timings = []
        for n in (2, 3, 4, 5):
            instance = hcoloring_instance(path_graph(n))
            start = time.perf_counter()
            rrfreq(instance.database, instance.constraints, instance.query)
            timings.append((n, time.perf_counter() - start))
        return timings

    timings = benchmark.pedantic(timed_sweep, rounds=1, iterations=1)
    for n, elapsed in timings:
        emit("E11", nodes=n, repairs=3**n, exact_seconds=round(elapsed, 4))
    # Growth factor between consecutive sizes should exceed the 3x repair
    # space growth eventually; require monotone increase as the weak shape.
    assert timings[-1][1] > timings[0][1]
