"""E25 — Interned-fact kernel vs. the object path, per-sample throughput.

The kernel's pitch (PR 3): after interning ``(D, Σ)`` once into dense fact
ids, a sampled repair is an *int bitmask* — drawn without constructing
``Operation``/``Database`` objects, and evaluated against witness masks
with integer subset tests.  This bench takes the E21 inconsistency-sweep
instance shape and runs the same all-candidates workload twice:

* **object path** — the pre-kernel implementation, reconstructed verbatim
  from public APIs: object samplers (one ``Database``/sequence per draw), a
  retained fact-set sample list, frozenset-containment witness checks;
* **interned** — an :class:`EstimationSession` with the kernel (default):
  mask draws into a :class:`~repro.engine.session.SamplePool`, mask
  witness evaluation.

Both paths are seeded identically, so — by the RNG-parity contract asserted
in ``tests/test_interning.py`` — the estimates are **bit-for-bit
identical**; the kernel is a pure speedup, asserted here at ≥ 3× per sample
for both the uniform-repairs and uniform-sequences generators.
"""

import random
import time

from repro.chains.generators import M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.engine import EstimationSession
from repro.sampling.sequence_sampler import SequenceSampler
from repro.workloads.inconsistency import database_with_inconsistency

from bench_utils import emit

FACTS = 40
RATIO = 0.6
BLOCK_SIZE = 3
SAMPLES = 1500
SEED = 25
MIN_SPEEDUP = 3.0

GENERATORS = [M_UR, M_US]


def build_workload():
    database, constraints = database_with_inconsistency(
        FACTS, RATIO, block_size=BLOCK_SIZE, rng=random.Random(SEED)
    )
    x, y = var("x"), var("y")
    query = cq((x, y), (atom("R", x, y),))
    candidates = sorted(query.answers(database), key=repr)
    return database, constraints, query, candidates


def run_object_path(database, constraints, generator, query, candidates):
    """The seed implementation's draw-and-evaluate loop, faithfully."""
    session = EstimationSession(database, constraints, generator, use_kernel=False)
    witnesses = {c: session.witnesses(query, c) for c in candidates}
    sampler = session.sampler(random.Random(SEED))
    draw = (
        sampler.sample_result
        if isinstance(sampler, SequenceSampler)
        else sampler.sample
    )
    samples = [draw().facts for _ in range(SAMPLES)]
    return [
        sum(
            1
            for sample in samples
            if any(witness <= sample for witness in witnesses[candidate])
        )
        / SAMPLES
        for candidate in candidates
    ]


def run_interned(database, constraints, generator, query, candidates):
    session = EstimationSession(database, constraints, generator)
    pool = session.pool(random.Random(SEED))
    return [
        session.fixed_budget_pooled(pool, query, candidate, samples=SAMPLES).estimate
        for candidate in candidates
    ]


def compare():
    database, constraints, query, candidates = build_workload()
    rows = []
    for generator in GENERATORS:
        started = time.perf_counter()
        object_estimates = run_object_path(
            database, constraints, generator, query, candidates
        )
        object_seconds = time.perf_counter() - started
        started = time.perf_counter()
        interned_estimates = run_interned(
            database, constraints, generator, query, candidates
        )
        interned_seconds = time.perf_counter() - started
        rows.append(
            (
                generator.name,
                object_estimates,
                interned_estimates,
                object_seconds,
                interned_seconds,
            )
        )
    return candidates, rows


def test_e25_interned_kernel(benchmark):
    candidates, rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert len(candidates) == FACTS  # every fact is a candidate of R(x, y)
    for name, object_estimates, interned_estimates, object_seconds, interned_seconds in rows:
        # The RNG-parity contract: identical streams, identical witness
        # semantics, hence bit-for-bit identical estimates.
        assert interned_estimates == object_estimates
        speedup = object_seconds / interned_seconds
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: interned kernel only {speedup:.1f}x faster "
            f"({object_seconds:.3f}s vs {interned_seconds:.3f}s)"
        )
        per_sample_us = interned_seconds / SAMPLES * 1e6
        emit(
            "E25",
            generator=name,
            candidates=len(candidates),
            samples=SAMPLES,
            object_seconds=round(object_seconds, 3),
            interned_seconds=round(interned_seconds, 3),
            speedup=round(speedup, 1),
            interned_us_per_sample=round(per_sample_us, 1),
            identical_estimates=interned_estimates == object_estimates,
        )
    emit(
        "E25",
        workload="E21 inconsistency sweep",
        facts=FACTS,
        ratio=RATIO,
        block_size=BLOCK_SIZE,
    )
