"""E7 — Theorem 6.1(2): FPRAS for SRFreq under primary keys.

Same sweep as E6 but over the sequence semantics: the Algorithm 1 sampler
(backed by the Lemma C.1 counting DP) plus the Lemma 6.3 bound.
"""

import random

from repro.approx.fpras import fpras_ocqa
from repro.chains.generators import M_US
from repro.core.queries import atom, boolean_cq
from repro.exact import srfreq
from repro.workloads import random_block_database

from bench_utils import emit, relative_error

EPSILONS = [0.5, 0.25, 0.15]


def build_instance(seed):
    rng = random.Random(seed)
    database, constraints = random_block_database(3, 3, rng, min_block_size=2)
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    return database, constraints, query


def run_sweep():
    results = []
    for seed in (200, 201):
        database, constraints, query = build_instance(seed)
        exact = float(srfreq(database, constraints, query))
        for epsilon in EPSILONS:
            estimate = fpras_ocqa(
                database,
                constraints,
                M_US,
                query,
                epsilon=epsilon,
                delta=0.1,
                method="dklr",
                rng=random.Random(seed + int(epsilon * 1000)),
            )
            results.append((seed, epsilon, exact, estimate))
    return results


def test_e7_fpras_srfreq(benchmark):
    results = benchmark(run_sweep)
    failures = 0
    for seed, epsilon, exact, estimate in results:
        error = relative_error(estimate.estimate, exact)
        emit(
            "E7",
            seed=seed,
            epsilon=epsilon,
            exact=round(exact, 4),
            estimate=round(estimate.estimate, 4),
            rel_error=round(error, 4),
            samples=estimate.samples_used,
        )
        if error > epsilon:
            failures += 1
    assert failures <= 1
    emit("E7", runs=len(results), error_excursions=failures, delta=0.1)


def test_e7_sequence_sampler_throughput(benchmark):
    """Per-sample cost of Algorithm 1 on a mid-size instance."""
    from repro.sampling.sequence_sampler import SequenceSampler

    database, constraints = random_block_database(
        12, 4, random.Random(9), min_block_size=2
    )
    sampler = SequenceSampler(database, constraints, rng=random.Random(10))
    sequence = benchmark(sampler.sample)
    assert sequence.is_complete(database, constraints)
