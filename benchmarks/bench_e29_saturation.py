"""E29 — Graceful degradation at 4x saturation, faults included.

E27 showed the service plane is *fast*; this experiment shows it is
*safe to saturate*.  The load-test harness (PR 7) drives a real
``python -m repro serve`` subprocess through its phases with every
fault enabled — slow handlers against client deadline budgets, poisoned
answer-cache entries, malformed bodies mid-burst, and a SIGKILL-ed
worker restarted mid-storm — and the bench asserts the operational
claims as hard numbers:

* the overload swarm offers ≥ 4x the measured saturation throughput;
* admitted requests keep p99 ≤ 5x the unloaded p99 (server-side
  histogram, so the bound is on what the server delivered, not on
  harness scheduling noise);
* the overflow is *rejected* — 429 with ``Retry-After`` on every one,
  never a reset or unbounded queueing;
* every admitted row is bit-identical to the offline
  ``batch_estimate(seed=...)`` run, across the poisoning and the
  process restart.

The accuracy target is deliberately aggressive (``epsilon = 0.006``):
per-request sampling then dominates fixed per-call overhead, so the
admission bound — not the HTTP layer — is what saturates, and the
backoff-limited rejection churn of the closed-loop swarm sits far above
the admitted ceiling.  At looser epsilons the same harness still
passes, but "4x saturation" would mostly measure client spin rather
than server work.
"""

from repro.service.loadtest import LoadTestConfig, format_report, run_loadtest

from bench_utils import emit

CONFIG = LoadTestConfig(
    epsilon=0.006,
    overload_seconds=4.0,
    inject_slow=True,
    inject_poison=True,
    inject_malformed=True,
    inject_kill=True,
    check_p99=True,
    p99_degradation_limit=5.0,
)
MIN_OVERLOAD_FACTOR = 4.0


def saturate():
    report = run_loadtest(CONFIG)
    print(format_report(report))
    return report


def test_e29_saturation(benchmark):
    report = benchmark.pedantic(saturate, rounds=1, iterations=1)
    assert report.ok, format_report(report)
    overload_factor = report.overload_offered_rps / max(report.saturation_rps, 1e-9)
    p99_factor = report.overload_admitted_p99 / max(report.unloaded_p99, 1e-9)
    assert overload_factor >= MIN_OVERLOAD_FACTOR, (
        f"overload phase offered only {overload_factor:.1f}x the saturation "
        f"throughput ({report.overload_offered_rps:.1f} vs "
        f"{report.saturation_rps:.1f} rps); the admission bound was never "
        "genuinely exceeded"
    )
    assert p99_factor <= CONFIG.p99_degradation_limit
    assert report.overload_rejected > 0
    assert report.rejected_missing_retry_after == 0
    assert report.bit_identity_checked > 0
    assert report.bit_identity_failures == 0
    assert report.poisoned_detected > 0
    assert report.deadline_hits > 0
    assert report.malformed_probes == 5
    assert report.metrics_violations == []
    emit(
        "E29",
        epsilon=CONFIG.epsilon,
        saturation_rps=round(report.saturation_rps, 1),
        overload_offered_rps=round(report.overload_offered_rps, 1),
        overload_factor=round(overload_factor, 1),
        unloaded_p99_ms=round(report.unloaded_p99 * 1000, 1),
        overload_admitted_p99_ms=round(report.overload_admitted_p99 * 1000, 1),
        p99_factor=round(p99_factor, 2),
        overload_admitted=report.overload_admitted,
        overload_rejected=report.overload_rejected,
        rejected_missing_retry_after=report.rejected_missing_retry_after,
        cache_hits=report.cache_hits,
        deadline_hits=report.deadline_hits,
        poisoned_detected=report.poisoned_detected,
        malformed_probes=report.malformed_probes,
        bit_identity_checked=report.bit_identity_checked,
        bit_identity_failures=report.bit_identity_failures,
        metrics_scrapes=report.metrics_scrapes,
        faults=["slow", "poison", "malformed", "kill"],
    )
