"""E14 — Lemma 5.6: the FD amplifier and the FPRAS-transfer algorithm.

Regenerates the count identity ``|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1``,
the rrfreq identity ``1 / (count + 1)``, and runs the transfer algorithm A
with (a) the exact rrfreq oracle (recovering the count exactly) and (b) a
Monte-Carlo oracle (recovering it within the ε schedule).
"""

import random
from fractions import Fraction

from repro.exact import count_candidate_repairs, rrfreq
from repro.reductions.fd_amplifier import amplify, repair_count_via_rrfreq
from repro.reductions.graphs import cycle_graph, path_graph
from repro.reductions.vizing import independent_set_database
from repro.sampling.operations_sampler import UniformOperationsSampler

from bench_utils import emit, relative_error

GRAPHS = [("P3", path_graph(3)), ("P4", path_graph(4)), ("C4", cycle_graph(4))]


def amplifier_sweep():
    rows = []
    for name, graph in GRAPHS:
        keys_instance = independent_set_database(graph)
        base_count = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints
        )
        amplified = amplify(keys_instance.database, keys_instance.constraints)
        amplified_count = count_candidate_repairs(
            amplified.database, amplified.constraints
        )
        frequency = rrfreq(amplified.database, amplified.constraints, amplified.query)
        rows.append((name, keys_instance, base_count, amplified_count, frequency))
    return rows


def test_e14_amplifier_identities(benchmark):
    rows = benchmark(amplifier_sweep)
    for name, keys_instance, base_count, amplified_count, frequency in rows:
        assert amplified_count == base_count + 1
        assert frequency == Fraction(1, base_count + 1)
        emit(
            "E14",
            graph=name,
            corep_keys=base_count,
            corep_amplified=amplified_count,
            rrfreq=str(frequency),
        )
    emit("E14", identity="|CORep(D_F)| = |CORep(D)| + 1", status="exact")


def test_e14_transfer_with_exact_oracle(benchmark):
    keys_instance = independent_set_database(path_graph(4))
    base = count_candidate_repairs(keys_instance.database, keys_instance.constraints)

    def run():
        return repair_count_via_rrfreq(
            keys_instance.database,
            keys_instance.constraints,
            lambda db, c, q, a: rrfreq(db, c, q, a),
        )

    estimate = benchmark(run)
    assert estimate == base
    emit("E14", oracle="exact rrfreq", estimated_count=str(estimate), true_count=base)


def test_e14_transfer_with_sampling_oracle(benchmark):
    keys_instance = independent_set_database(path_graph(3))
    base = count_candidate_repairs(keys_instance.database, keys_instance.constraints)
    rng = random.Random(600)

    def sampling_oracle(database, constraints, query, answer):
        # A uniform-operations estimator is NOT uniform over repairs in
        # general, but on the amplified star-shaped instance every walk ends
        # in a repair; estimate rrfreq by importance-free counting over the
        # exact repair set sampled via the component structure instead.
        from repro.sampling.repair_sampler import RepairSampler
        from repro.exact import candidate_repairs

        repairs = list(candidate_repairs(database, constraints))
        hits = 0
        n = 4000
        for _ in range(n):
            repair = repairs[rng.randrange(len(repairs))]
            if query.entails(repair, answer):
                hits += 1
        return hits / n

    def run():
        return repair_count_via_rrfreq(
            keys_instance.database,
            keys_instance.constraints,
            sampling_oracle,
            epsilon=0.3,
        )

    estimate = benchmark(run)
    error = relative_error(float(estimate), base)
    assert error <= 0.3
    emit(
        "E14",
        oracle="Monte-Carlo rrfreq (4000 draws)",
        estimated_count=round(float(estimate), 2),
        true_count=base,
        rel_error=round(error, 3),
    )
