"""E27 — Warm-registry service throughput vs per-request cold starts.

The service plane's pitch (PR 5): every pre-service entry point pays the
full group setup — decomposition, interning, witness enumeration, and
above all the Chernoff-budget sampling pass — *per invocation*.  A
long-running :class:`~repro.service.server.EstimationServer` pays it
once per group and answers every further request from the warm
:class:`~repro.service.registry.SessionRegistry`, with concurrent
requests coalesced into single batched passes by the micro-batcher.

The bench drives one mixed workload three ways:

* **offline serial** — one ``batch_estimate(all, seed)`` run: the
  bit-identity reference (and the lower bound on useful work);
* **cold per-request** — ``batch_estimate([r], seed)`` per request: what
  each entry point costs today without the service;
* **warm service** — the same requests as concurrent single-request
  HTTP calls against a :class:`BackgroundServer` from a client thread
  pool, cold admissions included in the measured time.

Assertions: every served row equals its offline twin **bit-for-bit**
(estimate, sample count, method — the content-derived group seeds plus
read-from-zero pools make arrival order irrelevant), the same holds in
adaptive mode, and warm-service throughput is ≥ 3× the cold path.
"""

import random
import time
from concurrent.futures import ThreadPoolExecutor

from repro.chains.generators import M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.engine import BatchRequest, batch_estimate
from repro.io import instance_to_dict
from repro.service import BackgroundServer, ServiceClient
from repro.workloads.inconsistency import database_with_inconsistency

from bench_utils import emit

SEED = 27
DELTA = 0.05
#: Per-generator accuracy targets, tuned so both planes' per-request
#: cold cost is dominated by the sampling pass (the thing the warm
#: registry amortizes), not by fixed setup.
EPSILON = {M_UR: 0.1, M_US: 0.3}
INSTANCES = ((36, 0.5), (44, 0.6))
BLOCK_SIZE = 3
CLIENT_THREADS = 8
MIN_SPEEDUP = 3.0


def build_mix():
    """The load mix: every candidate of a per-pair survival query, over
    two instances and two generators, deterministically shuffled so
    concurrent clients interleave groups."""
    x, y = var("x"), var("y")
    query = cq((x, y), (atom("R", x, y),))
    requests = []
    for facts, ratio in INSTANCES:
        database, constraints = database_with_inconsistency(
            facts, ratio, block_size=BLOCK_SIZE, rng=random.Random(facts)
        )
        candidates = sorted(query.answers(database), key=repr)
        for generator in (M_UR, M_US):
            for candidate in candidates:
                requests.append(
                    BatchRequest(
                        database,
                        constraints,
                        generator,
                        query,
                        answer=candidate,
                        epsilon=EPSILON[generator],
                        delta=DELTA,
                        label=f"inc{facts}",
                    )
                )
    random.Random(SEED).shuffle(requests)
    return query, requests


def run_cold(requests):
    """Today's entry-point cost: one fresh ``batch_estimate`` per request."""
    started = time.perf_counter()
    outcomes = [batch_estimate([request], seed=SEED)[0] for request in requests]
    return outcomes, time.perf_counter() - started


def run_service(server, query, requests):
    """The same mix as concurrent single-request HTTP calls."""

    def score(request):
        client = ServiceClient(server.url)
        return client.estimate(
            request.database,
            request.constraints,
            query,
            list(request.answer),
            generator=request.generator.name,
            epsilon=request.epsilon,
            delta=request.delta,
            label=request.label,
        )

    started = time.perf_counter()
    with ThreadPoolExecutor(CLIENT_THREADS) as executor:
        rows = list(executor.map(score, requests))
    return rows, time.perf_counter() - started


def assert_rows_match(rows, reference):
    for row, outcome in zip(rows, reference):
        assert "error" not in row, row
        assert row["estimate"] == outcome.result.estimate
        assert row["samples"] == outcome.result.samples_used
        assert row["method"] == outcome.result.method


def adaptive_parity(server, query, requests):
    """Adaptive mode over HTTP equals offline adaptive, bit for bit."""
    subset = [r for r in requests if r.generator is M_UR][:40]
    offline = batch_estimate(subset, seed=SEED, mode="adaptive")
    client = ServiceClient(server.url)
    instances = {}
    rows_spec = []
    for request in subset:
        instances[request.label] = instance_to_dict(
            request.database, request.constraints
        )
        rows_spec.append(
            {
                "instance": request.label,
                "generator": request.generator.name,
                "query": str(request.query),
                "answer": list(request.answer),
                "epsilon": request.epsilon,
                "delta": request.delta,
            }
        )
    rows = client.estimate_workload(
        {"mode": "adaptive", "instances": instances, "requests": rows_spec}
    )
    assert_rows_match(rows, offline)
    return len(rows)


def compare():
    query, requests = build_mix()
    started = time.perf_counter()
    offline = batch_estimate(requests, seed=SEED)
    serial_seconds = time.perf_counter() - started
    assert all(outcome.ok for outcome in offline)

    cold, cold_seconds = run_cold(requests)
    assert [c.result for c in cold] == [o.result for o in offline]

    with BackgroundServer(seed=SEED) as server:
        rows, service_seconds = run_service(server, query, requests)
        assert_rows_match(rows, offline)
        # Second pass: everything warm, no draws left to amortize.
        warm_rows, warm_seconds = run_service(server, query, requests)
        assert_rows_match(warm_rows, offline)
        adaptive_rows = adaptive_parity(server, query, requests)
        stats = ServiceClient(server.url).stats()
    return {
        "requests": len(requests),
        "serial_seconds": serial_seconds,
        "cold_seconds": cold_seconds,
        "service_seconds": service_seconds,
        "warm_seconds": warm_seconds,
        "adaptive_rows": adaptive_rows,
        "stats": stats,
    }


def test_e27_service_throughput(benchmark):
    measured = benchmark.pedantic(compare, rounds=1, iterations=1)
    requests = measured["requests"]
    speedup = measured["cold_seconds"] / measured["service_seconds"]
    warm_speedup = measured["cold_seconds"] / measured["warm_seconds"]
    batching = measured["stats"]["batching"]
    registry = measured["stats"]["registry"]
    assert registry["sessions"] == 4  # two instances x two generators
    assert batching["widest_batch"] >= 2  # concurrency actually coalesced
    assert speedup >= MIN_SPEEDUP, (
        f"warm service only {speedup:.1f}x over per-request cold starts "
        f"({measured['cold_seconds']:.2f}s vs {measured['service_seconds']:.2f}s)"
    )
    emit(
        "E27",
        requests=requests,
        groups=registry["sessions"],
        serial_seconds=round(measured["serial_seconds"], 3),
        cold_seconds=round(measured["cold_seconds"], 3),
        service_seconds=round(measured["service_seconds"], 3),
        warm_seconds=round(measured["warm_seconds"], 3),
        speedup=round(speedup, 1),
        warm_speedup=round(warm_speedup, 1),
        cold_rps=round(requests / measured["cold_seconds"], 1),
        service_rps=round(requests / measured["service_seconds"], 1),
        warm_rps=round(requests / measured["warm_seconds"], 1),
        bit_identical=True,
        adaptive_rows=measured["adaptive_rows"],
        coalesced_batches=batching["coalesced_batches"],
        widest_batch=batching["widest_batch"],
    )
