#!/usr/bin/env python3
"""Regenerate the full paper-vs-measured report.

Runs every experiment bench once (no timing repetitions) with output
capture disabled, so all ``[E*]`` rows — the series each experiment
reports — are printed.  This is the source of the measured numbers in
EXPERIMENTS.md.

Run:  python benchmarks/report_all.py
"""

import pathlib
import subprocess
import sys


def main() -> int:
    here = pathlib.Path(__file__).resolve().parent
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(here),
        # Bench modules are named bench_*.py, outside pytest's default
        # test-file pattern, so they need an explicit collection override.
        "-o",
        "python_files=bench_*.py",
        "--benchmark-disable",
        "-q",
        "-s",
    ]
    return subprocess.call(command, cwd=here.parent)


if __name__ == "__main__":
    raise SystemExit(main())
