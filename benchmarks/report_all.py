#!/usr/bin/env python3
"""Regenerate the full paper-vs-measured report.

Runs every experiment bench once (no timing repetitions) with output
capture disabled, so all ``[E*]`` rows — the series each experiment
reports — are printed.  This is the source of the measured numbers in
EXPERIMENTS.md.

With ``--json PATH`` the run additionally parses every ``[E*]`` row into
an aggregate document ``{"E1": [{...}, ...], ..., "E24": [...]}`` and
writes it to ``PATH`` (``-`` for stdout).  The aggregate covers every
collected ``bench_e*.py`` module — the collector derives the expected
experiment ids from the bench filenames and fails loudly if one produced
no rows, so a newly added bench (e.g. ``bench_e24_adaptive_vs_fixed.py``)
cannot silently drop out of the report.

Run:  python benchmarks/report_all.py [--json report.json]
"""

import argparse
import json
import math
import pathlib
import re
import subprocess
import sys

#: ``[E7] key=value  key=value`` — the row format of ``bench_utils.emit``.
_ROW = re.compile(r"^\[(E\d+)\]\s+(.*)$")
_FIELD = re.compile(r"(\w+)=(\S+(?:\s(?![\w]+=)\S+)*)")


def expected_experiments(directory: pathlib.Path) -> list[str]:
    """Experiment ids implied by the bench filenames (``bench_e24_*`` -> E24)."""
    found = []
    for path in sorted(directory.glob("bench_e*.py")):
        match = re.match(r"bench_e(\d+)_", path.name)
        if match:
            found.append(f"E{int(match.group(1))}")
    return found


def parse_value(raw: str):
    """Best-effort typing of an emitted value (int, float, bool, else str).

    Non-finite floats (``inf``/``nan``, e.g. from ``relative_error`` on an
    exact zero) stay strings — ``json.dumps`` would otherwise emit bare
    ``Infinity``/``NaN``, which is not valid JSON.
    """
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            value = caster(raw)
        except ValueError:
            continue
        if isinstance(value, float) and not math.isfinite(value):
            return raw
        return value
    return raw


def aggregate_rows(output: str) -> dict[str, list[dict]]:
    """Parse ``[E*] key=value`` lines into ``{experiment: [row, ...]}``."""
    aggregate: dict[str, list[dict]] = {}
    for line in output.splitlines():
        match = _ROW.match(line.strip())
        if match is None:
            continue
        experiment, rest = match.groups()
        row = {key: parse_value(value) for key, value in _FIELD.findall(rest)}
        aggregate.setdefault(experiment, []).append(row)
    return aggregate


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the aggregate {experiment: rows} JSON here ('-' = stdout)",
    )
    args = parser.parse_args()

    here = pathlib.Path(__file__).resolve().parent
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(here),
        # Bench modules are named bench_*.py, outside pytest's default
        # test-file pattern, so they need an explicit collection override.
        "-o",
        "python_files=bench_*.py",
        "--benchmark-disable",
        "-q",
        "-s",
    ]
    if args.json is None:
        return subprocess.call(command, cwd=here.parent)

    completed = subprocess.run(
        command, cwd=here.parent, capture_output=True, text=True
    )
    # Emit rows go to stderr, pytest chatter to stdout; forward both — but
    # with '--json -' keep stdout pure JSON (chatter joins the rows on
    # stderr so `report_all.py --json - | jq .` works).
    chatter = sys.stderr if args.json == "-" else sys.stdout
    chatter.write(completed.stdout)
    sys.stderr.write(completed.stderr)
    aggregate = aggregate_rows(completed.stdout + "\n" + completed.stderr)
    missing = [e for e in expected_experiments(here) if e not in aggregate]
    if missing:
        print(f"error: no rows collected for {missing}", file=sys.stderr)
        return completed.returncode or 1
    # allow_nan=False backstops parse_value: fail loudly rather than emit
    # bare Infinity/NaN, which strict JSON consumers reject.
    rendered = json.dumps(aggregate, indent=2, sort_keys=True, allow_nan=False)
    if args.json == "-":
        print(rendered)
    else:
        pathlib.Path(args.json).write_text(rendered + "\n", encoding="utf-8")
        print(f"aggregate JSON for {sorted(aggregate)} -> {args.json}", file=sys.stderr)
    return completed.returncode


if __name__ == "__main__":
    raise SystemExit(main())
