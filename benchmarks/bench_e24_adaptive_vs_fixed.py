"""E24 — Adaptive early-stopping estimation vs the fixed Chernoff budget.

The fixed-budget path sizes its sample count from the worst-case positivity
bound (Lemma 5.3: ``1/(2|D|)^{|Q|}``), so the budget *grows with the
database* even when the true probability stays put.  The adaptive layer
(:mod:`repro.approx.adaptive`) watches an anytime empirical-Bernstein /
Hoeffding confidence sequence and stops as soon as the requested relative
accuracy is certified — its cost tracks the (unknown) true probability, not
the worst case, while keeping the same (ε, δ) contract via its fallback
cap.

Two workloads from earlier benches:

* the **E18 protocol** (small block database) — here the fixed budget is
  modest and adaptive stopping is roughly break-even, bounded by its cap;
* the **E21 protocol** (inconsistency-sweep instance, |D| = 60) — the
  fixed budget inflates with |D| and the adaptive run wins ≥ 3× (asserted)
  at equal measured accuracy against the exact survival probability.

The cache leg reruns the E21 workload through ``batch_estimate`` with a
``cache_dir``: the second (warm) run replays persisted samples and returns
bit-for-bit the cold run's estimates.
"""

import random
import tempfile
import time

from repro.approx.montecarlo import chernoff_sample_size
from repro.chains.generators import M_UR
from repro.core.queries import atom, boolean_cq
from repro.counting.survival import ground_survival_mur
from repro.engine import BatchRequest, EstimationSession, batch_estimate
from repro.workloads import database_with_inconsistency, random_block_database

from bench_utils import emit, relative_error

EPSILON = 0.25
DELTA = 0.1
MIN_SAMPLE_REDUCTION = 3.0  # asserted on the E21 workload


def e18_workload():
    """The E18 ablation instance: five primary-key blocks of size 2–3."""
    database, constraints = random_block_database(
        5, 3, random.Random(900), min_block_size=2
    )
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    exact = float(ground_survival_mur(database, constraints, {target}))
    return "E18-blocks", database, constraints, query, exact


def e21_workload():
    """The E21 sweep instance at ratio 0.5 scaled to 60 facts."""
    database, constraints = database_with_inconsistency(
        60, 0.5, block_size=3, rng=random.Random(7)
    )
    conflicted = sorted(
        (
            f
            for f in database.sorted_facts()
            if ground_survival_mur(database, constraints, {f}) < 1
        ),
        key=str,
    )
    target = conflicted[0]
    query = boolean_cq(atom("R", *target.values))
    exact = float(ground_survival_mur(database, constraints, {target}))
    return "E21-sweep", database, constraints, query, exact


def compare(workload, seed=11):
    name, database, constraints, query, exact = workload
    session = EstimationSession(database, constraints, M_UR)
    fixed = session.estimate(
        query, epsilon=EPSILON, delta=DELTA, method="fixed", rng=random.Random(seed)
    )
    adaptive = session.estimate_adaptive(
        query, epsilon=EPSILON, delta=DELTA, rng=random.Random(seed)
    )
    return name, exact, fixed, adaptive


def run_both_workloads():
    return [compare(e18_workload()), compare(e21_workload())]


def test_e24_adaptive_vs_fixed(benchmark):
    rows = benchmark.pedantic(run_both_workloads, rounds=1, iterations=1)
    reductions = {}
    for name, exact, fixed, adaptive in rows:
        # Equal accuracy: both estimators within the requested ε of exact.
        assert relative_error(fixed.estimate, exact) <= EPSILON
        assert relative_error(adaptive.estimate, exact) <= EPSILON
        assert exact in adaptive.interval  # the anytime CI really covers
        reductions[name] = fixed.samples_used / adaptive.samples_used
        emit(
            "E24",
            workload=name,
            exact=round(exact, 4),
            fixed_samples=fixed.samples_used,
            adaptive_samples=adaptive.samples_used,
            fixed_estimate=round(fixed.estimate, 4),
            adaptive_estimate=round(adaptive.estimate, 4),
            reduction=round(reductions[name], 2),
            stop_rule=adaptive.method,
        )
    assert reductions["E21-sweep"] >= MIN_SAMPLE_REDUCTION, (
        f"adaptive only {reductions['E21-sweep']:.1f}x fewer samples on E21 "
        f"(need >= {MIN_SAMPLE_REDUCTION}x)"
    )
    emit(
        "E24",
        note="fixed budget ~ 1/p_min grows with |D|; adaptive cost ~ 1/p stays put",
        min_reduction_required=MIN_SAMPLE_REDUCTION,
    )


def test_e24_fixed_budget_grows_adaptive_stays_flat(benchmark):
    """Scaling: the fixed budget inflates with |D| at constant true p."""

    def sweep():
        rows = []
        for n_facts in (30, 60, 120):
            database, constraints = database_with_inconsistency(
                n_facts, 0.5, block_size=3, rng=random.Random(7)
            )
            conflicted = sorted(
                (
                    f
                    for f in database.sorted_facts()
                    if ground_survival_mur(database, constraints, {f}) < 1
                ),
                key=str,
            )
            query = boolean_cq(atom("R", *conflicted[0].values))
            session = EstimationSession(database, constraints, M_UR)
            budget = chernoff_sample_size(
                EPSILON, DELTA, session.positivity_bound(query)
            )
            adaptive = session.estimate_adaptive(
                query, epsilon=EPSILON, delta=DELTA, rng=random.Random(n_facts)
            )
            rows.append((n_facts, budget, adaptive.samples_used))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    budgets = [budget for _, budget, _ in rows]
    adaptives = [used for _, _, used in rows]
    assert budgets == sorted(budgets) and budgets[-1] > 2 * budgets[0]
    # Constant true p = 1/4: adaptive cost stays within one doubling round.
    assert max(adaptives) <= 2 * min(adaptives)
    for n_facts, budget, used in rows:
        emit("E24", facts=n_facts, fixed_budget=budget, adaptive_samples=used, true_p=0.25)


def test_e24_cache_warm_start(benchmark):
    """A second ``batch_estimate`` run over a cache dir replays the first."""
    name, database, constraints, query, exact = e21_workload()
    request = BatchRequest(
        database, constraints, M_UR, query, epsilon=EPSILON, delta=DELTA
    )

    def run():
        with tempfile.TemporaryDirectory() as cache_dir:
            started = time.perf_counter()
            cold = batch_estimate([request], seed=17, cache_dir=cache_dir)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm = batch_estimate([request], seed=17, cache_dir=cache_dir)
            warm_seconds = time.perf_counter() - started
            return cold, warm, cold_seconds, warm_seconds

    cold, warm, cold_seconds, warm_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert all(r.ok for r in cold + warm)
    assert [r.result for r in warm] == [r.result for r in cold]  # bit-for-bit replay
    assert warm_seconds < cold_seconds  # replay beats resampling (~3x measured)
    emit(
        "E24",
        cache="warm-start",
        cold_seconds=round(cold_seconds, 3),
        warm_seconds=round(warm_seconds, 3),
        speedup=round(cold_seconds / max(warm_seconds, 1e-9), 1),
        identical_results=True,
    )
