"""E12 — Theorems E.1(1), E.8(1), E.11: the ♯Pos2DNF reduction.

Validates ``|sat(φ)| = 2^{|var|} rrfreq¹`` on random positive 2DNF formulas
and the cross-semantics identities ``rrfreq¹ = srfreq¹ = P_{M_uo,1}`` on
``D_φ``.
"""

import random

from repro.exact import rrfreq1, srfreq1, uniform_operations_answer_probability
from repro.reductions.pos2dnf import pos2dnf_instance, sat_count_via_oracle
from repro.workloads import random_pos2dnf

from bench_utils import emit


def oracle_sweep():
    rows = []
    for seed in (400, 401, 402, 403):
        rng = random.Random(seed)
        formula = random_pos2dnf(rng.randint(3, 5), rng.randint(2, 4), rng)
        instance = pos2dnf_instance(formula)

        def oracle(database, answer, _c=instance.constraints, _q=instance.query):
            return rrfreq1(database, _c, _q, answer)

        via_oracle = sat_count_via_oracle(formula, oracle)
        brute = formula.count_satisfying()
        rows.append((seed, formula, via_oracle, brute))
    return rows


def test_e12_oracle_identity(benchmark):
    rows = benchmark(oracle_sweep)
    for seed, formula, via_oracle, brute in rows:
        assert via_oracle == brute
        emit(
            "E12",
            seed=seed,
            variables=len(formula.variables()),
            clauses=len(formula.clauses),
            sat_via_oracle=via_oracle,
            sat_bruteforce=brute,
        )
    emit("E12", identity="|sat| = 2^|var| rrfreq1", status="exact match")


def test_e12_cross_semantics_identities(benchmark):
    def all_semantics():
        formula = random_pos2dnf(4, 3, random.Random(410))
        instance = pos2dnf_instance(formula)
        r = rrfreq1(instance.database, instance.constraints, instance.query)
        s = srfreq1(instance.database, instance.constraints, instance.query)
        u = uniform_operations_answer_probability(
            instance.database,
            instance.constraints,
            instance.query,
            singleton_only=True,
        )
        return r, s, u

    r, s, u = benchmark(all_semantics)
    assert r == s == u
    emit("E12", identity="rrfreq1 = srfreq1 = P_uo1 on D_phi", value=str(r))
