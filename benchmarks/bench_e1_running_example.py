"""E1 — Figure 1 / Example 3.6 / Section 4: the running example.

Regenerates the repairing Markov chain of Figure 1 and the worked edge
probabilities of Section 4 for all three uniform generators:

* ``M_us``: p1 = p5 = 3/9, p2 = p3 = p4 = 1/9, p6..p11 = 1/3, |CRS| = 9;
* ``M_ur``: p1 = 3/5, p2 = p5 = 0, p3 = p4 = 1/5, five repairs at 1/5 each;
* ``M_uo``: p1..p5 = 1/5, p6..p11 = 1/3.
"""

from fractions import Fraction

from repro.chains.generators import M_UO, M_UR, M_US
from repro.core import Database, FDSet, Schema, fact, fd

from bench_utils import emit


def running_example():
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    f1 = fact("R", "a1", "b1", "c1")
    f2 = fact("R", "a1", "b2", "c2")
    f3 = fact("R", "a2", "b1", "c2")
    database = Database([f1, f2, f3], schema=schema)
    constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    return database, constraints, (f1, f2, f3)


def build_all_chains():
    database, constraints, _ = running_example()
    return {
        generator.name: generator.chain(database, constraints)
        for generator in (M_UR, M_US, M_UO)
    }


def test_e1_build_chains(benchmark):
    chains = benchmark(build_all_chains)
    database, constraints, _ = running_example()

    # Figure 1 tree shape: 12 nodes, 9 leaves.
    for name, chain in chains.items():
        chain.validate()
        assert chain.node_count() == 12
        assert len(chain.leaves()) == 9

    # Section 4 root probabilities (paper order: -f1, -{f1,f2}, -f2, -{f2,f3}, -f3).
    probabilities = {
        name: [child.edge_probability for child in chain.root.children]
        for name, chain in chains.items()
    }
    assert probabilities["M_us"] == [
        Fraction(3, 9), Fraction(1, 9), Fraction(1, 9), Fraction(1, 9), Fraction(3, 9),
    ]
    assert probabilities["M_ur"] == [
        Fraction(3, 5), Fraction(0), Fraction(1, 5), Fraction(1, 5), Fraction(0),
    ]
    assert probabilities["M_uo"] == [Fraction(1, 5)] * 5

    # Section 4 leaf distributions.
    us_leaves = chains["M_us"].leaf_distribution()
    assert set(us_leaves.values()) == {Fraction(1, 9)}
    ur_repairs = chains["M_ur"].repair_probabilities()
    assert len(ur_repairs) == 5
    assert set(ur_repairs.values()) == {Fraction(1, 5)}

    emit("E1", artifact="figure1", nodes=12, leaves=9)
    for name in ("M_us", "M_ur", "M_uo"):
        emit(
            "E1",
            generator=name,
            root_probs=[str(p) for p in probabilities[name]],
        )
    emit("E1", generator="M_ur", repairs=5, each="1/5")
    emit("E1", generator="M_us", sequences=9, each="1/9")
