"""E2 — Figure 2 / Example B.2: blocks and the Lemma 5.2 repair sampler.

Regenerates the twelve candidate repairs of the Figure 2 database, the
product count ``(3+1) x (2+1) = 12``, and checks the Lemma 5.2 sampler's
empirical distribution against the uniform target (the example's
``1/4 x 1/3 = 1/12`` per repair).
"""

import random
from collections import Counter

from repro.counting import count_candidate_repairs_primary_keys
from repro.exact import candidate_repairs
from repro.sampling.repair_sampler import RepairSampler
from repro.workloads import figure2_database

from bench_utils import emit

SAMPLES = 12_000


def sample_many():
    database, constraints = figure2_database()
    sampler = RepairSampler(database, constraints, rng=random.Random(2))
    return Counter(sampler.sample() for _ in range(SAMPLES))


def test_e2_repair_sampler(benchmark):
    counts = benchmark(sample_many)
    database, constraints = figure2_database()

    # Example B.2: twelve repairs.
    assert count_candidate_repairs_primary_keys(database, constraints) == 12
    support = set(candidate_repairs(database, constraints))
    assert len(support) == 12
    assert set(counts) == support

    worst = max(abs(n / SAMPLES - 1 / 12) for n in counts.values())
    assert worst < 0.02

    emit("E2", artifact="example_B2", repairs=12, paper="(3+1)x(2+1)")
    emit(
        "E2",
        sampler="Lemma 5.2",
        samples=SAMPLES,
        target="1/12",
        worst_abs_deviation=round(worst, 4),
    )
