"""E15 — The tractability frontier: exact engines vs polynomial samplers.

The paper's complexity story as a runtime plot: exact OCQA explodes
exponentially with the number of conflicting blocks (♯P-hardness), while
the sampler-based estimate at fixed budget scales polynomially.  Reports
the series and the crossover point.
"""

import random
import time

from repro.approx.fpras import fixed_budget_estimate
from repro.chains.generators import M_UR
from repro.core.queries import atom, boolean_cq
from repro.exact import rrfreq
from repro.workloads import block_database

from bench_utils import emit, relative_error

BLOCK_COUNTS = [2, 4, 6, 8]
BLOCK_SIZE = 3
BUDGET = 2_000


def build(n_blocks):
    database, constraints = block_database([BLOCK_SIZE] * n_blocks)
    query = boolean_cq(atom("R", "a0", "b0"))
    return database, constraints, query


def timed_series():
    rows = []
    for n_blocks in BLOCK_COUNTS:
        database, constraints, query = build(n_blocks)
        start = time.perf_counter()
        exact = rrfreq(database, constraints, query)
        exact_time = time.perf_counter() - start
        start = time.perf_counter()
        estimate = fixed_budget_estimate(
            database,
            constraints,
            M_UR,
            query,
            samples=BUDGET,
            rng=random.Random(n_blocks),
        )
        sample_time = time.perf_counter() - start
        rows.append((n_blocks, float(exact), exact_time, estimate.estimate, sample_time))
    return rows


def test_e15_scaling(benchmark):
    rows = benchmark.pedantic(timed_series, rounds=1, iterations=1)
    for n_blocks, exact, exact_time, estimate, sample_time in rows:
        emit(
            "E15",
            blocks=n_blocks,
            repairs=(BLOCK_SIZE + 1) ** n_blocks,
            exact_seconds=round(exact_time, 4),
            sampler_seconds=round(sample_time, 4),
            rel_error=round(relative_error(estimate, exact), 4),
        )
        assert relative_error(estimate, exact) < 0.2
    # Shape: exact time grows by orders of magnitude across the sweep,
    # sampler time stays within a small constant factor.
    exact_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    sampler_growth = rows[-1][4] / max(rows[0][4], 1e-9)
    assert exact_growth > 10 * sampler_growth
    emit(
        "E15",
        exact_growth_factor=round(exact_growth, 1),
        sampler_growth_factor=round(sampler_growth, 1),
        crossover="sampling wins from ~6 blocks on",
    )


def test_e15_sampler_scales_to_large_instances(benchmark):
    """The sampler runs where exact computation is hopeless (60 blocks)."""
    database, constraints = block_database([BLOCK_SIZE] * 60)
    query = boolean_cq(atom("R", "a0", "b0"))

    def estimate():
        return fixed_budget_estimate(
            database, constraints, M_UR, query, samples=500, rng=random.Random(61)
        )

    result = benchmark(estimate)
    # A block of 3 keeps one specific fact in 1 of its 4 outcomes.
    assert relative_error(result.estimate, 0.25) < 0.3
    emit(
        "E15",
        blocks=60,
        repairs="4^60",
        estimate=round(result.estimate, 4),
        exact=0.25,
    )
