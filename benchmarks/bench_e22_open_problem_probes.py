"""E22 — Probing the paper's open problems (Section 8).

The paper leaves open: (i) keys + uniform repairs, (ii) keys/FDs + uniform
sequences, (iii) FDs + uniform operations (solved only for singleton ops).
Monte-Carlo approximability hinges on positivity lower bounds, so we probe
whether the target quantities *decay exponentially* on natural families —
the failure mode Prop D.6 exhibits for (iii):

* ``rrfreq`` on the FD star family decays like ``2^{-(n-1)}`` — a concrete
  positivity failure matching Theorem 5.1(3)'s no-FPRAS for FDs;
* ``srfreq`` on the same family converges to ≈ 0.1839 — stars cannot
  witness a Prop-D.6-style failure for uniform sequences over FDs;
* ``srfreq`` of a hub fact under *arbitrary keys* (star conflict graphs via
  the Prop 5.5 encoding) converges to ≈ 0.184 — so the paper's conjecture
  that ``M_us`` over keys has no FPRAS cannot be established by positivity
  failure on star families either; the obstruction, if real, is elsewhere.

These are empirical probes, not theorems; they chart where the open
problems' difficulty does *not* come from.
"""

from repro.core.queries import Atom, boolean_cq
from repro.exact import rrfreq, srfreq
from repro.reductions.graphs import star_graph
from repro.reductions.pathological import pathological_instance
from repro.reductions.vizing import independent_set_database

from bench_utils import emit


def fd_star_series():
    rows = []
    for n in (2, 4, 6, 8, 10):
        instance = pathological_instance(n)
        rows.append(
            (
                n,
                float(rrfreq(instance.database, instance.constraints, instance.query)),
                float(srfreq(instance.database, instance.constraints, instance.query)),
            )
        )
    return rows


def test_e22_fd_star_probes(benchmark):
    rows = benchmark(fd_star_series)
    previous_rrfreq = 1.0
    for n, rrfreq_value, srfreq_value in rows:
        emit(
            "E22",
            family="FD star D_n",
            n=n,
            rrfreq=f"{rrfreq_value:.5f}",
            srfreq=f"{srfreq_value:.5f}",
        )
        # rrfreq halves (roughly) with each spoke: exponential decay.
        assert rrfreq_value < previous_rrfreq
        previous_rrfreq = rrfreq_value
    # Exponential decay for M_ur (positivity fails: Thm 5.1(3) shape) ...
    assert rows[-1][1] < 0.01
    # ... but no decay for M_us: the open problem resists this attack.
    assert rows[-1][2] > 0.15
    emit(
        "E22",
        finding="rrfreq decays exponentially on FD stars; srfreq stabilizes ~0.184",
    )


def keys_star_series():
    rows = []
    for leaves in (2, 3, 4, 5):
        instance = independent_set_database(star_graph(leaves))
        hub_fact = instance.node_to_fact[0]
        query = boolean_cq(Atom("R", hub_fact.values))
        rows.append(
            (
                leaves,
                float(srfreq(instance.database, instance.constraints, query)),
                float(rrfreq(instance.database, instance.constraints, query)),
            )
        )
    return rows


def test_e22_keys_star_probes(benchmark):
    rows = benchmark(keys_star_series)
    for leaves, srfreq_value, rrfreq_value in rows:
        emit(
            "E22",
            family="keys star (Prop 5.5 encoding)",
            leaves=leaves,
            srfreq_hub=f"{srfreq_value:.5f}",
            rrfreq_hub=f"{rrfreq_value:.5f}",
        )
    # srfreq of the hub stabilizes well above zero on this family.
    assert rows[-1][1] > 0.15
    emit(
        "E22",
        finding="no positivity failure for M_us over keys on stars "
        "(the Section 8 conjecture needs a different obstruction)",
    )
