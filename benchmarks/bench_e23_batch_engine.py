"""E23 — Batched estimation engine vs. the naive per-candidate loop.

The batched engine's pitch: estimating ``P_{M_Σ,Q}(D, c̄)`` for every
candidate answer of one query should cost *one* sampling pass plus cheap
per-candidate evaluations, not one independent Monte-Carlo run per
candidate.  This bench takes a 50-candidate workload on an
inconsistency-sweep instance (the E21 protocol) and runs it twice:

* **naive** — the per-call API, one ``fixed_budget_estimate`` per candidate,
  each freshly seeded with the same seed;
* **batched** — one :class:`EstimationSession` with a shared
  :class:`SamplePool` seeded identically, scored via cached witness images.

Because every per-call run re-seeds the same stream the pool materializes
once, the two result lists are **bit-for-bit identical** — the engine is a
pure speedup, asserted here at ≥ 3× (in practice far higher).
"""

import random
import time

from repro.approx.fpras import fixed_budget_estimate
from repro.chains.generators import M_UR
from repro.core.queries import atom, cq, var
from repro.engine import EstimationSession
from repro.workloads.inconsistency import database_with_inconsistency

from bench_utils import emit

FACTS = 50
RATIO = 0.6
SAMPLES = 400
SEED = 23
MIN_SPEEDUP = 3.0


def build_workload():
    database, constraints = database_with_inconsistency(
        FACTS, RATIO, block_size=3, rng=random.Random(SEED)
    )
    x, y = var("x"), var("y")
    query = cq((x, y), (atom("R", x, y),))
    candidates = sorted(query.answers(database), key=repr)
    return database, constraints, query, candidates


def run_naive(database, constraints, query, candidates):
    return [
        fixed_budget_estimate(
            database,
            constraints,
            M_UR,
            query,
            candidate,
            samples=SAMPLES,
            rng=random.Random(SEED),
        )
        for candidate in candidates
    ]


def run_batched(database, constraints, query, candidates):
    session = EstimationSession(database, constraints, M_UR)
    pool = session.pool(random.Random(SEED))
    return [
        session.fixed_budget_pooled(pool, query, candidate, samples=SAMPLES)
        for candidate in candidates
    ]


def result_fields(results):
    """The comparable fields (ε/δ are NaN on fixed-budget runs, and NaN != NaN)."""
    return [
        (result.estimate, result.samples_used, result.method, result.certified_zero)
        for result in results
    ]


def compare():
    database, constraints, query, candidates = build_workload()
    started = time.perf_counter()
    naive = run_naive(database, constraints, query, candidates)
    naive_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batched = run_batched(database, constraints, query, candidates)
    batched_seconds = time.perf_counter() - started
    return candidates, naive, batched, naive_seconds, batched_seconds


def test_e23_batch_engine(benchmark):
    candidates, naive, batched, naive_seconds, batched_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert len(candidates) == 50  # the advertised 50-candidate workload

    # Seeded batch results are identical to the per-call API, field for field.
    assert result_fields(batched) == result_fields(naive)

    speedup = naive_seconds / batched_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batched estimation only {speedup:.1f}x faster "
        f"({naive_seconds:.3f}s vs {batched_seconds:.3f}s)"
    )

    emit(
        "E23",
        candidates=len(candidates),
        samples_per_candidate=SAMPLES,
        naive_seconds=round(naive_seconds, 3),
        batched_seconds=round(batched_seconds, 3),
        speedup=round(speedup, 1),
        identical_results=result_fields(batched) == result_fields(naive),
    )
    nonzero = sum(1 for result in batched if result.estimate > 0)
    emit("E23", nonzero_candidates=nonzero, sampling_passes_naive=len(candidates), sampling_passes_batched=1)
