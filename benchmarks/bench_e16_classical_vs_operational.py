"""E16 — Operational vs classical CQA (the Section 1 positioning).

Compares, on the Figure 2 database and random block databases, the answers
produced by: classical certain answers, classical relative frequency
(the [3, 4] notion), and the three uniform operational semantics.  Shape
claims: operational repairs extend the classical set (subset repairs are the
*maximal* operational repairs), so operational frequencies are diluted, and
the three uniform semantics genuinely differ.
"""

import random
from fractions import Fraction

from repro.chains.generators import M_UO, M_UR, M_US
from repro.core.queries import atom, boolean_cq
from repro.cqa.classical import (
    classical_relative_frequency,
    count_subset_repairs,
    is_consistent_answer,
)
from repro.exact import (
    count_candidate_repairs,
    exact_ocqa,
)
from repro.workloads import figure2_database, random_block_database

from bench_utils import emit


def comparison_rows():
    rows = []
    instances = [("figure2", *figure2_database())]
    for seed in (700, 701):
        database, constraints = random_block_database(
            3, 3, random.Random(seed), min_block_size=2
        )
        instances.append((f"random{seed}", database, constraints))
    for name, database, constraints in instances:
        target = database.sorted_facts()[0]
        query = boolean_cq(atom("R", *target.values))
        rows.append(
            (
                name,
                count_subset_repairs(database, constraints),
                count_candidate_repairs(database, constraints),
                is_consistent_answer(database, constraints, query),
                classical_relative_frequency(database, constraints, query),
                exact_ocqa(database, constraints, M_UR, query),
                exact_ocqa(database, constraints, M_US, query),
                exact_ocqa(database, constraints, M_UO, query),
            )
        )
    return rows


def test_e16_semantics_comparison(benchmark):
    rows = benchmark(comparison_rows)
    for name, n_classical, n_operational, certain, crf, p_ur, p_us, p_uo in rows:
        assert n_classical < n_operational
        if not certain:
            # Operational repairs add non-maximal options, diluting the
            # uniform-repairs frequency relative to the classical one.
            assert p_ur <= crf
        emit(
            "E16",
            instance=name,
            subset_repairs=n_classical,
            operational_repairs=n_operational,
            certain=certain,
            classical_freq=str(crf),
            p_M_ur=str(p_ur),
            p_M_us=str(p_us),
            p_M_uo=str(p_uo),
        )
    emit("E16", claim="operational semantics refine classical CQA")


def test_e16_figure2_headline_numbers(benchmark):
    def headline():
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"))
        return (
            classical_relative_frequency(database, constraints, query),
            exact_ocqa(database, constraints, M_UR, query),
            exact_ocqa(database, constraints, M_US, query),
            exact_ocqa(database, constraints, M_UO, query),
        )

    crf, p_ur, p_us, p_uo = benchmark(headline)
    assert crf == Fraction(1, 3)
    assert p_ur == Fraction(1, 4)
    assert p_us == Fraction(24, 99)
    assert p_us < p_ur < crf
    emit(
        "E16",
        instance="figure2/R(a1,b1)",
        classical=str(crf),
        M_ur=str(p_ur),
        M_us=str(p_us),
        M_uo=str(p_uo),
    )
