"""E30 — Sharded service plane: near-linear rps scaling across cores.

The single-process service plane (E27/E29) tops out at one core: the
sampling passes run under the registry's per-session locks inside one
GIL.  PR 8's sharded mode (``serve --workers N``) runs one warm
:class:`~repro.service.registry.SessionRegistry` per worker process
behind the asyncio router, with requests placed by rendezvous-hashing
the group's :func:`~repro.engine.store.instance_cache_key` — so adding
workers adds *independent* sampling cores, and throughput should scale
near-linearly until the machine runs out of them.

Two tests:

* **bit identity** (always runs) — the same mixed workload served at
  ``--workers`` 1, 2, and 4 equals the offline
  ``batch_estimate(seed)`` reference bit-for-bit, including after a
  mid-run SIGKILL of one shard worker (the router respawns and
  re-warms it; group seeds are content-derived, so placement and
  process lifetime never touch the math).
* **scaling** (needs ≥ 4 cores; skips with a message on smaller
  boxes) — warm closed-loop rps at 4 workers must be ≥ 2.5× the
  1-worker rps on the identical mix.
"""

import os
import time

import pytest

from repro.engine import batch_estimate
from repro.service import BackgroundServer, ServiceClient

from bench_e27_service_throughput import assert_rows_match, build_mix, run_service
from bench_utils import emit

SEED = 30
WORKER_COUNTS = (1, 2, 4)
MIN_SCALING = 2.5
SCALING_CORES = 4


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def serve_mix(workers: int, query, requests, offline, *, kill: bool = False):
    """One warm-measured pass at a worker count; returns warm rps.

    The first pass admits every group cold (and is discarded); the
    second, fully warm pass is the measured one.  With ``kill=True`` a
    shard worker is SIGKILLed between the passes, so the measured pass
    also proves the respawn is transparent and re-served rows stay
    bit-identical.
    """
    options = {"workers": workers, "fault_injection": True}
    with BackgroundServer(seed=SEED, server_options=options) as server:
        rows, _ = run_service(server, query, requests)
        assert_rows_match(rows, offline)
        client = ServiceClient(server.url)
        restarts = 0
        if kill:
            report = client._call("POST", "/_fault", {"kill_worker": 0})
            assert report.get("killed_pid"), report
            time.sleep(0.5)
        rows, seconds = run_service(server, query, requests)
        assert_rows_match(rows, offline)
        if kill:
            stats = client.stats()
            restarts = sum(
                int(entry.get("restarts", 0)) for entry in stats["shards"]
            )
            assert restarts >= 1, stats
    return len(requests) / seconds, restarts


def test_e30_shard_bit_identity(benchmark):
    """Served rows are bit-identical at every worker count, kill included."""

    def check():
        query, requests = build_mix()
        offline = batch_estimate(requests, seed=SEED)
        assert all(outcome.ok for outcome in offline)
        rps = {}
        restarts = 0
        for workers in WORKER_COUNTS:
            # The 2-worker leg doubles as the kill+respawn identity check.
            rps[workers], revived = serve_mix(
                workers, query, requests, offline, kill=workers == 2
            )
            restarts += revived
        return {"requests": len(requests), "rps": rps, "restarts": restarts}

    measured = benchmark.pedantic(check, rounds=1, iterations=1)
    assert measured["restarts"] >= 1
    emit(
        "E30",
        check="bit_identity",
        requests=measured["requests"],
        worker_counts=",".join(str(w) for w in WORKER_COUNTS),
        kill_respawns=measured["restarts"],
        bit_identical=True,
        **{f"rps_w{w}": round(r, 1) for w, r in measured["rps"].items()},
    )


def test_e30_shard_scaling(benchmark):
    """Warm rps at 4 workers ≥ 2.5× the 1-worker rps (needs ≥ 4 cores)."""
    cores = available_cores()
    if cores < SCALING_CORES:
        pytest.skip(
            f"shard scaling needs >= {SCALING_CORES} cores to mean anything; "
            f"this box has {cores}"
        )

    def measure():
        query, requests = build_mix()
        offline = batch_estimate(requests, seed=SEED)
        rps = {
            workers: serve_mix(workers, query, requests, offline)[0]
            for workers in (1, SCALING_CORES)
        }
        return {"requests": len(requests), "rps": rps}

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    rps = measured["rps"]
    scaling = rps[SCALING_CORES] / rps[1]
    assert scaling >= MIN_SCALING, (
        f"{SCALING_CORES} workers only {scaling:.2f}x over 1 worker "
        f"({rps[SCALING_CORES]:.1f} vs {rps[1]:.1f} rps) on a {cores}-core box"
    )
    emit(
        "E30",
        check="scaling",
        cores=cores,
        requests=measured["requests"],
        rps_w1=round(rps[1], 1),
        **{f"rps_w{SCALING_CORES}": round(rps[SCALING_CORES], 1)},
        scaling=round(scaling, 2),
        floor=MIN_SCALING,
    )
