"""E21 — Inconsistency-ratio sweep (the [4]-style benchmarking protocol).

The approximate-CQA benchmarking line the paper cites parameterizes
instances by inconsistency ratio.  This bench sweeps the ratio on fixed-size
primary-key instances and reports how the repair space, the expected repair
size, and per-fact survival probabilities respond — with the FPRAS estimate
tracking the exact value at every ratio.
"""

import random

from repro.analysis import inconsistency_report
from repro.approx.fpras import fixed_budget_estimate
from repro.chains.generators import M_UR
from repro.core.queries import atom, boolean_cq
from repro.counting.repair_count import count_candidate_repairs_primary_keys
from repro.counting.survival import ground_survival_mur
from repro.workloads.inconsistency import (
    achieved_inconsistency_ratio,
    database_with_inconsistency,
)

from bench_utils import emit, relative_error

RATIOS = [0.1, 0.3, 0.5, 0.7, 0.9]
FACTS = 40


def sweep():
    rows = []
    for ratio in RATIOS:
        database, constraints = database_with_inconsistency(
            FACTS, ratio, block_size=3, rng=random.Random(int(ratio * 100))
        )
        report = inconsistency_report(database, constraints)
        conflicted = sorted(
            (
                f
                for f in database.sorted_facts()
                if ground_survival_mur(database, constraints, {f}) < 1
            ),
            key=str,
        )
        if conflicted:
            target = conflicted[0]
            exact = float(ground_survival_mur(database, constraints, {target}))
            estimate = fixed_budget_estimate(
                database,
                constraints,
                M_UR,
                boolean_cq(atom("R", *target.values)),
                samples=3000,
                rng=random.Random(int(ratio * 1000)),
            ).estimate
        else:
            exact = estimate = 1.0
        rows.append(
            (
                ratio,
                achieved_inconsistency_ratio(database, constraints),
                count_candidate_repairs_primary_keys(database, constraints),
                report.nontrivial_components,
                exact,
                estimate,
            )
        )
    return rows


def test_e21_inconsistency_sweep(benchmark):
    rows = benchmark(sweep)
    previous_repairs = 0
    for ratio, achieved, repairs, components, exact, estimate in rows:
        assert abs(achieved - ratio) <= 0.1
        assert repairs >= previous_repairs  # repair space grows with dirt
        previous_repairs = repairs
        assert relative_error(estimate, exact) <= 0.2
        emit(
            "E21",
            target_ratio=ratio,
            achieved=round(achieved, 3),
            repairs=repairs,
            conflict_components=components,
            survival_exact=round(exact, 4),
            survival_estimate=round(estimate, 4),
        )
    emit("E21", protocol="[4]-style ratio sweep", facts=FACTS, block_size=3)
