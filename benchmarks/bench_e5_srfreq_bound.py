"""E5 — Example C.3 / Lemma 6.3: srfreq = 24/99 and its lower bound.

Regenerates the worked sequence-relative-frequency computation (24 of the
99 complete sequences keep ``R(a1, b1)``) and the Lemma 6.3 bound ``1/12``,
plus the Algorithm 1 sampler's agreement with the exact value.
"""

import random
from fractions import Fraction

from repro.approx.bounds import srfreq_lower_bound
from repro.core.queries import atom, boolean_cq
from repro.exact import srfreq
from repro.sampling.sequence_sampler import SequenceSampler
from repro.workloads import figure2_database

from bench_utils import emit, relative_error

SAMPLES = 6_000


def estimate_srfreq():
    database, constraints = figure2_database()
    query = boolean_cq(atom("R", "a1", "b1"))
    sampler = SequenceSampler(database, constraints, rng=random.Random(5))
    hits = sum(
        1 for _ in range(SAMPLES) if query.entails(sampler.sample_result())
    )
    return hits / SAMPLES


def test_e5_srfreq(benchmark):
    estimate = benchmark(estimate_srfreq)
    database, constraints = figure2_database()
    query = boolean_cq(atom("R", "a1", "b1"))

    exact = srfreq(database, constraints, query)
    assert exact == Fraction(24, 99)  # Example C.3
    bound = srfreq_lower_bound(database, query)
    assert bound == Fraction(1, 12)
    assert exact >= bound

    error = relative_error(estimate, float(exact))
    assert error < 0.15

    emit("E5", artifact="example_C3", srfreq=str(exact), paper="24/99")
    emit("E5", bound="Lemma 6.3", value=str(bound), paper="1/12")
    emit(
        "E5",
        sampler="Algorithm 1",
        samples=SAMPLES,
        estimate=round(estimate, 4),
        exact=round(float(exact), 4),
        rel_error=round(error, 4),
    )
