"""E8 — Theorem 7.1(2) / Prop 7.3: M_uo FPRAS beyond primary keys.

The headline result: uniform operations stay approximable for *arbitrary
keys*, the regime the classical approach cannot reach.  Instances are
multi-key databases whose conflict graphs are bounded-degree connected
graphs (the Prop 5.5 encoding); the walker of Lemma 7.2 plus the adaptive
stopping rule estimate ``P_{M_uo,Q}``, compared against exact state-space
values; Prop 7.3's positivity bound is validated alongside.
"""

import random

from repro.approx.bounds import uo_keys_lower_bound
from repro.approx.fpras import fpras_ocqa
from repro.chains.generators import M_UO
from repro.core.queries import atom, boolean_cq
from repro.exact import uniform_operations_answer_probability
from repro.workloads import multikey_database

from bench_utils import emit, relative_error


def build_instance(seed, n_nodes):
    instance = multikey_database(n_nodes, max_degree=3, rng=random.Random(seed))
    target = instance.database.sorted_facts()[0]
    query = boolean_cq(atom(target.relation, *target.values))
    return instance, query


def run_sweep():
    results = []
    for seed, n_nodes in ((300, 5), (301, 6), (302, 7)):
        instance, query = build_instance(seed, n_nodes)
        exact = float(
            uniform_operations_answer_probability(
                instance.database, instance.constraints, query
            )
        )
        estimate = fpras_ocqa(
            instance.database,
            instance.constraints,
            M_UO,
            query,
            epsilon=0.2,
            delta=0.1,
            method="dklr",
            rng=random.Random(seed + 7),
        )
        results.append((seed, n_nodes, instance, query, exact, estimate))
    return results


def test_e8_fpras_uo_keys(benchmark):
    results = benchmark(run_sweep)
    failures = 0
    for seed, n_nodes, instance, query, exact, estimate in results:
        error = relative_error(estimate.estimate, exact)
        bound = uo_keys_lower_bound(instance.database, instance.constraints, query)
        assert exact == 0 or exact >= bound  # Prop 7.3 positivity
        emit(
            "E8",
            nodes=n_nodes,
            keys=len(instance.constraints),
            exact=round(exact, 4),
            estimate=round(estimate.estimate, 4),
            rel_error=round(error, 4),
            samples=estimate.samples_used,
        )
        if error > 0.2:
            failures += 1
    assert failures <= 1
    emit("E8", claim="FPRAS beyond primary keys (arbitrary keys)", excursions=failures)


def test_e8_walker_throughput(benchmark):
    """Per-walk cost on a larger multi-key instance."""
    from repro.sampling.operations_sampler import UniformOperationsSampler

    instance, _ = build_instance(310, 14)
    walker = UniformOperationsSampler(
        instance.database, instance.constraints, rng=random.Random(311)
    )
    repair = benchmark(walker.sample)
    assert instance.constraints.satisfied_by(repair)
