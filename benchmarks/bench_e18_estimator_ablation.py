"""E18 — Ablation: fixed-N Chernoff vs the DKLR stopping rule.

Both estimators deliver the same (ε, δ) guarantee; the design question is
sample cost.  The fixed budget is sized by the *worst-case* positivity bound
(``1/(2|D|)^{|Q|}``), while the stopping rule adapts to the (unknown) true
probability.  This ablation quantifies the gap — the reason the library
defaults to DKLR for the ``M_uo`` regimes whose theoretical bounds are
astronomically conservative (Prop 7.3).
"""

import random

from repro.approx.bounds import rrfreq_lower_bound
from repro.approx.fpras import fpras_ocqa
from repro.approx.montecarlo import chernoff_sample_size
from repro.chains.generators import M_UR
from repro.core.queries import atom, boolean_cq
from repro.exact import rrfreq
from repro.workloads import random_block_database

from bench_utils import emit, relative_error

EPSILON = 0.25
DELTA = 0.1


def build_instance():
    database, constraints = random_block_database(
        5, 3, random.Random(900), min_block_size=2
    )
    target = database.sorted_facts()[0]
    return database, constraints, boolean_cq(atom("R", *target.values))


def run_both():
    database, constraints, query = build_instance()
    exact = float(rrfreq(database, constraints, query))
    fixed = fpras_ocqa(
        database, constraints, M_UR, query,
        epsilon=EPSILON, delta=DELTA, method="fixed", rng=random.Random(901),
    )
    adaptive = fpras_ocqa(
        database, constraints, M_UR, query,
        epsilon=EPSILON, delta=DELTA, method="dklr", rng=random.Random(902),
    )
    return exact, fixed, adaptive


def test_e18_fixed_vs_adaptive(benchmark):
    exact, fixed, adaptive = benchmark(run_both)
    database, constraints, query = build_instance()
    bound = float(rrfreq_lower_bound(database, query))
    worst_case = chernoff_sample_size(EPSILON, DELTA, bound)

    assert fixed.samples_used == worst_case
    assert adaptive.samples_used < fixed.samples_used
    assert relative_error(fixed.estimate, exact) <= EPSILON
    assert relative_error(adaptive.estimate, exact) <= EPSILON

    emit(
        "E18",
        estimator="fixed-chernoff",
        samples=fixed.samples_used,
        estimate=round(fixed.estimate, 4),
        exact=round(exact, 4),
    )
    emit(
        "E18",
        estimator="dklr",
        samples=adaptive.samples_used,
        estimate=round(adaptive.estimate, 4),
        exact=round(exact, 4),
    )
    emit(
        "E18",
        speedup=round(fixed.samples_used / adaptive.samples_used, 1),
        note="adaptive cost ~ 1/p, worst-case cost ~ 1/p_min",
    )


def test_e18_gap_grows_with_database_size(benchmark):
    """The fixed budget grows with |D| even when the true p stays constant."""

    def budgets():
        rows = []
        for n_blocks in (4, 8, 16, 32):
            database, constraints = random_block_database(
                n_blocks, 3, random.Random(n_blocks), min_block_size=3
            )
            query = boolean_cq(atom("R", *database.sorted_facts()[0].values))
            bound = float(rrfreq_lower_bound(database, query))
            rows.append((n_blocks, len(database), chernoff_sample_size(0.25, 0.1, bound)))
        return rows

    rows = benchmark(budgets)
    previous = 0
    for n_blocks, size, budget in rows:
        assert budget > previous
        previous = budget
        emit("E18", blocks=n_blocks, facts=size, fixed_budget=budget, true_p=0.25)
    emit("E18", note="true p stays 1/4; the adaptive rule's cost stays flat")
