"""E10 — Proposition D.6: the exponentially-small-probability family.

Regenerates the decay table ``P_{M_uo,Q}(D_n) = Π j/(2j+1) <= 2^{-(n-1)}``,
shows plain Monte Carlo failing (zero hits at n = 16 over thousands of
walks) and the singleton-operation semantics fixing it — the paper's
motivation for Theorem 7.5.
"""

import random

from repro.exact import uniform_operations_answer_probability
from repro.reductions.pathological import (
    exact_centre_probability,
    pathological_instance,
    proposition_d6_upper_bound,
)
from repro.sampling.operations_sampler import UniformOperationsSampler

from bench_utils import emit

WALKS = 3_000


def decay_table():
    rows = []
    for n in (2, 4, 6, 8, 10, 12, 14, 16):
        rows.append((n, exact_centre_probability(n), proposition_d6_upper_bound(n)))
    return rows


def test_e10_decay_table(benchmark):
    rows = benchmark(decay_table)
    for n, value, bound in rows:
        assert 0 < value <= bound
        emit(
            "E10",
            n=n,
            exact=f"{float(value):.3e}",
            bound=f"{float(bound):.3e}",
            paper="P <= 2^-(n-1)",
        )
    # Cross-check the closed form against the state-space DP at one point.
    instance = pathological_instance(8)
    assert (
        uniform_operations_answer_probability(
            instance.database, instance.constraints, instance.query
        )
        == exact_centre_probability(8)
    )


def monte_carlo_hits(n, singleton_only, seed):
    instance = pathological_instance(n)
    walker = UniformOperationsSampler(
        instance.database,
        instance.constraints,
        singleton_only=singleton_only,
        rng=random.Random(seed),
    )
    return sum(1 for _ in range(WALKS) if instance.query.entails(walker.sample()))


def test_e10_monte_carlo_failure(benchmark):
    hits = benchmark(monte_carlo_hits, 16, False, 51)
    assert hits == 0  # the estimator returns 0 although P > 0
    emit(
        "E10",
        semantics="M_uo",
        n=16,
        walks=WALKS,
        hits=hits,
        note="estimator blind to positive probability",
    )


def test_e10_singleton_rescue(benchmark):
    hits = benchmark(monte_carlo_hits, 16, True, 52)
    assert hits > 50  # P = 1/16 under singleton operations
    emit(
        "E10",
        semantics="M_uo,1",
        n=16,
        walks=WALKS,
        hits=hits,
        note="Theorem 7.5 restores estimability",
    )
