"""E28 — Calibration audit: observed (ε, δ) coverage vs the nominal claim.

A reduced-replication run of the ``repro.calibration`` audit plane (the
PR-gate leg; the scheduled CI cron runs the 2000-replication profile).
Every (target × fixed|adaptive × scalar|vector × cold|warm) cell must
report observed miscoverage statistically consistent with its nominal δ
— the Clopper–Pearson lower bound may not exceed δ — and every warm cell
must replay its cold twin bit-for-bit.  The adversarial optional-stopping
audit holds the confidence sequence to its δ/2 budget at every prefix
length, not just the stopping time.

Emitted rows carry the raw failure counts and CP bands so the aggregate
report doubles as a drift ledger across report regenerations.
"""

import time

from repro.calibration import default_targets, run_audit

from bench_utils import emit

REPLICATIONS = 60
EPSILON = 0.3
DELTA = 0.1
BASE_SEED = 28
HORIZON = 256


def test_e28_calibration_audit(benchmark):
    report = benchmark.pedantic(
        lambda: run_audit(
            default_targets("small"),
            epsilon=EPSILON,
            delta=DELTA,
            replications=REPLICATIONS,
            base_seed=BASE_SEED,
            horizon=HORIZON,
        ),
        rounds=1,
        iterations=1,
    )
    for cell in report.cells:
        emit(
            "E28",
            cell=cell.cell_id,
            truth=f"{cell.truth:.6f}",
            truth_kind=cell.truth_kind,
            replications=cell.miscoverage.replications,
            miscoverage=f"{cell.miscoverage.rate:.4f}",
            cp_lower=f"{cell.miscoverage.lower:.4f}",
            cp_upper=f"{cell.miscoverage.upper:.4f}",
            nominal_delta=cell.miscoverage.nominal_delta,
            mean_samples=f"{cell.mean_samples:.1f}",
            sharpness=(
                f"{cell.sharpness.mean_floor_ratio:.3f}"
                if cell.sharpness is not None
                else "-"
            ),
            replay_mismatches=cell.replay_mismatches,
            passed=cell.passed,
        )
    for result in report.anytime:
        emit(
            "E28",
            cell=f"{result.target}/anytime",
            truth=f"{result.truth:.6f}",
            horizon=result.horizon,
            violations=result.summary.failures,
            violation_rate=f"{result.summary.rate:.4f}",
            cp_lower=f"{result.summary.lower:.4f}",
            nominal_delta=result.summary.nominal_delta,
            passed=result.passed,
        )
    assert report.cells, "audit produced no cells"
    assert report.passed, f"coverage drift in {report.failing_cells()}"
    # Both planes must actually have been audited (numpy is present in CI).
    backends = {cell.backend for cell in report.cells}
    if not report.skipped_backends:
        assert backends == {"scalar", "vector"}
    warm_cells = [c for c in report.cells if c.warmth == "warm"]
    assert warm_cells and all(c.replay_mismatches == 0 for c in warm_cells)


def test_e28_audit_wall_clock():
    """The PR-gate audit must stay CI-friendly (soft budget, generous lid)."""
    start = time.perf_counter()
    report = run_audit(
        default_targets("small"),
        replications=10,
        base_seed=1,
        horizon=64,
    )
    elapsed = time.perf_counter() - start
    emit(
        "E28",
        probe="wall-clock",
        replications=10,
        seconds=f"{elapsed:.2f}",
        cells=len(report.cells),
    )
    assert report.passed
    assert elapsed < 120.0
