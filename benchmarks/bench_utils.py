"""Shared helpers for the experiment benches.

Every bench regenerates one row/series of the paper's worked examples or
empirically validates one theorem's *shape* (accuracy where an FPRAS is
proven, blow-up/failure where hardness is proven).  ``emit`` prints rows in
a uniform ``experiment | key=value`` format; run pytest with ``-s`` to see
them, or use ``python benchmarks/report_all.py`` for the full report.
"""

from __future__ import annotations

import sys
from typing import Mapping


def emit(experiment: str, **row: object) -> None:
    """Print one result row for an experiment id (e.g. ``E1``)."""
    rendered = "  ".join(f"{key}={value}" for key, value in row.items())
    print(f"[{experiment}] {rendered}", file=sys.stderr)


def emit_table(experiment: str, rows: list[Mapping[str, object]]) -> None:
    """Print a list of rows for one experiment."""
    for row in rows:
        emit(experiment, **row)


def relative_error(estimate: float, exact: float) -> float:
    """|estimate - exact| / exact (``inf`` when exact is 0 but estimate not)."""
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - exact) / exact
