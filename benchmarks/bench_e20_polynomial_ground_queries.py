"""E20 — Extension: exact polynomial OCQA for ground queries (primary keys).

A small addition beyond the paper's toolbox (documented in DESIGN.md):
for *ground* queries over primary keys, ``P_{M_ur}``, ``P_{M_us}`` and the
singleton variants are computable exactly in polynomial time — no sampling,
no (ε, δ).  This bench validates the formulas against the exponential exact
engines at small sizes, exhibits the non-product coupling of ``M_us`` block
outcomes, and times the polynomial path at sizes enumeration cannot reach.
"""

import random
from fractions import Fraction

from repro.core import fact
from repro.core.queries import Atom, boolean_cq
from repro.counting.survival import (
    ground_survival_mur,
    ground_survival_mus,
    ground_survival_mus1,
)
from repro.exact import rrfreq, srfreq
from repro.workloads import block_database, random_block_database

from bench_utils import emit


def validation_rows():
    rows = []
    for sizes in ((3, 2), (3, 3), (4, 3)):
        database, constraints = block_database(list(sizes))
        chosen = {fact("R", "a0", "b0"), fact("R", "a1", "b0")}
        query = boolean_cq(*(Atom(f.relation, f.values) for f in sorted(chosen, key=str)))
        rows.append(
            (
                sizes,
                ground_survival_mur(database, constraints, chosen),
                rrfreq(database, constraints, query),
                ground_survival_mus(database, constraints, chosen),
                srfreq(database, constraints, query),
            )
        )
    return rows


def test_e20_polynomial_matches_exact(benchmark):
    rows = benchmark(validation_rows)
    for sizes, mur_poly, mur_exact, mus_poly, mus_exact in rows:
        assert mur_poly == mur_exact
        assert mus_poly == mus_exact
        emit(
            "E20",
            block_sizes=sizes,
            P_mur=str(mur_poly),
            P_mus=str(mus_poly),
            status="poly == exponential-exact",
        )


def test_e20_mus_coupling(benchmark):
    def coupling():
        database, constraints = block_database([3, 3])
        f, g = fact("R", "a0", "b0"), fact("R", "a1", "b0")
        joint = ground_survival_mus(database, constraints, {f, g})
        product = ground_survival_mus(database, constraints, {f}) * (
            ground_survival_mus(database, constraints, {g})
        )
        return joint, product

    joint, product = benchmark(coupling)
    assert joint == Fraction(19, 333)
    assert joint != product
    emit(
        "E20",
        finding="M_us block outcomes are dependent",
        joint=str(joint),
        product_of_marginals=str(product),
    )


def test_e20_scales_beyond_enumeration(benchmark):
    """200 blocks of up to 8 facts: |CRS| is astronomical, the poly path flies."""
    database, constraints = random_block_database(
        200, 8, random.Random(42), min_block_size=2
    )
    targets = frozenset(
        {database.sorted_facts()[0], database.sorted_facts()[-1]}
    )

    def compute():
        return ground_survival_mus(database, constraints, targets)

    value = benchmark(compute)
    assert 0 < value < 1
    emit(
        "E20",
        blocks=200,
        facts=len(database),
        P_mus=f"{float(value):.6f}",
        note="exact, no sampling",
    )
