#!/usr/bin/env python3
"""Quickstart: operational CQA on the paper's running example.

Builds the Example 3.6 database (three facts, two FDs), inspects its
violations and repairing Markov chain, and computes the probability of a
query answer under all three uniform semantics — exactly and approximately.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    M_UO,
    M_UO1,
    M_UR,
    M_US,
    Database,
    FDSet,
    Schema,
    atom,
    boolean_cq,
    fact,
    fd,
    ocqa_probability,
)
from repro.core import violations


def main() -> None:
    # -- 1. Schema, database, FDs (Example 3.6) -------------------------------
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    f1 = fact("R", "a1", "b1", "c1")
    f2 = fact("R", "a1", "b2", "c2")
    f3 = fact("R", "a2", "b1", "c2")
    database = Database([f1, f2, f3], schema=schema)
    constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])

    print("Database:", database)
    print("FDs:     ", constraints)
    print("Consistent?", constraints.satisfied_by(database))
    print("Violations:")
    for violation in sorted(violations(database, constraints), key=str):
        print("  ", violation)

    # -- 2. The repairing Markov chain (Figure 1) ------------------------------
    chain = M_US.chain(database, constraints)
    chain.validate()
    print(f"\nRepairing Markov chain: {chain.node_count()} nodes, "
          f"{len(chain.leaves())} complete sequences")
    print("Operational repairs under M_us:")
    for repair, probability in sorted(
        chain.repair_probabilities().items(), key=lambda item: str(item[0])
    ):
        print(f"   {str(repair):<55} p = {probability}")

    # -- 3. OCQA under the three uniform semantics -----------------------------
    query = boolean_cq(atom("R", "a1", "b1", "c1"))  # "does f1 survive?"
    print(f"\nQuery: {query}")
    for generator in (M_UR, M_US, M_UO, M_UO1):
        probability = ocqa_probability(database, constraints, generator, query)
        print(f"   P under {generator.name:<7} = {probability} "
              f"(= {float(probability):.4f})")

    # -- 4. The same probability via the FPRAS (Theorem 7.5 route) -------------
    import random

    estimate = ocqa_probability(
        database,
        constraints,
        M_UO1,
        query,
        method="approx",
        epsilon=0.1,
        delta=0.05,
        rng=random.Random(0),
    )
    exact = ocqa_probability(database, constraints, M_UO1, query)
    print(f"\nFPRAS estimate under M_uo,1: {estimate.estimate:.4f} "
          f"({estimate.samples_used} samples; exact {float(exact):.4f})")
    assert abs(estimate.estimate - float(exact)) <= 0.1 * float(exact) + 1e-9


if __name__ == "__main__":
    main()
