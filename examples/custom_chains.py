#!/usr/bin/env python3
"""Custom repairing Markov chains: beyond the three uniform generators.

The paper frames ``M_Σ`` as an arbitrary function from databases to chains
and then studies three uniform instances.  This walkthrough builds custom
generators with the library:

1. the intro's *trust-weighted* chain (sources with different reliability);
2. a user-defined local generator from scratch (prefer-pair deletions);
3. the diagnostics layer comparing the induced repair distributions.

Run:  python examples/custom_chains.py
"""

from dataclasses import dataclass
from fractions import Fraction

from repro import (
    Database,
    FDSet,
    Schema,
    TrustWeightedOperations,
    compare_generators,
    fact,
    fd,
    local_repair_distribution,
    M_UO,
    M_UR,
    M_US,
)
from repro.analysis import repair_distribution_entropy
from repro.chains.local import LocalChainGenerator
from repro.core.operations import justified_operations


def scenario():
    """Three sources report a sensor reading; two of them disagree twice."""
    schema = Schema.from_spec({"Reading": ["sensor", "value"]})
    constraints = FDSet(schema, [fd("Reading", "sensor", "value")])
    lab = fact("Reading", "s1", 17)          # trusted lab feed
    field = fact("Reading", "s1", 19)        # flaky field feed
    backup = fact("Reading", "s2", 3)        # uncontested
    database = Database([lab, field, backup], schema=schema)
    return database, constraints, lab, field


def trust_weighted_demo() -> None:
    print("=" * 72)
    print("1. Trust-weighted repairing (the intro's idea, generalized)")
    print("=" * 72)
    database, constraints, lab, field = scenario()
    generator = TrustWeightedOperations.with_trust(
        {lab: Fraction(9, 10), field: Fraction(3, 10)}
    )
    distribution = local_repair_distribution(database, constraints, generator)
    print("  repair distribution (lab trusted 0.9, field 0.3):")
    for repair, probability in sorted(distribution.items(), key=lambda kv: str(kv[0])):
        print(f"    {str(repair):<50} p = {probability} (= {float(probability):.3f})")
    keep_lab = sum(
        p for repair, p in distribution.items() if lab in repair
    )
    print(f"  P(lab reading survives) = {keep_lab} (= {float(keep_lab):.3f})")


@dataclass(frozen=True)
class PreferPairs(LocalChainGenerator):
    """A custom local generator: resolve conflicts by deleting both sides.

    Pair removals get weight 2, singles weight 1 — a cautious policy that
    prefers dropping all contested information.
    """

    @property
    def base_name(self) -> str:
        return "M_pairs"

    def operation_distribution(self, state, constraints):
        operations = sorted(justified_operations(state, constraints))
        weights = {op: Fraction(2 if op.is_pair else 1) for op in operations}
        total = sum(weights.values())
        return {op: weight / total for op, weight in weights.items()}


def custom_generator_demo() -> None:
    print()
    print("=" * 72)
    print("2. A custom local generator (pairs preferred)")
    print("=" * 72)
    database, constraints, lab, field = scenario()
    generator = PreferPairs()
    chain = generator.chain(database, constraints)
    chain.validate()  # Definition 3.5 conditions hold
    distribution = local_repair_distribution(database, constraints, generator)
    print("  repair distribution under M_pairs:")
    for repair, probability in sorted(distribution.items(), key=lambda kv: str(kv[0])):
        print(f"    {str(repair):<50} p = {probability}")
    empty_mass = sum(
        p for repair, p in distribution.items() if lab not in repair and field not in repair
    )
    print(f"  P(sensor s1 loses both readings) = {empty_mass}")


def comparison_demo() -> None:
    print()
    print("=" * 72)
    print("3. Comparing generators with the diagnostics layer")
    print("=" * 72)
    database, constraints, lab, field = scenario()
    generators = (
        M_UR,
        M_US,
        M_UO,
        TrustWeightedOperations.with_trust({lab: Fraction(9, 10), field: Fraction(3, 10)}),
        PreferPairs(),
    )
    summary = compare_generators(database, constraints, generators)
    size_header = "E[size]"
    print(f"  {'generator':<10} {'repairs':>8} {size_header:>10} {'entropy':>9}")
    for name, row in summary.items():
        print(
            f"  {name:<10} {row['repairs']:>8} "
            f"{float(row['expected_size']):>10.3f} {row['entropy_bits']:>9.3f}"
        )
    print("  (the trust chain concentrates mass -> lower entropy than M_ur)")


if __name__ == "__main__":
    trust_weighted_demo()
    custom_generator_demo()
    comparison_demo()
