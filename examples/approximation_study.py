#!/usr/bin/env python3
"""Approximation study: FPRAS guarantees in practice.

Reproduces the paper's positive results as an accuracy/cost study:

1. primary keys + ``M_ur``/``M_us`` (Theorems 5.1(2)/6.1(2)):
   estimate vs exact as ε tightens, with the sample counts implied by the
   Lemma 5.3/6.3 positivity bounds and by the adaptive stopping rule;
2. arbitrary keys + ``M_uo`` (Theorem 7.1(2)): the regime beyond primary
   keys where only the uniform-operations semantics stays approximable;
3. the Prop D.6 pathology: why plain ``M_uo`` + FDs breaks Monte Carlo,
   and how ``M_uo,1`` (Theorem 7.5) repairs it.

Run:  python examples/approximation_study.py

Set ``REPRO_EXAMPLE_FAST=1`` to shrink instances and budgets (seconds
instead of minutes) — the smoke test in ``tests/test_examples.py`` runs
every example this way so the scripts cannot silently rot.
"""

import os
import random

from repro import M_UO, M_UO1, M_UR, M_US, atom, boolean_cq
from repro.approx.fpras import fpras_ocqa
from repro.approx.montecarlo import chernoff_sample_size
from repro.approx.bounds import rrfreq_lower_bound
from repro.exact import exact_ocqa
from repro.reductions import exact_centre_probability, pathological_instance
from repro.sampling.operations_sampler import UniformOperationsSampler
from repro.workloads import multikey_database, random_block_database

#: Fast mode: same study, toy sizes (used by the examples smoke test).
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def primary_key_study() -> None:
    print("=" * 72)
    print("1. Primary keys: M_ur and M_us FPRASes (Theorems 5.1(2), 6.1(2))")
    print("=" * 72)
    database, constraints = random_block_database(
        5, 3, random.Random(42), min_block_size=2
    )
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    bound = rrfreq_lower_bound(database, query)
    print(f"  |D| = {len(database)}, Lemma 5.3 bound = {bound}")
    for generator in (M_UR, M_US):
        exact = float(exact_ocqa(database, constraints, generator, query))
        print(f"  {generator.name}: exact = {exact:.4f}")
        for epsilon in (0.5,) if FAST else (0.5, 0.25, 0.1):
            worst_case = chernoff_sample_size(epsilon, 0.05, float(bound))
            result = fpras_ocqa(
                database, constraints, generator, query,
                epsilon=epsilon, delta=0.05, method="dklr",
                rng=random.Random(int(epsilon * 100)),
            )
            print(
                f"    eps={epsilon:<5} estimate={result.estimate:.4f} "
                f"adaptive_samples={result.samples_used:<7} "
                f"(worst-case fixed-N budget: {worst_case})"
            )


def arbitrary_keys_study() -> None:
    print()
    print("=" * 72)
    print("2. Arbitrary keys: M_uo stays approximable (Theorem 7.1(2))")
    print("=" * 72)
    instance = multikey_database(
        5 if FAST else 7, max_degree=3, rng=random.Random(77)
    )
    database, constraints = instance.database, instance.constraints
    print(f"  |D| = {len(database)} facts over R/"
          f"{constraints.schema.relation('R').arity}, {len(constraints)} keys "
          f"(NOT primary keys)")
    target = database.sorted_facts()[0]
    query = boolean_cq(atom(target.relation, *target.values))
    exact = float(exact_ocqa(database, constraints, M_UO, query))
    result = fpras_ocqa(
        database, constraints, M_UO, query,
        epsilon=0.5 if FAST else 0.15, delta=0.05, method="dklr",
        rng=random.Random(78),
    )
    print(f"  exact P_M_uo = {exact:.4f}; estimate = {result.estimate:.4f} "
          f"({result.samples_used} walks)")
    print("  -> the classical approach has no FPRAS here (beyond primary keys)")


def pathology_study() -> None:
    print()
    print("=" * 72)
    print("3. FDs: the Prop D.6 pathology and the Theorem 7.5 fix")
    print("=" * 72)
    n = 8 if FAST else 18
    instance = pathological_instance(n)
    exact = exact_centre_probability(n)
    print(f"  D_{n}: P_M_uo(centre survives) = {float(exact):.2e} "
          f"(closed form, < 2^-{n - 1})")
    walker = UniformOperationsSampler(
        instance.database, instance.constraints, rng=random.Random(90)
    )
    walks = 200 if FAST else 5_000
    hits = sum(1 for _ in range(walks) if instance.query.entails(walker.sample()))
    print(f"  plain M_uo Monte Carlo: {hits} hits in {walks} walks "
          f"-> estimator returns 0 for a positive probability")
    result = fpras_ocqa(
        instance.database, instance.constraints, M_UO1, instance.query,
        epsilon=0.5 if FAST else 0.25, delta=0.1, method="dklr",
        rng=random.Random(91),
    )
    exact1 = float(
        exact_ocqa(instance.database, instance.constraints, M_UO1, instance.query)
    )
    print(f"  M_uo,1 (singleton ops): exact = {exact1:.4f}, "
          f"estimate = {result.estimate:.4f} ({result.samples_used} walks)")


if __name__ == "__main__":
    primary_key_study()
    arbitrary_keys_study()
    pathology_study()
