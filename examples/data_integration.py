#!/usr/bin/env python3
"""Data integration: the paper's motivating scenario, at scale.

Several sources report employee records; merging them violates the key of
``Emp`` (same id, different names).  Operational CQA ranks each reported
name by the probability that a repair keeps it — the intro's example is the
two-fact special case.  The script then scales to many employees and
sources, where exact computation is still feasible block-by-block and the
FPRAS agrees with it.

Run:  python examples/data_integration.py

Set ``REPRO_EXAMPLE_FAST=1`` to shrink the at-scale section (used by the
examples smoke test in ``tests/test_examples.py``).
"""

import os
import random
from fractions import Fraction

from repro import M_UO, M_UR, M_US, atom, cq, var
from repro.cqa import operational_consistent_answers
from repro.workloads import intro_example, merged_sources

#: Fast mode: same pipeline, fewer employees/sources.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def intro() -> None:
    print("=" * 72)
    print("The introduction's example: Emp(1, Alice) vs Emp(1, Tom)")
    print("=" * 72)
    scenario = intro_example()
    n = var("n")
    query = cq((n,), (atom("Emp", 1, n),))
    for generator in (M_UR, M_US, M_UO):
        rows = operational_consistent_answers(
            scenario.database, scenario.constraints, generator, query
        )
        rendered = ", ".join(
            f"{row.answer[0]}: {row.probability}" for row in rows
        )
        print(f"  {generator.name:<5} -> {rendered}")
    print("  (all uniform semantics coincide on a single 2-fact block:")
    print("   each name survives in 1 of the 3 operational repairs)")


def at_scale() -> None:
    print()
    employees, sources = (4, 2) if FAST else (12, 3)
    print("=" * 72)
    print(f"Merging {sources} sources x {employees} employees (40% disagreement)")
    print("=" * 72)
    scenario = merged_sources(employees, sources, 0.4, random.Random(2024))
    i, n = var("i"), var("n")
    print(f"  merged database: {len(scenario.database)} facts, "
          f"consistent = {scenario.constraints.satisfied_by(scenario.database)}")

    # Which employee ids survive repairing, with what probability?
    survival = operational_consistent_answers(
        scenario.database, scenario.constraints, M_UR, cq((i,), (atom("Emp", i, n),))
    )
    uncertain = [row for row in survival if row.probability != 1]
    print(f"  ids with certain survival: {len(survival) - len(uncertain)}")
    print(f"  ids at risk of full deletion: {len(uncertain)}")

    # Rank the reported names for the most contested employee.
    contested = min(survival, key=lambda row: row.probability).answer[0]
    names = operational_consistent_answers(
        scenario.database,
        scenario.constraints,
        M_UR,
        cq((n,), (atom("Emp", contested, n),)),
    )
    print(f"\n  name candidates for contested employee {contested!r}:")
    for row in names:
        print(f"    {row.answer[0]:<14} p = {row.probability} "
              f"(= {float(row.probability):.3f})")

    # Source attribution: how much probability mass does each source keep?
    print("\n  probability-weighted trust per source (uniform repairs):")
    mass: dict[str, Fraction] = {}
    for record, source in scenario.source_of.items():
        query = cq((), (atom("Emp", record.values[0], record.values[1]),))
        rows = operational_consistent_answers(
            scenario.database, scenario.constraints, M_UR, query
        )
        kept = rows[0].probability if rows else Fraction(0)
        mass[source] = mass.get(source, Fraction(0)) + kept
    for source in sorted(mass):
        print(f"    {source}: expected surviving facts = {float(mass[source]):.2f}")


if __name__ == "__main__":
    intro()
    at_scale()
