#!/usr/bin/env python3
"""Hardness gallery: the paper's negative results as running code.

Every lower-bound construction in the paper is executable:

1. ♯H-Coloring -> RRFreq (Theorem 5.1(1)): the oracle identity
   ``|hom(G, H)| = 3^|V| (1 - rrfreq)`` verified against brute force;
2. ♯Pos2DNF -> RRFreq¹ (Theorem E.1(1)): ``|sat(φ)| = 2^|var| rrfreq¹``;
3. graphs -> key databases (Prop 5.5): ``|CORep(D_G, Σ_K)| = |IS(G)|`` via
   Misra–Gries edge colouring;
4. the FD amplifier (Lemma 5.6): ``|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1``;
5. the Prop D.6 family: exponentially small ``M_uo`` probabilities.

Run:  python examples/hardness_gallery.py
"""

import random

from repro.exact import count_candidate_repairs, rrfreq, rrfreq1
from repro.reductions import (
    Pos2DNF,
    amplify,
    count_h_colorings,
    cycle_graph,
    exact_centre_probability,
    hcoloring_instance,
    hom_count_via_oracle,
    independent_set_database,
    misra_gries_edge_coloring,
    pathological_instance,
    pos2dnf_instance,
    proposition_d6_upper_bound,
    repair_count_via_rrfreq,
    sat_count_via_oracle,
)
from repro.workloads import random_connected_bounded_degree_graph


def hcoloring_demo() -> None:
    print("=" * 72)
    print("1. #H-Coloring -> RRFreq (Theorem 5.1(1))")
    print("=" * 72)
    graph = cycle_graph(5)
    instance = hcoloring_instance(graph)
    print(f"  G = C5; D_G has {len(instance.database)} facts; "
          f"repair space 3^5 = {instance.repair_space_size()}")

    def oracle(database, answer):
        return rrfreq(database, instance.constraints, instance.query, answer)

    via_oracle = hom_count_via_oracle(graph, oracle)
    brute = count_h_colorings(graph)
    print(f"  HOM via rrfreq oracle: {via_oracle}; brute force: {brute}")
    assert via_oracle == brute


def pos2dnf_demo() -> None:
    print()
    print("=" * 72)
    print("2. #Pos2DNF -> RRFreq1 (Theorem E.1(1))")
    print("=" * 72)
    formula = Pos2DNF((("x", "y"), ("y", "z"), ("z", "w")))
    instance = pos2dnf_instance(formula)
    print(f"  φ = {formula}")

    def oracle(database, answer):
        return rrfreq1(database, instance.constraints, instance.query, answer)

    via_oracle = sat_count_via_oracle(formula, oracle)
    print(f"  |sat| via rrfreq1 oracle: {via_oracle}; "
          f"brute force: {formula.count_satisfying()}")
    assert via_oracle == formula.count_satisfying()


def vizing_demo() -> None:
    print()
    print("=" * 72)
    print("3. Graphs as key databases (Prop 5.5, via Misra-Gries)")
    print("=" * 72)
    graph = random_connected_bounded_degree_graph(9, 3, random.Random(5))
    colors = misra_gries_edge_coloring(graph)
    print(f"  G: {graph.node_count()} nodes, {graph.edge_count()} edges, "
          f"Δ = {graph.max_degree()}; edge colours used: "
          f"{len(set(colors.values()))} <= Δ+1")
    instance = independent_set_database(graph)
    corep = count_candidate_repairs(instance.database, instance.constraints)
    independent_sets = graph.count_independent_sets()
    print(f"  |CORep(D_G, Σ_K)| = {corep} = |IS(G)| = {independent_sets}")
    assert corep == independent_sets


def amplifier_demo() -> None:
    print()
    print("=" * 72)
    print("4. The FD amplifier (Lemma 5.6)")
    print("=" * 72)
    keys_instance = independent_set_database(cycle_graph(4))
    base = count_candidate_repairs(keys_instance.database, keys_instance.constraints)
    amplified = amplify(keys_instance.database, keys_instance.constraints)
    lifted = count_candidate_repairs(amplified.database, amplified.constraints)
    frequency = rrfreq(amplified.database, amplified.constraints, amplified.query)
    print(f"  keys instance: |CORep| = {base}")
    print(f"  amplified FD instance: |CORep| = {lifted} (= {base} + 1)")
    print(f"  rrfreq(D_F, Q_F) = {frequency} (= 1/(|CORep|+1))")
    recovered = repair_count_via_rrfreq(
        keys_instance.database,
        keys_instance.constraints,
        lambda db, c, q, a: rrfreq(db, c, q, a),
    )
    print(f"  transfer algorithm recovers: {recovered}")
    assert recovered == base


def pathology_demo() -> None:
    print()
    print("=" * 72)
    print("5. Prop D.6: exponentially small probabilities under M_uo + FDs")
    print("=" * 72)
    print(f"  {'n':>4} {'P (exact)':>14} {'2^-(n-1)':>14}")
    for n in (2, 6, 10, 14, 18, 22):
        value = exact_centre_probability(n)
        bound = proposition_d6_upper_bound(n)
        print(f"  {n:>4} {float(value):>14.3e} {float(bound):>14.3e}")
        assert 0 < value <= bound
    instance = pathological_instance(22)
    print(f"  (D_22 holds {len(instance.database)} facts; a Monte-Carlo "
          f"estimator needs ~{int(1 / float(exact_centre_probability(22)))} "
          f"walks per hit)")


if __name__ == "__main__":
    hcoloring_demo()
    pos2dnf_demo()
    vizing_demo()
    amplifier_demo()
    pathology_demo()
