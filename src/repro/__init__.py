"""repro — Uniform Operational Consistent Query Answering (PODS 2022).

A complete, executable reproduction of Calautti, Livshits, Pieris and
Schneider, *Uniform Operational Consistent Query Answering* (PODS 2022,
arXiv:2204.10592): the operational repair framework, the three uniform
repairing Markov chain generators and their singleton-operation variants,
exact engines, polynomial counters and samplers, FPRAS wrappers, the
hardness reductions as runnable constructions, a classical-CQA baseline,
and a batched estimation engine that shares sample pools across requests.

Quickstart::

    from repro import (
        Database, FDSet, Schema, fact, fd,
        M_UR, M_US, M_UO, operational_consistent_answers,
    )

See ``examples/quickstart.py``, ``README.md`` and ``docs/ARCHITECTURE.md``.
"""

from .approx import (
    AdaptiveResult,
    EstimateResult,
    FPRASUnavailable,
    SequentialEstimator,
    adaptive_estimate,
    fixed_budget_estimate,
    fpras_ocqa,
)
from .chains import (
    ALL_GENERATORS,
    M_UO,
    M_UO1,
    M_UR,
    M_UR1,
    M_US,
    M_US1,
    MarkovChainGenerator,
    RepairingMarkovChain,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from .core import (
    ConflictGraph,
    ConjunctiveQuery,
    Database,
    FDSet,
    Fact,
    FunctionalDependency,
    InstanceIndex,
    Operation,
    RelationSchema,
    RepairingSequence,
    Schema,
    Variable,
    atom,
    boolean_cq,
    cq,
    fact,
    fd,
    key,
    var,
)
from .cqa import (
    classical_relative_frequency,
    consistent_answers,
    ocqa_probability,
    operational_consistent_answers,
    subset_repairs,
)
from .engine import (
    BatchRequest,
    BatchResult,
    CacheStore,
    EstimationSession,
    SamplePool,
    batch_estimate,
)
from .exact import exact_ocqa, rrfreq, rrfreq1, srfreq, srfreq1
from .exact.possibility import answer_is_possible, witnessing_repair
from .chains.local import (
    LocalChainGenerator,
    LocalChainSampler,
    local_answer_probability,
    local_repair_distribution,
)
from .chains.trust import TrustWeightedOperations
from .counting.survival import fact_survival_probability
from .analysis import (
    compare_generators,
    expected_answer_count,
    expected_repair_size,
    inconsistency_report,
    repair_distribution,
)
from .io import (
    WorkloadSpec,
    load_instance,
    load_workload,
    load_workload_spec,
    parse_query,
    save_instance,
    workload_from_dict,
    workload_spec_from_dict,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_GENERATORS",
    "AdaptiveResult",
    "CacheStore",
    "LocalChainGenerator",
    "LocalChainSampler",
    "TrustWeightedOperations",
    "SequentialEstimator",
    "WorkloadSpec",
    "adaptive_estimate",
    "answer_is_possible",
    "compare_generators",
    "expected_answer_count",
    "expected_repair_size",
    "fact_survival_probability",
    "batch_estimate",
    "inconsistency_report",
    "load_instance",
    "load_workload",
    "load_workload_spec",
    "local_answer_probability",
    "local_repair_distribution",
    "parse_query",
    "repair_distribution",
    "save_instance",
    "witnessing_repair",
    "workload_from_dict",
    "workload_spec_from_dict",
    "BatchRequest",
    "BatchResult",
    "ConflictGraph",
    "ConjunctiveQuery",
    "Database",
    "EstimateResult",
    "EstimationSession",
    "FDSet",
    "FPRASUnavailable",
    "Fact",
    "FunctionalDependency",
    "InstanceIndex",
    "M_UO",
    "M_UO1",
    "M_UR",
    "M_UR1",
    "M_US",
    "M_US1",
    "MarkovChainGenerator",
    "Operation",
    "RelationSchema",
    "RepairingMarkovChain",
    "RepairingSequence",
    "SamplePool",
    "Schema",
    "UniformOperations",
    "UniformRepairs",
    "UniformSequences",
    "Variable",
    "__version__",
    "atom",
    "boolean_cq",
    "classical_relative_frequency",
    "consistent_answers",
    "cq",
    "exact_ocqa",
    "fact",
    "fd",
    "fixed_budget_estimate",
    "fpras_ocqa",
    "key",
    "ocqa_probability",
    "operational_consistent_answers",
    "rrfreq",
    "rrfreq1",
    "srfreq",
    "srfreq1",
    "subset_repairs",
    "var",
]
