"""Closed-form per-block sequence counts (proof of Lemma C.1).

For a single block ``B`` of size ``m >= 2`` under a primary key, every
complete repairing sequence over ``B`` either keeps one fact (non-empty
result; with ``i`` pair removals it has length ``m - i - 1``) or removes all
facts (empty result, only possible when the last operation removes a pair;
length ``m - i``).  The paper derives:

``S^{ne,i}_m = m! (m-i-1)! / (2^i i! (m-2i-1)!)``
``S^{e,i}_m  = m! (m-i-1)! / (2^i (i-1)! (m-2i)!)``  for ``i >= 1``

Worked check (Example C.2, ``m = 3``): ``S^{ne,0}=6, S^{ne,1}=3, S^{e,1}=3``.
"""

from __future__ import annotations

from math import comb, factorial


def nonempty_block_sequences(m: int, i: int) -> int:
    """``S^{ne,i}_m``: complete block sequences with a non-empty result.

    Zero outside the feasible range (in particular ``i = m/2`` for even
    ``m``: one cannot keep a fact using ``m/2`` pair removals).
    """
    if m < 2:
        raise ValueError("block sequence counts are defined for blocks of size >= 2")
    if i < 0 or m - 2 * i - 1 < 0:
        return 0
    return (
        factorial(m)
        * factorial(m - i - 1)
        // (2**i * factorial(i) * factorial(m - 2 * i - 1))
    )


def empty_block_sequences(m: int, i: int) -> int:
    """``S^{e,i}_m``: complete block sequences with an empty result.

    Zero for ``i = 0`` (an empty repair needs at least one pair removal).
    """
    if m < 2:
        raise ValueError("block sequence counts are defined for blocks of size >= 2")
    if i < 1 or m - 2 * i < 0:
        return 0
    return (
        factorial(m)
        * factorial(m - i - 1)
        // (2**i * factorial(i - 1) * factorial(m - 2 * i))
    )


def max_pair_removals(m: int) -> int:
    """``⌊m/2⌋``: the largest number of pair removals a block admits."""
    return m // 2


def block_sequence_count(m: int) -> int:
    """All complete repairing sequences over one block of size ``m``.

    Example C.2 reports 12 for ``m = 3`` and 3 for ``m = 2``.
    """
    total = 0
    for i in range(max_pair_removals(m) + 1):
        total += nonempty_block_sequences(m, i) + empty_block_sequences(m, i)
    return total


def block_length_distribution(m: int) -> dict[int, int]:
    """Complete block sequences grouped by length.

    The shuffle-product DP of :mod:`repro.counting.crs_count` combines blocks
    through these distributions: interleavings depend only on lengths.
    """
    distribution: dict[int, int] = {}
    for i in range(max_pair_removals(m) + 1):
        nonempty = nonempty_block_sequences(m, i)
        if nonempty:
            length = m - i - 1
            distribution[length] = distribution.get(length, 0) + nonempty
        empty = empty_block_sequences(m, i)
        if empty:
            length = m - i
            distribution[length] = distribution.get(length, 0) + empty
    return distribution


def singleton_block_sequence_count(m: int) -> int:
    """``m!``: complete singleton-operation sequences over a block of size ``m``.

    Choose the surviving fact (``m`` ways) and remove the other ``m - 1``
    facts in any order — every removal is justified while the block still
    holds two facts or more (Appendix E.2).
    """
    if m < 2:
        raise ValueError("block sequence counts are defined for blocks of size >= 2")
    return factorial(m)


def singleton_block_length_distribution(m: int) -> dict[int, int]:
    """Length distribution of singleton-only block sequences: all ``m - 1`` long."""
    return {m - 1: singleton_block_sequence_count(m)}


def interleavings(length_a: int, length_b: int) -> int:
    """Ways to interleave two sequences of the given lengths: ``C(a+b, a)``."""
    return comb(length_a + length_b, length_a)
