"""Polynomial exact probabilities for ground queries under primary keys.

The paper's positive results run Monte Carlo even for the simplest queries;
for *ground* queries (a set of specific facts that must survive) over
primary keys the probabilities are in fact computable exactly in polynomial
time, because blocks interact in a controlled way:

* ``M_ur`` / ``M_ur,1``: block outcomes are chosen independently and
  uniformly, so ``P = Π 1/(|B_i| + 1)`` (resp. ``Π 1/|B_i|``) over the
  blocks hit by the facts;
* ``M_us``: the block outcomes are *not* independent (sequence interleavings
  couple block lengths), but conditioning each hit block on "non-empty
  outcome" and shuffle-multiplying length distributions gives the exact
  joint probability — a polynomial generalization of Example C.3;
* ``M_us,1``: every singleton sequence keeps exactly one fact per block,
  chosen uniformly by symmetry, so ``P = Π 1/|B_i|``.

These serve as fast paths, as ground truth for sampler tests at sizes the
exponential engines cannot reach, and as a small original extension of the
paper's algorithmic toolbox (clearly flagged as such in DESIGN.md).
"""

from __future__ import annotations

from fractions import Fraction

from ..core.blocks import BlockError, block_decomposition, blocks_of_facts
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from .block_counts import block_length_distribution, max_pair_removals, nonempty_block_sequences
from .crs_count import _shuffle  # shared shuffle-product helper


def _hit_blocks(database: Database, constraints: FDSet, facts: frozenset[Fact]):
    decomposition = block_decomposition(database, constraints)
    missing = [f for f in sorted(facts, key=str) if f not in database]
    if missing:
        raise BlockError(f"facts not in the database: {missing}")
    return decomposition, blocks_of_facts(decomposition, facts)


def ground_survival_mur(
    database: Database,
    constraints: FDSet,
    facts: frozenset[Fact] | set[Fact],
    singleton_only: bool = False,
) -> Fraction:
    """``P_{M_ur}(all of ``facts`` survive)`` in polynomial time.

    Facts sharing a block cannot survive together (probability 0); otherwise
    independence across blocks gives the product formula.
    """
    fact_set = frozenset(facts)
    try:
        _, hit = _hit_blocks(database, constraints, fact_set)
    except BlockError as error:
        if "share a block" in str(error):
            return Fraction(0)
        raise
    probability = Fraction(1)
    for block in hit:
        if not block.has_conflicts:
            continue  # conflict-free facts always survive
        if singleton_only:
            probability *= Fraction(1, len(block))
        else:
            probability *= Fraction(1, len(block) + 1)
    return probability


def ground_survival_mus(
    database: Database,
    constraints: FDSet,
    facts: frozenset[Fact] | set[Fact],
) -> Fraction:
    """``P_{M_us}(all of ``facts`` survive)`` in polynomial time.

    Let ``B_1..B_m`` be the conflicting blocks hit by the facts (one fact
    per block, else the probability is 0) and ``R`` the remaining
    conflicting blocks.  The sequences keeping the specific facts are, by
    within-block symmetry, ``1/(|B_1|·..·|B_m|)`` of the sequences whose
    hit blocks end non-empty, and those are counted by shuffling the
    *non-empty* length distributions of the hit blocks with the full
    distributions of the rest.
    """
    fact_set = frozenset(facts)
    try:
        decomposition, hit = _hit_blocks(database, constraints, fact_set)
    except BlockError as error:
        if "share a block" in str(error):
            return Fraction(0)
        raise
    hit_conflicting = [block for block in hit if block.has_conflicts]
    hit_keys = {(block.relation, block.group) for block in hit_conflicting}
    rest_sizes = [
        len(block)
        for block in decomposition.conflicting_blocks()
        if (block.relation, block.group) not in hit_keys
    ]
    numerator_distribution: dict[int, int] = {0: 1}
    for block in hit_conflicting:
        numerator_distribution = _shuffle(
            numerator_distribution, _nonempty_length_distribution(len(block))
        )
    for size in rest_sizes:
        numerator_distribution = _shuffle(
            numerator_distribution, block_length_distribution(size)
        )
    total_distribution: dict[int, int] = {0: 1}
    for block in hit_conflicting:
        total_distribution = _shuffle(
            total_distribution, block_length_distribution(len(block))
        )
    for size in rest_sizes:
        total_distribution = _shuffle(total_distribution, block_length_distribution(size))
    numerator = sum(numerator_distribution.values())
    total = sum(total_distribution.values())
    symmetry = 1
    for block in hit_conflicting:
        symmetry *= len(block)
    return Fraction(numerator, total * symmetry)


def ground_survival_mus1(
    database: Database,
    constraints: FDSet,
    facts: frozenset[Fact] | set[Fact],
) -> Fraction:
    """``P_{M_us,1}(all of ``facts`` survive)``: ``Π 1/|B_i|`` by symmetry."""
    fact_set = frozenset(facts)
    try:
        _, hit = _hit_blocks(database, constraints, fact_set)
    except BlockError as error:
        if "share a block" in str(error):
            return Fraction(0)
        raise
    probability = Fraction(1)
    for block in hit:
        if block.has_conflicts:
            probability *= Fraction(1, len(block))
    return probability


def fact_survival_probability(
    database: Database,
    constraints: FDSet,
    fact: Fact,
    generator_name: str = "M_ur",
) -> Fraction:
    """Survival probability of a single fact under a named uniform semantics.

    Supports ``M_ur``, ``M_ur,1``, ``M_us``, ``M_us,1`` (all polynomial).
    ``M_uo`` has no product/shuffle structure; use the exact DP or sampler.
    """
    single = frozenset((fact,))
    if generator_name == "M_ur":
        return ground_survival_mur(database, constraints, single)
    if generator_name == "M_ur,1":
        return ground_survival_mur(database, constraints, single, singleton_only=True)
    if generator_name == "M_us":
        return ground_survival_mus(database, constraints, single)
    if generator_name == "M_us,1":
        return ground_survival_mus1(database, constraints, single)
    raise KeyError(f"no polynomial survival formula for {generator_name!r}")


def _nonempty_length_distribution(m: int) -> dict[int, int]:
    """Length distribution of the block sequences with a non-empty result."""
    distribution: dict[int, int] = {}
    for i in range(max_pair_removals(m) + 1):
        count = nonempty_block_sequences(m, i)
        if count:
            length = m - i - 1
            distribution[length] = distribution.get(length, 0) + count
    return distribution
