"""Polynomial-time repair counting for primary keys and conflict graphs.

Lemma 5.2's proof gives ``|CORep(D, Σ)| = Π (|B_i| + 1)`` over conflicting
blocks for primary keys; Lemma E.2 gives ``|CORep¹(D, Σ)| = Π |B_i|``.  For
general FDs the counts follow the conflict graph (Lemma 5.4 / E.4), which is
how the inapproximability results connect repairs to independent sets — those
counts are exponential-time in general and live in :mod:`repro.exact`.
"""

from __future__ import annotations

from math import prod

from ..core.blocks import block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet


def count_candidate_repairs_primary_keys(database: Database, constraints: FDSet) -> int:
    """``|CORep(D, Σ)| = Π (|B_i| + 1)`` over blocks with conflicts."""
    decomposition = block_decomposition(database, constraints)
    return decomposition.count_candidate_repairs()


def count_singleton_repairs_primary_keys(database: Database, constraints: FDSet) -> int:
    """``|CORep¹(D, Σ)| = Π |B_i|`` over blocks with conflicts."""
    decomposition = block_decomposition(database, constraints)
    return decomposition.count_singleton_repairs()


def count_repairs_for_block_sizes(sizes: list[int] | tuple[int, ...]) -> int:
    """Product formula on raw block sizes (sizes < 2 contribute factor 1)."""
    return prod(size + 1 for size in sizes if size >= 2)


def count_singleton_repairs_for_block_sizes(sizes: list[int] | tuple[int, ...]) -> int:
    """Singleton-operation product formula on raw block sizes."""
    return prod(size for size in sizes if size >= 2)
