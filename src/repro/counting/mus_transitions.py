"""Polynomial ``M_us`` transition and path probabilities for primary keys.

Definition A.3 sets ``P(s, s') = |CRS_{s'}| / |CRS_s|``, where the counts
are complete-sequence counts of the states' *databases* — so for primary
keys they reduce to the Lemma C.1 block DP and every edge label is
polynomial-time computable without materializing the chain.  The
telescoping product then gives ``π(s) = 1 / |CRS(D, Σ)|`` for every
complete ``s``, which :func:`mus_sequence_probability` verifies computably:
it multiplies the edge labels along an arbitrary repairing sequence.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.blocks import block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.operations import Operation, is_justified
from ..core.sequences import RepairingSequence
from .crs_count import count_crs1_for_block_sizes, count_crs_for_block_sizes


def _crs_count_of_state(
    state: Database, constraints: FDSet, singleton_only: bool
) -> int:
    sizes = tuple(block_decomposition(state, constraints).sizes())
    if singleton_only:
        return count_crs1_for_block_sizes(sizes)
    return count_crs_for_block_sizes(sizes)


def mus_edge_probability(
    state: Database,
    operation: Operation,
    constraints: FDSet,
    singleton_only: bool = False,
) -> Fraction:
    """``P(s, s·op) = |CRS(op(s(D)))| / |CRS(s(D))|`` in polynomial time.

    Raises if ``operation`` is not justified at ``state`` (the edge does not
    exist in the chain).
    """
    if not is_justified(operation, state, constraints):
        raise ValueError(f"{operation} is not justified at this state")
    if singleton_only and not operation.is_singleton:
        return Fraction(0)
    parent = _crs_count_of_state(state, constraints, singleton_only)
    child = _crs_count_of_state(operation.apply(state), constraints, singleton_only)
    return Fraction(child, parent)


def mus_sequence_probability(
    sequence: RepairingSequence,
    database: Database,
    constraints: FDSet,
    singleton_only: bool = False,
) -> Fraction:
    """``π``-mass of the path taken by ``sequence`` from the root.

    For a complete sequence the telescoping product collapses to
    ``1 / |CRS(D, Σ)|`` — the uniform leaf distribution of Proposition A.4 —
    which the tests assert for arbitrary sampled sequences.
    """
    probability = Fraction(1)
    state = database
    for operation in sequence:
        probability *= mus_edge_probability(
            state, operation, constraints, singleton_only
        )
        if probability == 0:
            return probability
        state = operation.apply(state)
    return probability


def mus_outgoing_distribution(
    state: Database,
    constraints: FDSet,
    singleton_only: bool = False,
) -> dict[Operation, Fraction]:
    """All edge labels out of a state (a polynomial slice of ``M_us(D)``)."""
    from ..core.operations import justified_operations

    distribution = {}
    for operation in sorted(justified_operations(state, constraints)):
        if singleton_only and not operation.is_singleton:
            distribution[operation] = Fraction(0)
        else:
            distribution[operation] = mus_edge_probability(
                state, operation, constraints, singleton_only
            )
    return distribution
