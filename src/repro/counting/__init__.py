"""Polynomial-time counters for the primary-key case (Lemmas 5.2, C.1, E.2)."""

from .block_counts import (
    block_length_distribution,
    block_sequence_count,
    empty_block_sequences,
    interleavings,
    max_pair_removals,
    nonempty_block_sequences,
    singleton_block_length_distribution,
    singleton_block_sequence_count,
)
from .crs_count import (
    count_crs,
    count_crs1,
    count_crs1_for_block_sizes,
    count_crs_for_block_sizes,
    count_crs_paper_dp,
    crs_length_distribution,
    expected_sequence_length,
)
from .mus_transitions import (
    mus_edge_probability,
    mus_outgoing_distribution,
    mus_sequence_probability,
)
from .survival import (
    fact_survival_probability,
    ground_survival_mur,
    ground_survival_mus,
    ground_survival_mus1,
)
from .repair_count import (
    count_candidate_repairs_primary_keys,
    count_repairs_for_block_sizes,
    count_singleton_repairs_for_block_sizes,
    count_singleton_repairs_primary_keys,
)

__all__ = [
    "block_length_distribution",
    "fact_survival_probability",
    "ground_survival_mur",
    "ground_survival_mus",
    "ground_survival_mus1",
    "mus_edge_probability",
    "mus_outgoing_distribution",
    "mus_sequence_probability",
    "block_sequence_count",
    "count_candidate_repairs_primary_keys",
    "count_crs",
    "count_crs1",
    "count_crs1_for_block_sizes",
    "count_crs_for_block_sizes",
    "count_crs_paper_dp",
    "count_repairs_for_block_sizes",
    "count_singleton_repairs_for_block_sizes",
    "count_singleton_repairs_primary_keys",
    "crs_length_distribution",
    "expected_sequence_length",
    "empty_block_sequences",
    "interleavings",
    "max_pair_removals",
    "nonempty_block_sequences",
    "singleton_block_length_distribution",
    "singleton_block_sequence_count",
]
