"""Polynomial-time counting of complete repairing sequences (Lemma C.1).

For a set of *primary keys*, conflicts live inside blocks and sequences over
different blocks interleave freely, so ``|CRS(D, Σ)|`` is computable in
polynomial time.  Two equivalent implementations are provided:

* :func:`count_crs_paper_dp` — the paper's ``P^{k,i}_j`` dynamic program,
  transcribed verbatim from the proof of Lemma C.1 (tracked by the number
  ``k`` of blocks with non-empty result and the number ``i`` of pair
  removals);
* :func:`count_crs_for_block_sizes` — a shuffle-product DP over per-block
  *length distributions*, used by the samplers for speed.

Tests assert the two agree and match brute-force enumeration; Example C.2's
``|CRS| = 99`` for block sizes ``(3, 2)`` is a fixture.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import comb, factorial

from ..core.blocks import block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from .block_counts import (
    block_length_distribution,
    empty_block_sequences,
    max_pair_removals,
    nonempty_block_sequences,
    singleton_block_length_distribution,
)


def _shuffle(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    """Shuffle product of two length distributions.

    ``(a ⧢ b)(ℓ) = Σ_{x+y=ℓ} a(x)·b(y)·C(ℓ, x)``: pairs of sequences are
    combined by choosing which positions of the merged sequence come from
    the first one.
    """
    merged: dict[int, int] = {}
    for length_a, count_a in a.items():
        for length_b, count_b in b.items():
            length = length_a + length_b
            merged[length] = merged.get(length, 0) + count_a * count_b * comb(
                length, length_a
            )
    return merged


@lru_cache(maxsize=None)
def _crs_distribution(sizes: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
    """Length distribution of ``CRS`` over blocks of the given sizes (cached)."""
    distribution: dict[int, int] = {0: 1}
    for size in sizes:
        distribution = _shuffle(distribution, block_length_distribution(size))
    return tuple(sorted(distribution.items()))


def count_crs_for_block_sizes(sizes: tuple[int, ...] | list[int]) -> int:
    """``|CRS|`` for conflicting blocks of the given sizes (sizes < 2 ignored)."""
    relevant = tuple(sorted(s for s in sizes if s >= 2))
    return sum(count for _, count in _crs_distribution(relevant))


@lru_cache(maxsize=None)
def _crs1_distribution(sizes: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
    distribution: dict[int, int] = {0: 1}
    for size in sizes:
        distribution = _shuffle(distribution, singleton_block_length_distribution(size))
    return tuple(sorted(distribution.items()))


def count_crs1_for_block_sizes(sizes: tuple[int, ...] | list[int]) -> int:
    """``|CRS¹|`` for the given block sizes (singleton-operation sequences)."""
    relevant = tuple(sorted(s for s in sizes if s >= 2))
    return sum(count for _, count in _crs1_distribution(relevant))


@lru_cache(maxsize=None)
def sequence_step_weights(
    sizes: tuple[int, ...], singleton_only: bool = False
) -> tuple[tuple[tuple[int, str], ...], tuple[int, ...], int]:
    """SampleSeq's per-step category weights for the live block-size state.

    ``sizes`` are the sizes of the *active* (≥ 2) blocks in iteration order.
    Returns ``(categories, weights, total)`` where each category is
    ``(position, kind)`` — ``position`` indexing into ``sizes``, ``kind``
    one of ``"single"`` / ``"pair"`` — and ``weights[i]`` is the aggregated
    Lemma 6.2 transition weight of that category (``m · |CRS(after)|`` for
    a single removal, ``C(m, 2) · |CRS(after)|`` for a pair).

    The table is memoized on the *ordered* tuple of live id-block sizes
    (process-wide, like the CRS distribution caches it sits on): every
    draw whose remaining blocks have the same ordered sizes reuses it, so
    the sampler recomputes counts once per size state instead of once per
    step of every draw.  Both the object path and the interned fast path of
    :class:`~repro.sampling.sequence_sampler.SequenceSampler` read this one
    table, which is what keeps their RNG consumption bit-for-bit aligned.
    """
    count = count_crs1_for_block_sizes if singleton_only else count_crs_for_block_sizes
    categories: list[tuple[int, str]] = []
    weights: list[int] = []
    for position, m in enumerate(sizes):
        rest = sizes[:position] + sizes[position + 1 :]
        categories.append((position, "single"))
        weights.append(m * count(tuple(sorted(rest + (m - 1,)))))
        if not singleton_only:
            categories.append((position, "pair"))
            weights.append((m * (m - 1) // 2) * count(tuple(sorted(rest + (m - 2,)))))
    return tuple(categories), tuple(weights), sum(weights)


@lru_cache(maxsize=None)
def sequence_step_cumulative(sizes: tuple[int, ...], singleton_only: bool = False):
    """:func:`sequence_step_weights` with the weights pre-accumulated.

    Returns ``(categories, cumulative)`` where ``cumulative`` is a
    :class:`~repro.sampling.rng.CumulativeWeights` over the same category
    order — the build-once table both scalar draw paths of
    :class:`~repro.sampling.sequence_sampler.SequenceSampler` pick from
    (one ``randrange`` + one ``bisect`` per step instead of an ``O(k)``
    cumulative scan).  Memoized per live block-size state, like the weight
    table itself.
    """
    # Deferred import: ``repro.sampling`` imports this module at package
    # init, so a module-level back-import would be circular.
    from ..sampling.rng import CumulativeWeights

    categories, weights, _ = sequence_step_weights(sizes, singleton_only)
    return categories, CumulativeWeights(weights)


@lru_cache(maxsize=None)
def aggregated_step_weights(
    size_counts: tuple[tuple[int, int], ...], singleton_only: bool = False
) -> tuple[tuple[tuple[int, int, int], ...], tuple[int, ...], int]:
    """SampleSeq step weights aggregated over equal-size blocks (Lemma 6.2).

    The per-position weights of :func:`sequence_step_weights` depend only
    on a block's *size* and the multiset of the other live sizes, so
    positions of equal size carry equal weight and can be drawn as one
    aggregated category — first the ``(size, kind)`` class, then the
    concrete block uniformly among the live blocks of that size.  This is
    the form the vectorized sequence plane consumes: its per-sample state
    is the multiset of live sizes, not an ordered tuple.

    ``size_counts`` is the live state as sorted ``(size, count)`` pairs
    (every ``size >= 2``, every ``count >= 1``).  Returns
    ``(categories, weights, total)`` where each category is
    ``(size, removed, count)`` — ``removed`` is 1 for a single-fact
    removal, 2 for a pair — and ``weights[i]`` is the exact aggregated
    transition weight (``count * size * |CRS(after)|`` resp.
    ``count * C(size, 2) * |CRS(after)|``).  Aggregation consistency with
    the per-position table is asserted by ``tests/test_vectorized.py``.
    """
    count = count_crs1_for_block_sizes if singleton_only else count_crs_for_block_sizes
    sizes: list[int] = [s for s, c in size_counts for _ in range(c)]
    categories: list[tuple[int, int, int]] = []
    weights: list[int] = []
    for size, occurrences in size_counts:
        rest = list(sizes)
        rest.remove(size)
        categories.append((size, 1, occurrences))
        weights.append(
            occurrences * size * count(tuple(sorted(rest + [size - 1])))
        )
        if not singleton_only:
            categories.append((size, 2, occurrences))
            weights.append(
                occurrences
                * (size * (size - 1) // 2)
                * count(tuple(sorted(rest + [size - 2])))
            )
    return tuple(categories), tuple(weights), sum(weights)


def count_crs(database: Database, constraints: FDSet) -> int:
    """``|CRS(D, Σ)|`` for a set of primary keys, in polynomial time."""
    decomposition = block_decomposition(database, constraints)
    return count_crs_for_block_sizes(tuple(decomposition.sizes()))


def count_crs1(database: Database, constraints: FDSet) -> int:
    """``|CRS¹(D, Σ)|`` for a set of primary keys, in polynomial time."""
    decomposition = block_decomposition(database, constraints)
    return count_crs1_for_block_sizes(tuple(decomposition.sizes()))


def count_crs_paper_dp(sizes: tuple[int, ...] | list[int]) -> int:
    """Lemma C.1's ``P^{k,i}_j`` dynamic program, transcribed verbatim.

    ``P^{k,i}_j`` counts the sequences over the first ``j`` blocks with ``i``
    pair removals that leave ``k`` of those blocks non-empty.  Blocks are
    combined by multiplying interleaving factors
    ``(total length)! / (prefix length)! (block length)!``.
    """
    block_sizes = [s for s in sizes if s >= 2]
    if not block_sizes:
        return 1
    first = block_sizes[0]
    # table[(k, i)] = P^{k,i}_j for the current prefix of blocks.
    table: dict[tuple[int, int], int] = {}
    for i in range(max_pair_removals(first) + 1):
        empty = empty_block_sequences(first, i)
        if empty:
            table[(0, i)] = table.get((0, i), 0) + empty
        nonempty = nonempty_block_sequences(first, i)
        if nonempty:
            table[(1, i)] = table.get((1, i), 0) + nonempty
    prefix_total = first
    for block_size in block_sizes[1:]:
        updated: dict[tuple[int, int], int] = {}
        total = prefix_total + block_size
        for (k_prev, i1), previous in table.items():
            prefix_length = prefix_total - i1 - k_prev
            for i2 in range(max_pair_removals(block_size) + 1):
                i = i1 + i2
                # Case 1: the new block ends empty; k is unchanged.
                empty = empty_block_sequences(block_size, i2)
                if empty:
                    block_length = block_size - i2
                    ways = (
                        previous
                        * empty
                        * factorial(total - i - k_prev)
                        // (factorial(prefix_length) * factorial(block_length))
                    )
                    key = (k_prev, i)
                    updated[key] = updated.get(key, 0) + ways
                # Case 2: the new block keeps a fact; k increases by one.
                nonempty = nonempty_block_sequences(block_size, i2)
                if nonempty:
                    block_length = block_size - i2 - 1
                    ways = (
                        previous
                        * nonempty
                        * factorial(total - i - (k_prev + 1))
                        // (factorial(prefix_length) * factorial(block_length))
                    )
                    key = (k_prev + 1, i)
                    updated[key] = updated.get(key, 0) + ways
        table = updated
        prefix_total = total
    return sum(table.values())


def crs_length_distribution(sizes: tuple[int, ...] | list[int]) -> dict[int, int]:
    """Distribution of sequence lengths over ``CRS`` (diagnostics, tests)."""
    relevant = tuple(sorted(s for s in sizes if s >= 2))
    return dict(_crs_distribution(relevant))


def expected_sequence_length(database: Database, constraints: FDSet) -> Fraction:
    """``E[len(s)]`` for ``s`` uniform over ``CRS(D, Σ)``, in polynomial time.

    Averaging the Lemma C.1 length distribution: the expected number of
    operations the uniform-sequences repairing process performs.  A
    polynomial diagnostic the paper's machinery yields for free — validated
    against explicit-chain enumeration in the tests.
    """
    decomposition = block_decomposition(database, constraints)
    distribution = crs_length_distribution(tuple(decomposition.sizes()))
    total = sum(distribution.values())
    weighted = sum(length * count for length, count in distribution.items())
    return Fraction(weighted, total)
