"""Closed-loop, fault-injecting load-test harness for the service plane.

The service plane makes operational claims — bounded queues reject with
``429`` + ``Retry-After`` instead of collapsing, deadline budgets cancel
partial work, the answer cache can be poisoned but never lies, and every
admitted response stays bit-identical to an offline
``batch_estimate(seed=...)`` run.  This module *verifies those claims
under load*, the way the calibration audit (PR 6) verifies the
statistical ones: empirically, against a real server, with the faults
actually injected.

The harness (:func:`run_loadtest`) drives a server through phases:

1. **warm** — one sequential pass over the request mix populates the
   answer cache and checks bit-identity cold.
2. **baseline** — a single closed-loop client measures the unloaded
   latency distribution (always cache-missing, so it measures compute).
3. **saturation** — a modest swarm measures the admitted-throughput
   ceiling (the "saturation rps" the E29 bench scales from).
4. **overload** — a swarm sized past the admission bounds; asserts
   backpressure engages (429s with ``Retry-After``), admitted p99 stays
   within ``p99_degradation_limit`` × the unloaded p99, and no request
   is dropped with a connection reset.
5. **cache** — the swarm replays *fixed* labels, so traffic collapses
   onto the answer cache; asserts hits accrue.
6. **faults** — the storm continues while faults are injected through
   ``POST /_fault`` and raw sockets: slow handlers (plus client budgets
   → ``408``), poisoned cache entries (must be detected and recomputed,
   never served), malformed/truncated bodies mid-burst, and optionally
   a ``SIGKILL``-ed server process that is restarted mid-storm.
7. **verify** — a final sequential pass re-checks bit-identity against
   the offline rows (after the poisoning!) and that ``/metrics``
   counters were monotone across every scrape taken during the run.

Requests are made cache-hitting or cache-missing *by label*: the row
label participates in the answer-cache key (it is embedded in the served
row), so a unique label per call forces the full batcher path while a
fixed label replays the cache.  Bit-identity holds either way because
group seeds derive from instance content, never from labels.

Everything here is stdlib-only and runs against either a subprocess
server (:class:`ServerProcess`, the realistic configuration) or any
``base_url`` the caller supplies (e.g. an in-process
:class:`~repro.service.server.BackgroundServer` for fast tier-1 tests).
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..chains.generators import M_UR, M_US
from ..core.queries import atom, cq, var
from ..engine.batch import BatchRequest, batch_estimate
from ..io import batch_result_to_row, format_query
from ..workloads import figure2_database
from .client import ServiceClient, ServiceClientError

__all__ = [
    "LoadTestConfig",
    "LoadTestReport",
    "ServerProcess",
    "run_loadtest",
    "format_report",
]


@dataclass
class LoadTestConfig:
    """Knobs for one :func:`run_loadtest` run.

    The defaults are sized for the CI smoke job (~20 s end to end);
    the tier-2 saturation leg and the E29 bench scale the phase
    durations and swarm sizes up and enable every fault.
    """

    seed: int = 7
    epsilon: float = 0.5
    delta: float = 0.2
    baseline_seconds: float = 2.0
    saturation_seconds: float = 2.0
    overload_seconds: float = 3.0
    cache_seconds: float = 1.0
    fault_seconds: float = 3.0
    saturation_clients: int = 4
    overload_clients: int = 24
    # Server admission bounds: deliberately far below overload_clients
    # so the overload phase *must* trigger backpressure — and, by
    # Little's law, so admitted requests keep bounded queueing delay
    # (closed-loop in-system admitted work == max_inflight, so admitted
    # latency ≈ max_inflight × per-request service time; one slot keeps
    # admitted latency at the unloaded service time, which is also all
    # the parallelism a small CI box has to offer).
    max_queue: int | None = None
    max_pending: int | None = 8
    max_inflight: int | None = 1
    default_budget: float = 30.0
    answer_cache_size: int = 1024
    # Faults.
    inject_slow: bool = True
    slow_seconds: float = 0.2
    budget_seconds: float = 0.05
    inject_poison: bool = True
    inject_malformed: bool = True
    inject_kill: bool = False
    #: SIGKILL one shard worker mid-storm via ``POST /_fault`` (sharded
    #: servers only — requires ``workers >= 1``).  Unlike
    #: :attr:`inject_kill` the router stays up, so the respawn must be
    #: *transparent*: no transport errors, no 5xx, bit-identical rows.
    inject_worker_kill: bool = False
    #: Break the disk mid-storm via ``POST /_fault``: every store write
    #: fails with ENOSPC and store reads come back with one flipped bit,
    #: exercised immediately through spill/drop/re-admission.  The server
    #: must degrade (``repro_degraded_mode`` high, store errors
    #: accounted), keep answering with zero 5xx and zero bit-identity
    #: drift, and recover once the fault clears.  Requires an in-process
    #: store (``workers == 0``); the owned server gets a scratch
    #: ``cache_dir`` automatically.
    inject_disk_fault: bool = False
    #: Cache directory for the owned server (``None`` = no store, or a
    #: private temporary directory when ``inject_disk_fault`` needs one).
    cache_dir: str | None = None
    #: Shard worker processes for the owned server (``0`` = in-process
    #: single registry, exactly the pre-sharding plane).
    workers: int = 0
    # Degradation bound asserted on the (fault-free) overload phase.
    check_p99: bool = True
    p99_degradation_limit: float = 5.0
    #: How long a swarm client parks after a 429 before retrying.  The
    #: protocol answer is "the Retry-After hint", but that is whole
    #: seconds — honoring it literally would idle the swarm; a short
    #: bounded backoff keeps the offered load far above saturation
    #: while still behaving like a well-mannered client.
    reject_backoff_seconds: float = 0.05
    metrics_scrape_interval: float = 0.25
    request_timeout: float = 15.0


@dataclass
class LoadTestReport:
    """What one run measured, and every invariant it violated."""

    config: dict
    #: p99 latency of admitted ``/estimate`` requests, interpolated from
    #: the server's own ``repro_request_seconds`` histogram (the
    #: ``status="200"`` series) diffed across the phase.  Server-side
    #: numbers are the scored ones: the closed-loop swarm runs dozens of
    #: threads in one Python process, so client-observed latency
    #: conflates harness GIL contention with server behavior.  The
    #: client-observed percentiles ride along as ``*_client`` fields.
    unloaded_p99: float = 0.0
    unloaded_p99_client: float = 0.0
    saturation_rps: float = 0.0
    overload_admitted_p99: float = 0.0
    overload_admitted_p99_client: float = 0.0
    overload_admitted: int = 0
    overload_rejected: int = 0
    overload_offered_rps: float = 0.0
    cache_hits: int = 0
    deadline_hits: int = 0
    poisoned_detected: int = 0
    malformed_probes: int = 0
    transport_errors: int = 0
    bit_identity_checked: int = 0
    bit_identity_failures: int = 0
    rejected_missing_retry_after: int = 0
    worker_kills: int = 0
    worker_restarts: int = 0
    #: ``repro_degraded_mode`` sampled right after the disk fault went in
    #: (must be 1) and after it cleared (must be back to 0).
    degraded_peak: int = 0
    degraded_final: int = 0
    store_errors: int = 0
    metrics_scrapes: int = 0
    metrics_violations: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    final_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every asserted degradation invariant held."""
        return not self.failures

    def to_dict(self) -> dict:
        """The report as one JSON-native document."""
        return {
            "ok": self.ok,
            "config": self.config,
            "unloaded_p99": self.unloaded_p99,
            "unloaded_p99_client": self.unloaded_p99_client,
            "saturation_rps": self.saturation_rps,
            "overload_admitted_p99": self.overload_admitted_p99,
            "overload_admitted_p99_client": self.overload_admitted_p99_client,
            "overload_admitted": self.overload_admitted,
            "overload_rejected": self.overload_rejected,
            "overload_offered_rps": self.overload_offered_rps,
            "cache_hits": self.cache_hits,
            "deadline_hits": self.deadline_hits,
            "poisoned_detected": self.poisoned_detected,
            "malformed_probes": self.malformed_probes,
            "transport_errors": self.transport_errors,
            "bit_identity_checked": self.bit_identity_checked,
            "bit_identity_failures": self.bit_identity_failures,
            "rejected_missing_retry_after": self.rejected_missing_retry_after,
            "worker_kills": self.worker_kills,
            "worker_restarts": self.worker_restarts,
            "degraded_peak": self.degraded_peak,
            "degraded_final": self.degraded_final,
            "store_errors": self.store_errors,
            "metrics_scrapes": self.metrics_scrapes,
            "metrics_violations": self.metrics_violations,
            "failures": self.failures,
        }


def format_report(report: LoadTestReport) -> str:
    """A human-readable summary for the ``loadtest`` CLI and the bench."""
    lines = [
        "loadtest " + ("PASS" if report.ok else "FAIL"),
        (
            f"  unloaded p99        {report.unloaded_p99 * 1000:.1f} ms server-side "
            f"({report.unloaded_p99_client * 1000:.1f} ms client-observed)"
        ),
        f"  saturation          {report.saturation_rps:.1f} admitted rps",
        (
            f"  overload            {report.overload_admitted} admitted "
            f"(p99 {report.overload_admitted_p99 * 1000:.1f} ms server-side, "
            f"{report.overload_admitted_p99_client * 1000:.1f} ms client-observed), "
            f"{report.overload_rejected} rejected 429, "
            f"{report.overload_offered_rps:.1f} offered rps"
        ),
        f"  cache               {report.cache_hits} hits",
        f"  deadlines           {report.deadline_hits} (408/504)",
        f"  poisoned detected   {report.poisoned_detected}",
        f"  malformed probes    {report.malformed_probes}",
        f"  transport errors    {report.transport_errors}",
        (
            f"  bit identity        {report.bit_identity_checked} checked, "
            f"{report.bit_identity_failures} drifted"
        ),
        f"  metrics             {report.metrics_scrapes} scrapes, "
        f"{len(report.metrics_violations)} monotonicity violations",
    ]
    if report.worker_kills:
        lines.insert(
            -1,
            f"  worker kills        {report.worker_kills} injected, "
            f"{report.worker_restarts} respawns observed",
        )
    if report.config.get("inject_disk_fault"):
        lines.insert(
            -1,
            f"  disk faults         degraded {report.degraded_peak} -> "
            f"{report.degraded_final}, {report.store_errors} store errors accounted",
        )
    for failure in report.failures:
        lines.append(f"  FAIL: {failure}")
    return "\n".join(lines)


# -- the server subprocess -----------------------------------------------------------------


_URL_PATTERN = re.compile(r"on (http://[0-9.]+:[0-9]+)")


def _prioritize() -> None:  # pragma: no cover - runs in the child pre-exec
    """Raise the server subprocess's scheduling priority when permitted.

    The harness co-locates the load generator and the system under test
    on one machine; on small (often single-core) CI boxes the swarm's
    spinning client threads would otherwise starve the server process,
    and the measured "server" latency would mostly be kernel scheduling
    quanta.  Prioritizing the system under test is the standard fix;
    silently skipped without the privilege.
    """
    try:
        os.nice(-10)
    except (OSError, PermissionError):
        pass


class ServerProcess:
    """A real ``python -m repro serve`` subprocess, killable mid-burst.

    Starts the service on an ephemeral port with fault injection
    enabled, parses the served URL off stderr, and supports the
    harness's killed-worker fault: :meth:`kill` SIGKILLs the process
    (clients see hard connection errors, exactly like a crashed
    production worker) and :meth:`restart` brings a fresh process back
    *on the same port* — served answers must come back bit-identical,
    because determinism is content-derived, not process state.
    """

    def __init__(
        self,
        *,
        seed: int = 7,
        max_queue: int | None = None,
        max_pending: int | None = None,
        max_inflight: int | None = None,
        default_budget: float | None = None,
        answer_cache_size: int | None = None,
        fault_injection: bool = True,
        workers: int = 0,
        cache_dir: str | None = None,
        startup_timeout: float = 60.0,
    ):
        self.seed = seed
        self.max_queue = max_queue
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.default_budget = default_budget
        self.answer_cache_size = answer_cache_size
        self.fault_injection = fault_injection
        self.workers = workers
        self.cache_dir = cache_dir
        self.startup_timeout = startup_timeout
        self.port = 0
        self.url: str | None = None
        self._process: subprocess.Popen | None = None
        self._drain: threading.Thread | None = None

    def _command(self, port: int) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--seed",
            str(self.seed),
        ]
        if self.max_queue is not None:
            command += ["--max-queue", str(self.max_queue)]
        if self.max_pending is not None:
            command += ["--max-pending", str(self.max_pending)]
        if self.max_inflight is not None:
            command += ["--max-inflight", str(self.max_inflight)]
        if self.default_budget is not None:
            command += ["--default-budget", str(self.default_budget)]
        if self.answer_cache_size is not None:
            command += ["--answer-cache-size", str(self.answer_cache_size)]
        if self.fault_injection:
            command += ["--enable-fault-injection"]
        if self.workers:
            command += ["--workers", str(self.workers)]
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
        return command

    def start(self, port: int = 0) -> str:
        """Spawn the subprocess and block until it reports its URL."""
        if self._process is not None and self._process.poll() is None:
            raise RuntimeError("server already running")
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self._process = subprocess.Popen(
            self._command(port),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
            preexec_fn=_prioritize,
        )
        url: list[str] = []
        ready = threading.Event()

        def drain(stream):
            for raw in stream:
                if not ready.is_set():
                    match = _URL_PATTERN.search(raw.decode("utf-8", "replace"))
                    if match:
                        url.append(match.group(1))
                        ready.set()
            ready.set()  # EOF: startup failed; unblock the waiter

        self._drain = threading.Thread(
            target=drain, args=(self._process.stderr,), daemon=True
        )
        self._drain.start()
        if not ready.wait(self.startup_timeout) or not url:
            self.stop()
            raise RuntimeError("service subprocess did not report a URL")
        self.url = url[0]
        self.port = int(self.url.rsplit(":", 1)[1])
        return self.url

    def kill(self) -> None:
        """SIGKILL the server — the harness's killed-worker fault."""
        if self._process is not None:
            self._process.kill()
            self._process.wait(timeout=30)

    def restart(self) -> str:
        """Bring a fresh process back on the same port."""
        self.kill()
        deadline = time.monotonic() + self.startup_timeout
        # The old socket may linger briefly; retry the bind via respawn.
        while True:
            try:
                return self.start(self.port)
            except RuntimeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    def stop(self) -> None:
        if self._process is not None:
            self._process.terminate()
            try:
                self._process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck process
                self._process.kill()
                self._process.wait(timeout=30)

    def __enter__(self) -> "ServerProcess":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- the request mix -----------------------------------------------------------------------


@dataclass
class _MixItem:
    request: BatchRequest
    expected: dict


def _build_mix(config: LoadTestConfig) -> list[_MixItem]:
    """The Figure 2 request mix plus its offline ground-truth rows."""
    database, constraints = figure2_database()
    x, y = var("x"), var("y")
    query = cq((x,), (atom("R", x, y),))
    requests = [
        BatchRequest(
            database,
            constraints,
            generator,
            query,
            answer=candidate,
            epsilon=config.epsilon,
            delta=config.delta,
            label=f"load-{generator.name}-{position}",
        )
        for generator in (M_UR, M_US)
        for position, candidate in enumerate(sorted(query.answers(database), key=repr))
    ]
    offline = batch_estimate(requests, seed=config.seed)
    return [
        _MixItem(request=request, expected=batch_result_to_row(outcome))
        for request, outcome in zip(requests, offline)
    ]


def _expected_row(item: _MixItem, label: str) -> dict:
    """The offline row under a swarm label (labels never affect math)."""
    if label == item.request.label:
        return item.expected
    return {**item.expected, "instance": label}


# -- sampling ------------------------------------------------------------------------------


@dataclass
class _Sample:
    phase: str
    kind: str  # admitted | rejected | deadline | transport | http_error
    seconds: float
    status: int
    retry_after: float | None = None


class _Recorder:
    """Thread-safe accumulation of samples and bit-identity mismatches."""

    def __init__(self):
        self._lock = threading.Lock()
        self.samples: list[_Sample] = []
        self.mismatches: list[str] = []
        self.checked = 0

    def add(self, sample: _Sample) -> None:
        with self._lock:
            self.samples.append(sample)

    def check(self, phase: str, label: str, served: dict, expected: dict) -> None:
        with self._lock:
            self.checked += 1
            if served != expected:
                self.mismatches.append(
                    f"{phase}/{label}: served {json.dumps(served, sort_keys=True)} "
                    f"!= offline {json.dumps(expected, sort_keys=True)}"
                )

    def phase_samples(self, phase: str) -> list[_Sample]:
        with self._lock:
            return [s for s in self.samples if s.phase == phase]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    position = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.999999) - 1))
    return ordered[position]


def _admitted_latency_buckets(snapshot: Mapping[str, float]) -> dict[float, float]:
    """Cumulative bucket counts of the admitted (status 200) ``/estimate``
    latency series from one parsed ``/metrics`` snapshot."""
    buckets: dict[float, float] = {}
    prefix = "repro_request_seconds_bucket{"
    for key, value in snapshot.items():
        if not key.startswith(prefix):
            continue
        labels = dict(
            piece.split("=", 1) for piece in key[len(prefix):-1].split(",")
        )
        if labels.get("endpoint") != '"/estimate"' or labels.get("status") != '"200"':
            continue
        bound = labels.get("le", "").strip('"')
        buckets[float("inf") if bound == "+Inf" else float(bound)] = value
    return buckets


def _histogram_p99(
    before: Mapping[str, float], after: Mapping[str, float], q: float = 0.99
) -> float:
    """The interpolated ``q``-quantile of admitted ``/estimate`` latency
    *between two scrapes*, from the server's cumulative histogram.

    This is the latency the server actually delivered during the phase,
    uncontaminated by the harness's own thread-scheduling noise (the
    scored p99s come from here; client-observed values are reported
    alongside for comparison).
    """
    counts_before = _admitted_latency_buckets(before)
    counts_after = _admitted_latency_buckets(after)
    bounds = sorted(counts_after)
    if not bounds:
        return 0.0
    deltas = [counts_after[b] - counts_before.get(b, 0.0) for b in bounds]
    total = deltas[-1]
    if total <= 0:
        return 0.0
    target = q * total
    previous_bound, previous_delta = 0.0, 0.0
    for bound, delta in zip(bounds, deltas):
        if delta >= target:
            if bound == float("inf"):
                return previous_bound  # mass beyond the largest finite bound
            fraction = (target - previous_delta) / max(delta - previous_delta, 1e-9)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_delta = bound, delta
    return previous_bound


def _call_item(
    client: ServiceClient,
    item: _MixItem,
    label: str,
    *,
    phase: str,
    recorder: _Recorder,
    budget_seconds: float | None = None,
) -> str:
    """One closed-loop request: call, classify, verify bit-identity.

    Returns the sample kind so callers can back off after rejections.
    """
    request = item.request
    started = time.perf_counter()
    try:
        row = client.estimate(
            request.database,
            request.constraints,
            format_query(request.query),
            request.answer,
            generator=request.generator.name,
            epsilon=request.epsilon,
            delta=request.delta,
            label=label,
            budget_seconds=budget_seconds,
        )
    except ServiceClientError as error:
        elapsed = time.perf_counter() - started
        if error.status == 429:
            recorder.add(
                _Sample(phase, "rejected", elapsed, 429, error.retry_after)
            )
            return "rejected"
        if error.status in (408, 504):
            recorder.add(_Sample(phase, "deadline", elapsed, error.status))
            return "deadline"
        if error.status == 0:
            recorder.add(_Sample(phase, "transport", elapsed, 0))
            return "transport"
        recorder.add(_Sample(phase, "http_error", elapsed, error.status))
        return "http_error"
    elapsed = time.perf_counter() - started
    recorder.add(_Sample(phase, "admitted", elapsed, 200))
    recorder.check(phase, label, row, _expected_row(item, label))
    return "admitted"


def _swarm(
    url: str,
    mix: list[_MixItem],
    *,
    phase: str,
    clients: int,
    seconds: float,
    recorder: _Recorder,
    config: LoadTestConfig,
    unique_labels: bool,
    budget_every: int = 0,
) -> None:
    """A closed-loop swarm: each client issues its next request as soon
    as the previous one resolves (including fast 429s), for ``seconds``.

    ``unique_labels`` makes every call a guaranteed answer-cache miss
    (real compute through the batcher); fixed labels replay the cache.
    ``budget_every > 0`` attaches a tight client deadline budget to
    every N-th call (exercised during the slow-handler fault).
    """
    deadline = time.perf_counter() + seconds

    def run(worker: int) -> None:
        client = ServiceClient(url, timeout=config.request_timeout)
        turn = 0
        while time.perf_counter() < deadline:
            item = mix[(worker + turn) % len(mix)]
            label = (
                f"{item.request.label}:{phase}:{worker}:{turn}"
                if unique_labels
                else item.request.label
            )
            budget = (
                config.budget_seconds
                if budget_every and turn % budget_every == 0
                else None
            )
            kind = _call_item(
                client, item, label, phase=phase, recorder=recorder, budget_seconds=budget
            )
            # A rejected client backs off a beat instead of hammering —
            # enough to keep the swarm honest without idling it.
            if kind == "rejected" and config.reject_backoff_seconds > 0:
                time.sleep(config.reject_backoff_seconds)
            turn += 1
    threads = [
        threading.Thread(target=run, args=(worker,), daemon=True)
        for worker in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=seconds + config.request_timeout + 30)


# -- fault probes --------------------------------------------------------------------------

#: Raw byte payloads a hostile or broken client might send mid-burst.
_MALFORMED_PAYLOADS = (
    b"GARBAGE\r\n\r\n",
    b"POST /estimate HTTP/1.1\r\nContent-Length: 500000\r\n\r\n{\"truncated",
    b"POST /estimate HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
    b"POST /estimate HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    b"POST /estimate HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]",
)


def _malformed_probes(url: str) -> int:
    """Fire raw malformed/truncated requests; returns how many were sent.

    The server's obligation is only to *survive* — respond with an
    error or drop the connection, never crash or wedge; the caller
    checks ``/healthz`` afterwards.
    """
    host, port_text = url.removeprefix("http://").split(":")
    sent = 0
    for payload in _MALFORMED_PAYLOADS:
        try:
            with socket.create_connection((host, int(port_text)), timeout=5) as raw:
                raw.sendall(payload)
                raw.settimeout(2)
                try:
                    raw.recv(4096)
                except (socket.timeout, ConnectionError):
                    pass
            sent += 1
        except OSError:  # pragma: no cover - probe could not connect
            pass
    return sent


class _MetricsScraper:
    """Scrapes ``/metrics`` on an interval; snapshots feed the
    monotonicity check (counters and histogram buckets must never
    decrease across scrapes, whatever the load does)."""

    def __init__(self, url: str, interval: float):
        self._client = ServiceClient(url, timeout=10.0)
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.snapshots: list[dict[str, float]] = []

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.snapshots.append(self._client.metrics())
            except ServiceClientError:
                pass  # a kill-fault window; monotonicity spans the gap
            self._stop.wait(self._interval)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> list[dict[str, float]]:
        self._stop.set()
        self._thread.join(timeout=30)
        return self.snapshots


def _monotone_series(key: str) -> bool:
    name = key.split("{", 1)[0]
    return name.endswith(("_total", "_bucket", "_count", "_sum"))


def monotonicity_violations(snapshots: list[dict[str, float]]) -> list[str]:
    """Counter/histogram series that *decreased* between two scrapes.

    A restart (the kill fault) legitimately resets counters to zero;
    scrape sequences are therefore split at points where the server's
    ``repro_uptime_seconds`` gauge went backwards, and monotonicity is
    asserted within each server lifetime.
    """
    violations: list[str] = []
    previous: dict[str, float] | None = None
    for snapshot in snapshots:
        if previous is not None:
            uptime = snapshot.get("repro_uptime_seconds")
            previous_uptime = previous.get("repro_uptime_seconds")
            if (
                uptime is not None
                and previous_uptime is not None
                and uptime < previous_uptime
            ):
                # Server restarted between scrapes: new lifetime, new zeroes.
                previous = snapshot
                continue
            violations.extend(
                f"{key}: {previous[key]} -> {value}"
                for key, value in snapshot.items()
                if _monotone_series(key) and key in previous and value < previous[key]
            )
        previous = snapshot
    return violations


# -- the harness ---------------------------------------------------------------------------


def run_loadtest(
    config: LoadTestConfig | None = None,
    *,
    base_url: str | None = None,
    server: ServerProcess | None = None,
) -> LoadTestReport:
    """Run every phase against a server and return the scored report.

    With neither ``base_url`` nor ``server``, a :class:`ServerProcess`
    is spawned from ``config`` (the realistic, subprocess-backed mode
    the CLI and the E29 bench use) and stopped afterwards.  Passing
    ``base_url`` targets an already-running server (the kill fault is
    then skipped — the harness does not own the process); passing
    ``server`` uses a caller-managed :class:`ServerProcess` without
    stopping it.
    """
    config = config or LoadTestConfig()
    if config.inject_disk_fault and config.workers:
        raise ValueError(
            "inject_disk_fault requires an in-process store (workers == 0): "
            "the /_fault disk shim is process-local and would miss the shards"
        )
    owned: ServerProcess | None = None
    scratch: tempfile.TemporaryDirectory | None = None
    if base_url is None and server is None:
        cache_dir = config.cache_dir
        if cache_dir is None and config.inject_disk_fault:
            # The disk-fault beat needs a store to break.
            scratch = tempfile.TemporaryDirectory(prefix="repro-loadtest-cache-")
            cache_dir = scratch.name
        owned = server = ServerProcess(
            seed=config.seed,
            max_queue=config.max_queue,
            max_pending=config.max_pending,
            max_inflight=config.max_inflight,
            default_budget=config.default_budget,
            answer_cache_size=config.answer_cache_size,
            fault_injection=True,
            workers=config.workers,
            cache_dir=cache_dir,
        )
        owned.start()
    if server is not None:
        base_url = server.url
    assert base_url is not None
    try:
        return _run_phases(config, base_url, server)
    finally:
        if owned is not None:
            owned.stop()
        if scratch is not None:
            scratch.cleanup()


def _run_phases(
    config: LoadTestConfig, url: str, server: ServerProcess | None
) -> LoadTestReport:
    report = LoadTestReport(config=dict(vars(config)))
    mix = _build_mix(config)
    recorder = _Recorder()
    control = ServiceClient(url, timeout=config.request_timeout)

    # Phase 1: warm — sequential, fixed labels, cold bit-identity.
    for item in mix:
        _call_item(control, item, item.request.label, phase="warm", recorder=recorder)

    scraper = _MetricsScraper(url, config.metrics_scrape_interval)
    scraper.start()

    # Phase 2: baseline — one client, unique labels (pure compute path).
    before_baseline = control.metrics()
    _swarm(
        url, mix, phase="baseline", clients=1, seconds=config.baseline_seconds,
        recorder=recorder, config=config, unique_labels=True,
    )
    after_baseline = control.metrics()
    report.unloaded_p99 = _histogram_p99(before_baseline, after_baseline)
    baseline = [s.seconds for s in recorder.phase_samples("baseline") if s.kind == "admitted"]
    report.unloaded_p99_client = _percentile(baseline, 0.99)

    # Phase 3: saturation — swarm below the admission bounds.
    _swarm(
        url, mix, phase="saturation", clients=config.saturation_clients,
        seconds=config.saturation_seconds, recorder=recorder, config=config,
        unique_labels=True,
    )
    admitted = [s for s in recorder.phase_samples("saturation") if s.kind == "admitted"]
    report.saturation_rps = len(admitted) / config.saturation_seconds

    # Phase 4: overload — swarm past the bounds; backpressure must engage.
    before_overload = control.metrics()
    _swarm(
        url, mix, phase="overload", clients=config.overload_clients,
        seconds=config.overload_seconds, recorder=recorder, config=config,
        unique_labels=True,
    )
    after_overload = control.metrics()
    overload = recorder.phase_samples("overload")
    overload_admitted = [s.seconds for s in overload if s.kind == "admitted"]
    report.overload_admitted = len(overload_admitted)
    report.overload_admitted_p99 = _histogram_p99(before_overload, after_overload)
    report.overload_admitted_p99_client = _percentile(overload_admitted, 0.99)
    rejected = [s for s in overload if s.kind == "rejected"]
    report.overload_rejected = len(rejected)
    report.overload_offered_rps = (
        len(overload_admitted) + len(rejected)
    ) / config.overload_seconds
    report.rejected_missing_retry_after = sum(
        1
        for s in recorder.samples
        if s.kind == "rejected" and s.retry_after is None
    )

    # Phase 5: cache — fixed labels collapse the swarm onto the cache.
    stats_before = control.stats()
    _swarm(
        url, mix, phase="cache", clients=config.saturation_clients,
        seconds=config.cache_seconds, recorder=recorder, config=config,
        unique_labels=False,
    )
    stats_after = control.stats()
    report.cache_hits = (stats_after.get("answer_cache") or {}).get("hits", 0) - (
        (stats_before.get("answer_cache") or {}).get("hits", 0)
    )

    # Phase 6: faults — the storm continues while faults go in.
    storm = threading.Thread(
        target=_swarm,
        kwargs=dict(
            url=url, mix=mix, phase="faults", clients=config.saturation_clients,
            seconds=config.fault_seconds, recorder=recorder, config=config,
            unique_labels=True,
            budget_every=3 if config.inject_slow else 0,
        ),
        daemon=True,
    )
    storm.start()
    beat = config.fault_seconds / 6
    time.sleep(beat)
    if config.inject_slow:
        control._call("POST", "/_fault", {"slow_seconds": config.slow_seconds})
    time.sleep(beat)
    if config.inject_poison:
        poison = control._call("POST", "/_fault", {"poison_cache": True})
        report.final_stats["poison_injected"] = poison.get("poisoned_entries", 0)
        # Read the poisoned entries back (fixed labels hit the cache) so
        # detection provably happens *before* any kill-fault restart
        # resets the server's counters.  The storm is still hammering the
        # admission bounds, so this pass must retry through 429s.
        retrying = ServiceClient(
            url, timeout=config.request_timeout, max_retries=50, retry_after_cap=0.1
        )
        for item in mix:
            _call_item(
                retrying, item, item.request.label, phase="faults", recorder=recorder
            )
        report.poisoned_detected = (
            control.stats().get("answer_cache") or {}
        ).get("poisoned", 0)
    if config.inject_malformed:
        report.malformed_probes = _malformed_probes(url)
    if config.inject_worker_kill:
        # The router survives; the shard respawns.  Unlike the whole-
        # process kill below, the storm keeps talking to the same
        # listener throughout, so this fault must be invisible to
        # clients — _score asserts the respawn happened and the usual
        # transport/bit-identity invariants catch any leakage.
        try:
            killed = control._call("POST", "/_fault", {"kill_worker": 0})
        except ServiceClientError as error:
            report.failures.append(f"worker-kill fault was rejected: {error}")
        else:
            if killed.get("killed_pid"):
                report.worker_kills += 1
    if config.inject_disk_fault:
        # Seed the store with clean spills, then break the disk: writes
        # fail with ENOSPC, reads flip one bit, and sessions are dropped
        # so re-admissions hit both — the server must enter degraded
        # mode while keeping answers clean (the usual 5xx and
        # bit-identity invariants stay armed throughout).
        control._call("POST", "/_fault", {"spill_sessions": True})
        faulted = control._call(
            "POST",
            "/_fault",
            {
                "disk_enospc": True,
                "disk_bitflip": config.seed + 1,
                "drop_sessions": True,
            },
        )
        report.final_stats["disk_fault"] = faulted
        # Deterministic probe (the storm races): a unique-label request
        # misses the answer cache, re-admits its session, and reads the
        # bitflipped entry — a corrupt load served by recompute.  The
        # recomputed session is dirty, so the spill that follows hits
        # the injected ENOSPC.  Both must trip the degraded gauge.
        retrying = ServiceClient(
            url, timeout=config.request_timeout, max_retries=50, retry_after_cap=0.1
        )
        _call_item(
            retrying,
            mix[0],
            f"{mix[0].request.label}:disk-fault-probe",
            phase="faults",
            recorder=recorder,
        )
        control._call("POST", "/_fault", {"spill_sessions": True})
        report.degraded_peak = int(
            control.metrics().get("repro_degraded_mode", 0)
        )
    time.sleep(beat)
    if config.inject_kill and server is not None:
        server.restart()
    time.sleep(beat)
    if config.inject_slow:
        control._call("POST", "/_fault", {"reset": True})
    if config.inject_disk_fault:
        # Heal the disk and exercise the store again: the next spill
        # succeeds, so degraded mode must clear (level-triggered).
        control._call(
            "POST",
            "/_fault",
            {"disk_enospc": False, "disk_bitflip": 0, "spill_sessions": True},
        )
        report.degraded_final = int(
            control.metrics().get("repro_degraded_mode", 0)
        )
    storm.join(timeout=config.fault_seconds + config.request_timeout + 60)
    report.deadline_hits = sum(1 for s in recorder.samples if s.kind == "deadline")

    # Phase 7: verify — fixed labels again: poisoned entries must be
    # detected and recomputed into the same bit-identical rows.
    for item in mix:
        _call_item(control, item, item.request.label, phase="verify", recorder=recorder)
    final_stats = control.stats()
    report.final_stats["stats"] = final_stats
    report.worker_restarts = sum(
        int(entry.get("restarts", 0))
        for entry in final_stats.get("shards") or []
        if isinstance(entry, dict)
    )
    cache_stats = final_stats.get("answer_cache") or {}
    # A kill-fault restart resets the counter; keep the pre-kill reading.
    report.poisoned_detected = max(
        report.poisoned_detected, cache_stats.get("poisoned", 0)
    )
    report.store_errors = int(
        (final_stats.get("registry") or {}).get("store_errors", 0) or 0
    )

    snapshots = scraper.stop()
    report.metrics_scrapes = len(snapshots)
    report.metrics_violations = monotonicity_violations(snapshots)

    report.transport_errors = sum(
        1 for s in recorder.samples if s.kind == "transport"
    )
    report.bit_identity_checked = recorder.checked
    report.bit_identity_failures = len(recorder.mismatches)

    _score(config, report, recorder, final_stats)
    return report


def _score(
    config: LoadTestConfig,
    report: LoadTestReport,
    recorder: _Recorder,
    final_stats: Mapping[str, Any],
) -> None:
    """Turn measurements into pass/fail: the degradation invariants."""
    failures = report.failures
    if recorder.mismatches:
        failures.append(
            f"{len(recorder.mismatches)} bit-identity mismatches; first: "
            + recorder.mismatches[0][:500]
        )
    if report.rejected_missing_retry_after:
        failures.append(
            f"{report.rejected_missing_retry_after} 429 responses lacked Retry-After"
        )
    bounded = any(
        bound is not None
        for bound in (config.max_queue, config.max_pending, config.max_inflight)
    )
    if bounded and report.overload_rejected == 0:
        failures.append(
            "overload never triggered backpressure (0 rejections with "
            f"max_queue={config.max_queue}, max_pending={config.max_pending}, "
            f"max_inflight={config.max_inflight})"
        )
    clean_transport = sum(
        1
        for s in recorder.samples
        if s.kind == "transport" and s.phase != "faults"
    )
    if clean_transport:
        failures.append(
            f"{clean_transport} connection-level errors outside the fault phase"
        )
    storm_transport = report.transport_errors - clean_transport
    if not config.inject_kill and storm_transport:
        failures.append(
            f"{storm_transport} connection-level errors in the fault phase "
            "with no kill fault injected"
        )
    unexpected = [
        s for s in recorder.samples if s.kind == "http_error"
    ]
    if unexpected:
        failures.append(
            f"{len(unexpected)} unexpected HTTP errors "
            f"(statuses {sorted({s.status for s in unexpected})})"
        )
    if report.metrics_violations:
        failures.append(
            f"{len(report.metrics_violations)} metrics monotonicity violations; "
            f"first: {report.metrics_violations[0]}"
        )
    if config.inject_poison and report.poisoned_detected == 0:
        failures.append("cache was poisoned but no poisoned entry was ever detected")
    if config.inject_slow and report.deadline_hits == 0:
        failures.append(
            "slow-handler fault + client budgets produced no 408/504 deadline hits"
        )
    if config.inject_malformed and report.malformed_probes == 0:
        failures.append("no malformed probes could be delivered")
    if config.inject_worker_kill:
        if report.worker_kills == 0:
            failures.append("worker-kill fault was configured but never delivered")
        elif report.worker_restarts == 0:
            failures.append(
                "a shard worker was SIGKILLed but the router never "
                "reported a respawn"
            )
    if config.inject_disk_fault:
        if report.degraded_peak == 0:
            failures.append(
                "disk faults were injected but repro_degraded_mode never raised"
            )
        if report.degraded_final:
            failures.append(
                "storage stayed degraded after the disk fault was cleared"
            )
        if report.store_errors == 0:
            failures.append(
                "disk faults were injected but no store errors were accounted"
            )
    if (
        config.check_p99
        and report.unloaded_p99 > 0
        and report.overload_admitted_p99
        > config.p99_degradation_limit * report.unloaded_p99
    ):
        failures.append(
            f"admitted p99 degraded {report.overload_admitted_p99 / report.unloaded_p99:.1f}x "
            f"under overload (limit {config.p99_degradation_limit}x)"
        )
    batching = final_stats.get("batching") or {}
    if config.max_pending is not None and batching.get("pending_requests", 0) > (
        config.max_pending
    ):
        failures.append(
            f"pending requests {batching['pending_requests']} exceed "
            f"max_pending={config.max_pending} after the run"
        )
