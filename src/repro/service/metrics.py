"""Dependency-free Prometheus-text metrics for the service plane.

A tiny instrumentation kernel — counters, gauges, histograms and a
registry that renders the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
so the server can expose ``GET /metrics`` without taking on the
``prometheus_client`` dependency (the library is stdlib-only by design).

Three deliberate simplifications versus the full client library:

* label sets are declared up front (``labelnames``) and children are
  addressed positionally through :meth:`LabeledMetric.labels`;
* counters may be *sampled* — constructed with a ``callback`` that reads
  an existing monotone counter (the registry hit/miss/eviction counts
  already live on :class:`~repro.service.registry.SessionRegistry`;
  re-plumbing them would risk double counting);
* histograms use fixed cumulative buckets chosen at construction.

Everything is thread-safe: observations arrive both from the asyncio
event loop and from executor threads running batches.  Rendering takes
each metric's lock briefly, so a scrape observes a consistent snapshot
per metric series — and every value a scrape reports for a counter or
histogram bucket is monotonically non-decreasing across scrapes (the
invariant the load-test harness asserts).
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "WIDTH_BUCKETS",
    "parse_metrics_text",
]

#: Default latency buckets (seconds): sub-millisecond warm hits through
#: multi-second saturated batches.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default batch-width buckets (requests coalesced into one pass).
WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: float) -> str:
    """Integers render without a trailing ``.0`` (both forms are legal)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + body + "}"


class Counter:
    """A monotone counter, optionally label-less or callback-sampled."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ):
        if callback is not None and labelnames:
            raise ValueError("callback counters cannot take labels")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._callback = callback
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def labels(self, *values) -> "_CounterChild":
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        return _CounterChild(self, tuple(str(v) for v in values))

    def inc(self, amount: float = 1) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels")
        self._inc((), amount)

    def _inc(self, key: tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, *labelvalues) -> float:
        """The current value of one series (0 if never incremented)."""
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._values.get(tuple(str(v) for v in labelvalues), 0)

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        if self._callback is not None:
            return [((), self._callback())]
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        recorded = self.samples()
        if not recorded and not self.labelnames:
            recorded = [((), 0)]
        for key, value in recorded:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_format_value(value)}"
            )
        return lines


class _CounterChild:
    """One labeled series of a :class:`Counter`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: tuple[str, ...]):
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1) -> None:
        self._parent._inc(self._key, amount)


class Gauge:
    """A settable or callback-sampled instantaneous value.

    A *labeled* gauge must be callback-driven: the callback returns a
    mapping from label-value tuples (or a single string for one label)
    to numbers, re-sampled at every render — the shape the router uses
    for per-shard series, whose children appear and disappear with
    worker respawns (gauges carry no monotonicity contract, so that
    churn is legal where a labeled counter reset would not be).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        callback: Callable[[], float] | None = None,
        labelnames: Sequence[str] = (),
    ):
        if labelnames and callback is None:
            raise ValueError("labeled gauges must be callback-sampled")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._callback = callback
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise ValueError(f"{self.name} is callback-driven")
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if self._callback is not None:
            raise ValueError(f"{self.name} is callback-driven")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def _sampled(self) -> dict[tuple[str, ...], float]:
        mapping: Mapping = self._callback() or {}
        normalized: dict[tuple[str, ...], float] = {}
        for key, value in mapping.items():
            values = key if isinstance(key, tuple) else (key,)
            normalized[tuple(str(v) for v in values)] = value
        return normalized

    def value(self, *labelvalues) -> float:
        if self.labelnames:
            return self._sampled().get(tuple(str(v) for v in labelvalues), 0)
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        if self.labelnames:
            for key, value in sorted(self._sampled().items()):
                lines.append(
                    f"{self.name}{_render_labels(self.labelnames, key)} "
                    f"{_format_value(value)}"
                )
            return lines
        lines.append(f"{self.name} {_format_value(self.value())}")
        return lines


class Histogram:
    """Cumulative-bucket histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.bounds = bounds
        self._lock = threading.Lock()
        # key -> ([per-bucket counts..., +Inf count], sum)
        self._series: dict[tuple[str, ...], tuple[list[int], float]] = {}

    def labels(self, *values) -> "_HistogramChild":
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        return _HistogramChild(self, tuple(str(v) for v in values))

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels")
        self._observe((), value)

    def _observe(self, key: tuple[str, ...], value: float) -> None:
        with self._lock:
            counts, total = self._series.get(key, (None, 0.0))
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[position] += 1
            counts[-1] += 1  # +Inf
            self._series[key] = (counts, total + value)

    def snapshot(self, *labelvalues) -> tuple[list[int], float, int]:
        """``(cumulative bucket counts incl. +Inf, sum, count)`` of one series."""
        key = tuple(str(v) for v in labelvalues)
        with self._lock:
            counts, total = self._series.get(key, (None, 0.0))
            if counts is None:
                return [0] * (len(self.bounds) + 1), 0.0, 0
            return list(counts), total, counts[-1]

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            series = sorted(
                (key, list(counts), total)
                for key, (counts, total) in self._series.items()
            )
        for key, counts, total in series:
            for bound, count in zip(self.bounds, counts):
                labels = _render_labels(
                    (*self.labelnames, "le"), (*key, _format_value(bound))
                )
                lines.append(f"{self.name}_bucket{labels} {count}")
            inf_labels = _render_labels((*self.labelnames, "le"), (*key, "+Inf"))
            lines.append(f"{self.name}_bucket{inf_labels} {counts[-1]}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {counts[-1]}")
        return lines


class _HistogramChild:
    """One labeled series of a :class:`Histogram`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Histogram, key: tuple[str, ...]):
        self._parent = parent
        self._key = key

    def observe(self, value: float) -> None:
        self._parent._observe(self._key, value)


class MetricsRegistry:
    """An ordered collection of metrics rendered as one text document."""

    def __init__(self):
        self._metrics: list[Counter | Gauge | Histogram] = []
        self._names: set[str] = set()
        self._lock = threading.Lock()

    def _register(self, metric):
        with self._lock:
            if metric.name in self._names:
                raise ValueError(f"duplicate metric name {metric.name!r}")
            self._names.add(metric.name)
            self._metrics.append(metric)
        return metric

    def counter(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Counter:
        return self._register(Counter(name, help, labelnames, callback))

    def gauge(
        self,
        name: str,
        help: str,
        callback: Callable[[], float] | None = None,
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._register(Gauge(name, help, callback, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, labelnames))

    def render(self) -> str:
        with self._lock:
            metrics = list(self._metrics)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def parse_metrics_text(text: str) -> dict[str, float]:
    """Parse exposition text into ``{'name{labels}': value}``.

    The inverse the tests and the load-test harness use to assert
    counter values and monotonicity; labels are normalized by sorting,
    so the key is independent of render order.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        if "{" in name_part:
            name, _, label_blob = name_part.partition("{")
            labels = label_blob.rstrip("}")
            pieces = sorted(filter(None, _split_labels(labels)))
            key = name + "{" + ",".join(pieces) + "}"
        else:
            key = name_part
        samples[key] = float(value_part)
    return samples


def _split_labels(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pieces: list[str] = []
    current: list[str] = []
    quoted = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            quoted = not quoted
        if char == "," and not quoted:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pieces.append("".join(current))
    return pieces
