"""The estimation service plane: warm sessions served over HTTP.

Everything below :mod:`repro.engine` amortizes work *within* one process
invocation; this package amortizes it *across* invocations by keeping the
engine warm in a long-running process:

* :class:`SessionRegistry` (:mod:`repro.service.registry`) — an LRU of
  warm :class:`~repro.engine.session.EstimationSession`\\ s keyed by
  :func:`~repro.engine.store.instance_cache_key`, each with its lazily
  grown shared sample pool, a per-session lock (sessions are not
  thread-safe), and optional :class:`~repro.engine.store.CacheStore`
  warm-start on admission / spill on eviction.
* :class:`MicroBatcher` (:mod:`repro.service.batching`) — coalesces
  concurrent requests for the same group into one batched
  pool-extension + hit-counting pass, so concurrency widens batches
  instead of contending on the session lock.
* :class:`EstimationServer` / :func:`serve` / :class:`BackgroundServer`
  (:mod:`repro.service.server`) — a stdlib-only asyncio HTTP JSON API
  (``/estimate``, ``/answers``, ``/healthz``, ``/stats``), started from
  the command line as ``python -m repro serve``.
* :class:`ServiceClient` (:mod:`repro.service.client`) — a small
  ``urllib``-based client for the HTTP API.

The determinism contract carries all the way through: a served estimate
is bit-identical to the same request inside an offline
:func:`~repro.engine.batch.batch_estimate` run under the same workload
seed, regardless of arrival order or batching (group seeds are content-
derived and every request evaluates its group's pool from position
zero).  ``benchmarks/bench_e27_service_throughput.py`` asserts exactly
that while measuring the warm-registry speedup.
"""

from .batching import MicroBatcher
from .client import ServiceClient, ServiceClientError
from .registry import DEFAULT_MAX_SESSIONS, SessionHandle, SessionRegistry
from .server import DEFAULT_HOST, DEFAULT_PORT, BackgroundServer, EstimationServer, serve

__all__ = [
    "BackgroundServer",
    "DEFAULT_HOST",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_PORT",
    "EstimationServer",
    "MicroBatcher",
    "ServiceClient",
    "ServiceClientError",
    "SessionHandle",
    "SessionRegistry",
    "serve",
]
