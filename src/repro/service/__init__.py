"""The estimation service plane: warm sessions served over HTTP.

Everything below :mod:`repro.engine` amortizes work *within* one process
invocation; this package amortizes it *across* invocations by keeping the
engine warm in a long-running process:

* :class:`SessionRegistry` (:mod:`repro.service.registry`) — an LRU of
  warm :class:`~repro.engine.session.EstimationSession`\\ s keyed by
  :func:`~repro.engine.store.instance_cache_key`, each with its lazily
  grown shared sample pool, a per-session lock (sessions are not
  thread-safe), and optional :class:`~repro.engine.store.CacheStore`
  warm-start on admission / spill on eviction.
* :class:`MicroBatcher` (:mod:`repro.service.batching`) — coalesces
  concurrent requests for the same group into one batched
  pool-extension + hit-counting pass, so concurrency widens batches
  instead of contending on the session lock; its queues are bounded
  (:class:`QueueFull` → HTTP 429 + ``Retry-After``).
* :class:`AnswerCache` (:mod:`repro.service.cache`) — a digest-verified
  LRU of served result rows in front of the estimate path (seeded
  servers only; a poisoned entry is detected and recomputed, never
  served).
* :class:`MetricsRegistry` (:mod:`repro.service.metrics`) — the
  dependency-free Prometheus-text instrumentation behind
  ``GET /metrics``.
* :class:`EstimationServer` / :func:`serve` / :class:`BackgroundServer`
  (:mod:`repro.service.server`) — a stdlib-only asyncio HTTP JSON API
  (``/estimate``, ``/answers``, ``/healthz``, ``/stats``,
  ``/metrics``), started from the command line as
  ``python -m repro serve``, with admission control and per-request
  deadline budgets.
* :class:`WorkerPool` / :class:`WorkerConfig` / :func:`shard_for_key` /
  :func:`aggregate_shard_stats` (:mod:`repro.service.sharding`) — the
  sharded multi-process plane (``serve --workers N``): one warm
  registry per core behind the asyncio router, rendezvous-hashed
  placement over the registry key, shared-memory sample pools,
  SIGTERM drains, and respawn + re-warm of dead workers — with served
  rows bit-identical at any worker count.
* :class:`ServiceClient` (:mod:`repro.service.client`) — a small
  ``urllib``-based client for the HTTP API; every failure mode
  surfaces as :class:`ServiceClientError`.
* :func:`run_loadtest` / :class:`LoadTestConfig` /
  :class:`LoadTestReport` / :class:`ServerProcess`
  (:mod:`repro.service.loadtest`) — the closed-loop fault-injection
  load-test harness (``python -m repro loadtest``) that proves the
  plane degrades gracefully past saturation.

The determinism contract carries all the way through: a served estimate
is bit-identical to the same request inside an offline
:func:`~repro.engine.batch.batch_estimate` run under the same workload
seed, regardless of arrival order, batching, caching, or server
restarts (group seeds are content-derived and every request evaluates
its group's pool from position zero).
``benchmarks/bench_e27_service_throughput.py`` asserts exactly that
while measuring the warm-registry speedup, and
``benchmarks/bench_e29_saturation.py`` re-asserts it past saturation
with every fault injected.
"""

from .batching import MicroBatcher, QueueFull
from .cache import DEFAULT_ANSWER_CACHE_SIZE, AnswerCache
from .client import ServiceClient, ServiceClientError
from .loadtest import (
    LoadTestConfig,
    LoadTestReport,
    ServerProcess,
    format_report,
    run_loadtest,
)
from .metrics import MetricsRegistry, parse_metrics_text
from .registry import DEFAULT_MAX_SESSIONS, SessionHandle, SessionRegistry
from .server import DEFAULT_HOST, DEFAULT_PORT, BackgroundServer, EstimationServer, serve
from .sharding import WorkerConfig, WorkerPool, aggregate_shard_stats, shard_for_key

__all__ = [
    "AnswerCache",
    "BackgroundServer",
    "DEFAULT_ANSWER_CACHE_SIZE",
    "DEFAULT_HOST",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_PORT",
    "EstimationServer",
    "LoadTestConfig",
    "LoadTestReport",
    "MetricsRegistry",
    "MicroBatcher",
    "QueueFull",
    "ServerProcess",
    "ServiceClient",
    "ServiceClientError",
    "SessionHandle",
    "SessionRegistry",
    "WorkerConfig",
    "WorkerPool",
    "aggregate_shard_stats",
    "format_report",
    "parse_metrics_text",
    "run_loadtest",
    "serve",
    "shard_for_key",
]
