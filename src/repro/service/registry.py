"""Warm session registry: LRU-cached estimation sessions with locks.

A long-lived process answering many ``P_{M_Σ,Q}(D, c̄)`` requests should
pay each group's setup — block decomposition, fact interning, witness
enumeration, sample drawing — once, not per request.
:class:`SessionRegistry` keeps one warm
:class:`~repro.engine.session.EstimationSession` (plus its shared
:class:`~repro.engine.session.SamplePool`) per
``(database, Σ, generator)`` group, keyed by the same content hash the
on-disk cache uses (:func:`~repro.engine.store.instance_cache_key` over
the group's derived seed), and evicts least-recently-used groups beyond
``max_sessions``.

**Determinism.**  Group seeds come from
:func:`~repro.engine.batch.group_seed_for` — a pure function of the
group content and the registry's workload seed — and every request
evaluates the group pool from position zero, so a registry-served
estimate is bit-identical to the same request inside any offline
:func:`~repro.engine.batch.batch_estimate` run with the same seed, no
matter when it arrives or what it is batched with.

**Locking model.**  Sessions mutate shared state (witness caches, the
sample pool, the cache entry) and are *not* thread-safe, so every batch
executes under its handle's ``threading.Lock`` (:meth:`SessionHandle.run`).
The registry's own lock guards only the LRU map — admissions build their
session outside it, so a slow cold admission never blocks requests for
warm groups.  The micro-batching server keeps at most one in-flight
batch per group, leaving the per-session lock uncontended there; the
lock is what makes the registry safe for *direct* multi-threaded use
too.

**Persistence.**  With a ``cache_dir``, admissions warm-start from the
:class:`~repro.engine.store.CacheStore` (decomposition, verdicts,
bounds, the persisted sample prefix) and evictions spill newly drawn
state back — so a group bouncing in and out of a small registry never
redraws samples it already paid for.  Spills merge with concurrent
writers instead of clobbering them (see :meth:`CacheEntry.save
<repro.engine.store.CacheEntry.save>`).

**Degraded mode.**  The store is an accelerator, never an authority:
any warm-start or spill failure (ENOSPC, read-only filesystem, a
corrupt entry) is recorded in the registry's
:class:`~repro.engine.store.StoreErrorLog` and the group is served
compute-without-cache instead of erroring.  ``stats()["degraded"]``
stays raised until the next store operation succeeds, and the server
exports the log as ``repro_store_errors_total{op,kind}`` and
``repro_degraded_mode``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..engine.batch import BatchRequest, BatchResult, group_seed_for, run_group
from ..engine.session import EstimationSession
from ..engine.store import (
    CacheSerializationError,
    CacheStore,
    StoreErrorLog,
    instance_cache_key,
)

#: Default LRU capacity of a registry (warm groups kept in memory).
DEFAULT_MAX_SESSIONS = 32


class SessionHandle:
    """One warm group: session + shared pool + lock + serving counters.

    Obtained from :meth:`SessionRegistry.handle`; holders may keep using
    a handle after the registry evicts it (eviction only drops the
    registry's reference and spills the cache entry — in-flight batches
    complete normally).
    """

    def __init__(
        self,
        key: str,
        session: EstimationSession,
        pool,
        seed: int | None,
        storage: StoreErrorLog | None = None,
    ):
        self.key = key
        self.session = session
        self.pool = pool
        self.seed = seed
        #: Where spill failures are accounted (the owning registry's log).
        self.storage = storage
        #: Serializes all session/pool mutation — hold it for any direct
        #: use of :attr:`session` or :attr:`pool` outside :meth:`run`.
        self.lock = threading.Lock()
        self.requests_served = 0
        self.batches_run = 0
        self.error_rows = 0

    @property
    def generator_name(self) -> str:
        """The paper name of the group's generator (e.g. ``"M_ur"``)."""
        return self.session.generator.name

    def run(
        self, requests: Sequence[BatchRequest], mode: str = "fixed"
    ) -> list[BatchResult]:
        """Score ``requests`` against the warm session, in request order.

        One :func:`~repro.engine.batch.run_group` pass under the session
        lock: the micro-batcher hands whole coalesced batches through
        here, and because every request reads the pool from position
        zero, results are independent of how requests are split across
        calls.
        """
        members = list(enumerate(requests))
        with self.lock:
            outcomes = run_group(self.session, self.pool, members, mode)
            results: list[BatchResult | None] = [None] * len(members)
            for position, outcome in outcomes:
                results[position] = outcome
            self.batches_run += 1
            self.requests_served += len(members)
            self.error_rows += sum(1 for row in results if not row.ok)
        return results  # type: ignore[return-value]  # run_group fills every slot

    def spill(self) -> None:
        """Persist the session's cache entry, best-effort (the cache is
        an accelerator — an unwritable directory or non-JSON constants
        must never take the service down).  Failures are absorbed but
        *accounted* in :attr:`storage`; anything outside the expected
        disk/serialization failure modes is a store bug and propagates.
        """
        cache = self.session.cache
        if cache is None:
            return
        with self.lock:
            try:
                committed = cache.save()
            except (OSError, CacheSerializationError) as error:
                if self.storage is not None:
                    self.storage.record("spill", error)
            else:
                # A no-op save (nothing dirty) never touched the disk —
                # it is not evidence the store recovered, so only a real
                # commit clears degraded mode.
                if committed and self.storage is not None:
                    self.storage.mark_ok()

    def release_shared(self) -> None:
        """Detach the pool from shared memory (after :meth:`spill`).

        Copies the drawn prefix into private memory and unlinks the
        segment, so an evicted handle keeps working (the documented
        holder contract) while ``/dev/shm`` is reclaimed immediately.
        No-op for pools that were never shared.
        """
        release = getattr(self.pool, "release_shared", None)
        if release is None:
            return
        with self.lock:
            release()

    def stats(self) -> dict:
        """Serving counters for this group, JSON-native."""
        return {
            "key": self.key,
            "generator": self.generator_name,
            "facts": len(self.session.database),
            "backend": self.pool.backend,
            "pool_samples": len(self.pool),
            "requests_served": self.requests_served,
            "batches_run": self.batches_run,
            "error_rows": self.error_rows,
        }


class SessionRegistry:
    """An LRU of warm estimation sessions, one per instance group.

    ``seed`` is the workload-level seed every group seed derives from
    (``None`` = fresh entropy per group — estimates are then not
    reproducible and the cache store is bypassed, mirroring
    ``batch_estimate``).  ``cache_dir`` attaches a persistent
    :class:`~repro.engine.store.CacheStore` for warm-start/spill;
    ``backend`` / ``use_kernel`` are forwarded to every session.

    ``shared_pools=True`` backs every vector pool with a
    :class:`~repro.sampling.vectorized.SharedSampleSegment` (sharded
    workers use this so the cache store and siblings can read sample
    matrices zero-copy); eviction and :meth:`close` release the segments
    after spilling.  Scalar pools ignore the flag.
    """

    def __init__(
        self,
        *,
        seed: int | None = None,
        cache_dir: str | None = None,
        backend: str = "auto",
        use_kernel: bool = True,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        shared_pools: bool = False,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if backend not in ("auto", "vector", "scalar"):
            raise ValueError(
                f"unknown backend {backend!r} (use 'auto', 'vector' or 'scalar')"
            )
        self.seed = seed
        self.backend = backend
        self.use_kernel = use_kernel
        self.max_sessions = max_sessions
        self.shared_pools = shared_pools
        #: Per-registry store-failure accounting; drives degraded mode.
        self.storage = StoreErrorLog()
        self.store = CacheStore(cache_dir) if cache_dir is not None else None
        self._handles: OrderedDict[str, SessionHandle] = OrderedDict()
        self._lock = threading.Lock()
        # (database, constraints, generator) -> (group seed, registry key).
        # Deriving them hashes the whole instance (canonical JSON +
        # SHA-256, twice); memoizing makes the warm hot path — including
        # the micro-batcher's key lookups on the event loop — a dict hit.
        self._keys: OrderedDict[tuple, tuple[int | None, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _derived(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
    ) -> tuple[int | None, str]:
        group = (database, constraints, generator)
        with self._lock:
            cached = self._keys.get(group)
            if cached is not None:
                self._keys.move_to_end(group)
                return cached
        seed = group_seed_for(self.seed, database, constraints, generator)
        key = instance_cache_key(database, constraints, generator.name, seed)
        with self._lock:
            self._keys[group] = (seed, key)
            # Bounded well above the LRU so eviction churn stays cheap.
            while len(self._keys) > 4 * self.max_sessions:
                self._keys.popitem(last=False)
        return seed, key

    def group_seed(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
    ) -> int | None:
        """This group's derived seed (identical to ``batch_estimate``'s)."""
        return self._derived(database, constraints, generator)[0]

    def key_for(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
    ) -> str:
        """The registry key — also the group's on-disk cache entry key."""
        return self._derived(database, constraints, generator)[1]

    def handle(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
    ) -> SessionHandle:
        """The warm handle for this group, admitting (and possibly
        evicting) as needed.

        Raises :class:`~repro.approx.fpras.FPRASUnavailable` (or
        ``ValueError`` for backend misconfiguration) when the group is
        outside the paper's positive results — unsupported groups are
        never admitted, so they cannot flush warm sessions out of the
        LRU.
        """
        seed, key = self._derived(database, constraints, generator)
        with self._lock:
            cached = self._handles.get(key)
            if cached is not None:
                self._handles.move_to_end(key)
                self.hits += 1
                return cached
        handle = self._admit(seed, key, database, constraints, generator)
        evicted: list[SessionHandle] = []
        with self._lock:
            raced = self._handles.get(key)
            if raced is not None:
                # Two threads built the same cold group concurrently; the
                # first insert wins so every caller shares one stream.
                self._handles.move_to_end(key)
                self.hits += 1
                return raced
            self.misses += 1
            self._handles[key] = handle
            while len(self._handles) > self.max_sessions:
                _, old = self._handles.popitem(last=False)
                evicted.append(old)
                self.evictions += 1
        for old in evicted:
            old.spill()
            old.release_shared()
        return handle

    def _admit(
        self,
        seed: int | None,
        key: str,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
    ) -> SessionHandle:
        """Build a cold group's session + pool (outside the registry lock).

        Degraded admission: if the store cannot even hand out an entry,
        or warm-starting the pool fails, the group is served
        compute-without-cache and the failure is accounted — a broken
        disk must never turn into a 500.  A *damaged* entry
        (``load_error`` set) stays attached: it warm-starts empty and
        becomes the save target once the group recomputes.
        """
        cache = None
        if self.store is not None and seed is not None:
            try:
                cache = self.store.entry(database, constraints, generator.name, seed)
            except OSError as error:
                self.storage.record("load", error)
            else:
                if cache.load_error is not None:
                    self.storage.record("load", cache.load_error)
                else:
                    self.storage.mark_ok()
        session = EstimationSession(
            database,
            constraints,
            generator,
            cache=cache,
            use_kernel=self.use_kernel,
            backend=self.backend,
        )
        # Raises FPRASUnavailable for out-of-scope groups before admission.
        shared = self.shared_pools
        if cache is not None:
            try:
                pool = session.cached_pool(seed, shared=shared)
            except OSError as error:
                self.storage.record("warm", error)
                session = EstimationSession(
                    database,
                    constraints,
                    generator,
                    cache=None,
                    use_kernel=self.use_kernel,
                    backend=self.backend,
                )
                pool = session.pool_for_seed(seed, shared=shared)
        else:
            pool = session.pool_for_seed(seed, shared=shared)
        return SessionHandle(key, session, pool, seed, storage=self.storage)

    def estimate(
        self, requests: Sequence[BatchRequest], mode: str = "fixed"
    ) -> list[BatchResult]:
        """The warm, in-process twin of
        :func:`~repro.engine.batch.batch_estimate`.

        Groups ``requests``, serves each group from its (possibly
        freshly admitted) warm handle, and reports out-of-scope groups
        as per-request :attr:`~repro.engine.batch.BatchResult.error`
        rows — identical results to ``batch_estimate(requests,
        seed=registry.seed, mode=mode)``, minus the cold start.
        """
        from ..approx.fpras import FPRASUnavailable

        indexed = list(enumerate(requests))
        groups: dict[tuple, list[tuple[int, BatchRequest]]] = {}
        for position, request in indexed:
            groups.setdefault(request.group_key(), []).append((position, request))
        results: list[BatchResult | None] = [None] * len(indexed)
        for members in groups.values():
            group_requests = [request for _, request in members]
            first = group_requests[0]
            try:
                handle = self.handle(first.database, first.constraints, first.generator)
            except (FPRASUnavailable, ValueError) as error:
                for position, request in members:
                    results[position] = BatchResult(request, error=str(error))
                continue
            for (position, _), outcome in zip(
                members, handle.run(group_requests, mode)
            ):
                results[position] = outcome
        return results  # type: ignore[return-value]  # every slot is filled above

    def handles(self) -> list[SessionHandle]:
        """A stable snapshot of the warm handles, LRU-oldest first."""
        with self._lock:
            return list(self._handles.values())

    def spill_all(self) -> int:
        """Spill every warm session's cache entry, keeping them warm.

        Returns the number of handles spilled.  Exercises the store
        immediately, so the fault-injection plane (``POST /_fault``) can
        observe injected disk faults — and recovery from them — without
        waiting for organic eviction traffic.
        """
        handles = self.handles()
        for handle in handles:
            handle.spill()
        return len(handles)

    def drop_sessions(self) -> int:
        """Drop every warm session *without* spilling.

        Returns the number of handles dropped.  The next request per
        group re-admits from disk — the fault-injection plane uses this
        to force warm-start reads under an injected read fault.
        """
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.release_shared()
        return len(handles)

    def stats(self) -> dict:
        """Registry-level counters plus per-session rows, JSON-native."""
        handles = self.handles()
        storage = self.storage.snapshot()
        return {
            "sessions": len(handles),
            "max_sessions": self.max_sessions,
            "seed": self.seed,
            "backend": self.backend,
            "cache_dir": None if self.store is None else self.store.directory,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "store_errors": storage["total"],
            "degraded": storage["degraded"],
            "storage": storage,
            "groups": [handle.stats() for handle in handles],
        }

    def close(self) -> None:
        """Spill every warm session's cache entry and empty the registry."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.spill()
            handle.release_shared()
