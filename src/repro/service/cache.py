"""The memoized answer cache in front of the service estimate path.

Served estimates are deterministic — bit-identical to an offline
``batch_estimate(seed=...)`` run — so a seeded server may memoize whole
result *rows* keyed by everything that determines them:
``(instance_cache_key, query, answer, ε, δ, method, max_samples, label,
mode, backend)``.  A warm-pool recomputation is already cheap (one
hit-counting reduction); a cache hit makes the repeated-request hot
path — the common case for dashboard-style traffic — a dictionary
lookup that never touches the session lock or the executor.

**Integrity.**  Every entry stores its row as a canonical JSON string
plus a SHA-256 digest of that string, verified on every hit.  A
corrupted entry (bit rot, or the load-test harness's deliberate
cache-poisoning fault) is detected, counted (``poisoned``), dropped,
and recomputed — a poisoned cache can degrade the hit rate but can
never change a served answer.  That is the same "the cache is an
accelerator, never an authority" stance the on-disk
:class:`~repro.engine.store.CacheStore` takes.

Unseeded servers (``seed=None``) bypass the cache entirely: their
estimates are not reproducible, so memoizing them would *create* the
drift the service plane promises away.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any

__all__ = ["AnswerCache", "DEFAULT_ANSWER_CACHE_SIZE"]

#: Default LRU capacity (result rows, not instances — rows are tiny).
DEFAULT_ANSWER_CACHE_SIZE = 4096


def _digest(encoded: str) -> str:
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class AnswerCache:
    """A digest-verified LRU of served result rows."""

    def __init__(self, max_entries: int = DEFAULT_ANSWER_CACHE_SIZE):
        if max_entries < 1:
            raise ValueError("max_entries must be positive (0 disables the cache "
                             "at the server level, not here)")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # key -> (canonical row JSON, sha256 hex of that string)
        self._entries: OrderedDict[Any, tuple[str, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.poisoned = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key) -> dict | None:
        """The cached row for ``key`` (a fresh dict), or ``None``.

        Entries whose stored digest no longer matches their payload are
        treated as misses: counted in :attr:`poisoned`, evicted, and
        left for the caller to recompute.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            encoded, expected = entry
            if _digest(encoded) != expected:
                del self._entries[key]
                self.poisoned += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return json.loads(encoded)

    def put(self, key, row: dict) -> None:
        """Store ``row`` (JSON-native) under ``key``, evicting LRU-oldest."""
        encoded = json.dumps(row, sort_keys=True)
        stamped = (encoded, _digest(encoded))
        with self._lock:
            self._entries[key] = stamped
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def poison(self, count: int | None = None) -> int:
        """Corrupt up to ``count`` entries *without* updating digests.

        The load-test harness's cache-poisoning fault: flips each
        victim's payload so the next :meth:`get` must detect the
        mismatch.  Returns how many entries were corrupted.
        """
        corrupted = 0
        with self._lock:
            for key in list(self._entries):
                if count is not None and corrupted >= count:
                    break
                encoded, digest = self._entries[key]
                self._entries[key] = (encoded[:-1] + ("}" if not encoded.endswith("}") else " }"), digest)
                corrupted += 1
        return corrupted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction/poison counters, JSON-native."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "poisoned": self.poisoned,
            }
