"""The estimation HTTP server: a stdlib-only asyncio JSON API.

Endpoints (request/response JSON specified in ``docs/FORMATS.md``):

* ``POST /estimate`` — a workload-shaped document (``instances`` +
  ``requests`` + optional ``mode``/``defaults``, the exact
  ``python -m repro batch`` format with *inline* instance documents) or
  a single-request document (``instance`` + ``query`` + optional
  ``generator``/``answer``/``answers``/``epsilon``/``delta``/
  ``method``/``max_samples``/``mode``/``label``); responds with
  ``{"mode": ..., "results": [row, ...]}`` in request order, each row in
  the ``batch --json`` schema (scope errors are *rows*, not HTTP
  errors).
* ``POST /answers`` — single-request shape without ``answer``; expands
  every candidate tuple of ``Q(D)`` (the workload format's
  ``"answers": "all"``) and responds ``{"answers": [row, ...]}``.
* ``GET /healthz`` — liveness + session count.
* ``GET /stats`` — registry, micro-batcher and server counters.

Instance documents must be inline: the on-disk workload format's
"instance by file path" convenience is rejected here (a network service
must not read files named by its callers).

The server is deliberately minimal HTTP/1.1 — one request per
connection, ``Connection: close`` — because its job is to demonstrate
and exercise the service plane (registry + micro-batching) with zero
dependencies, not to replace a production front end; the concurrency
that matters (estimation) happens behind the event loop in coalesced
batches, where an idle keep-alive connection would buy nothing.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from typing import Any, Mapping

from ..engine.batch import BatchRequest, BatchResult
from ..io import InstanceFormatError, batch_results_to_rows, workload_from_dict
from .batching import MODES, MicroBatcher
from .registry import DEFAULT_MAX_SESSIONS, SessionRegistry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Request bodies past this size are rejected (64 MiB — far above any
#: reasonable workload document, far below a memory-exhaustion payload).
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Request-row fields forwarded from a single-request document into the
#: wrapped workload row (everything else is server-side configuration).
_SINGLE_REQUEST_FIELDS = (
    "query",
    "generator",
    "answer",
    "answers",
    "epsilon",
    "delta",
    "method",
    "max_samples",
)


class _BadRequest(Exception):
    """A client error carried to the HTTP layer as a 400 row."""


def _parse_body(body: bytes) -> Mapping[str, Any]:
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _BadRequest(f"request body is not valid JSON: {error}") from None
    if not isinstance(document, Mapping):
        raise _BadRequest("request body must be a JSON object")
    return document


def _reject_instance_paths(instances: Any) -> None:
    """The service never loads instances from server-side file paths."""
    if isinstance(instances, Mapping):
        for name, spec in instances.items():
            if not isinstance(spec, Mapping):
                raise _BadRequest(
                    f"instance {name!r} must be an inline instance document "
                    "(file paths are not served)"
                )


def _parse_mode(document: Mapping[str, Any]) -> str:
    mode = document.get("mode", "fixed")
    if mode not in MODES:
        raise _BadRequest(f"unknown mode {mode!r}; choose from {MODES}")
    return mode


def _estimate_requests(
    document: Mapping[str, Any],
) -> tuple[list[BatchRequest], str]:
    """Both ``/estimate`` body shapes → (requests, mode)."""
    if "requests" in document:
        _reject_instance_paths(document.get("instances"))
        try:
            return workload_from_dict(document), _parse_mode(document)
        except InstanceFormatError as error:
            raise _BadRequest(str(error)) from None
    return _single_request(document)


def _single_request(
    document: Mapping[str, Any], force_all_answers: bool = False
) -> tuple[list[BatchRequest], str]:
    """A single-request document, wrapped into the workload format."""
    instance = document.get("instance")
    if not isinstance(instance, Mapping):
        raise _BadRequest(
            "request needs an inline 'instance' document (or use the "
            "workload shape with 'instances' + 'requests')"
        )
    label = document.get("label", "request")
    if not isinstance(label, str):
        raise _BadRequest("'label' must be a string")
    row = {
        key: document[key] for key in _SINGLE_REQUEST_FIELDS if key in document
    }
    if force_all_answers:
        row.pop("answer", None)
        row["answers"] = "all"
    row["instance"] = label
    try:
        requests = workload_from_dict(
            {"instances": {label: instance}, "requests": [row]}
        )
    except InstanceFormatError as error:
        raise _BadRequest(str(error)) from None
    return requests, _parse_mode(document)


class EstimationServer:
    """The asyncio HTTP server over one registry + micro-batcher."""

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        executor=None,
    ):
        self.registry = registry if registry is not None else SessionRegistry()
        self.batcher = MicroBatcher(self.registry, executor=executor)
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self.requests_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns ``(host, port)`` actually bound
        (``port=0`` picks an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._started_at = time.monotonic()
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (:meth:`start` must have run)."""
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then spill every warm session to the cache."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Spilling walks session locks — keep it off the event loop.
        await asyncio.get_running_loop().run_in_executor(None, self.registry.close)

    @property
    def url(self) -> str:
        """The served base URL (after :meth:`start`)."""
        if self.address is None:
            raise RuntimeError("server not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- HTTP plumbing -----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as error:  # pragma: no cover - defensive backstop
            status, payload = 500, {"error": f"internal error: {error}"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client gone
            pass

    async def _handle_request(self, reader) -> tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, target, _ = parts
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = -1
                if length < 0:
                    return 400, {"error": "malformed Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": f"request body over {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return await self._dispatch(method, target.split("?", 1)[0], body)

    # -- routing -----------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, Any]:
        routes = {
            "/healthz": ("GET", self._healthz),
            "/stats": ("GET", self._stats),
            "/estimate": ("POST", self._estimate),
            "/answers": ("POST", self._answers),
        }
        route = routes.get(path)
        if route is None:
            return 404, {"error": f"unknown path {path!r}", "paths": sorted(routes)}
        expected, endpoint = route
        if method != expected:
            return 405, {"error": f"{path} expects {expected}"}
        try:
            if expected == "GET":
                return 200, endpoint()
            return 200, await endpoint(_parse_body(body))
        except _BadRequest as error:
            return 400, {"error": str(error)}

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "sessions": len(self.registry.handles()),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
        }

    def _stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "registry": self.registry.stats(),
            "batching": self.batcher.stats(),
        }

    async def _estimate(self, document: Mapping[str, Any]) -> dict:
        requests, mode = _estimate_requests(document)
        results = await self._run(requests, mode)
        return {
            "mode": mode,
            "count": len(results),
            "results": batch_results_to_rows(results),
        }

    async def _answers(self, document: Mapping[str, Any]) -> dict:
        if "answer" in document:
            raise _BadRequest(
                "/answers enumerates all candidate tuples; "
                "use /estimate to score one answer"
            )
        requests, mode = _single_request(document, force_all_answers=True)
        results = await self._run(requests, mode)
        query = requests[0].query if requests else document.get("query")
        generator = requests[0].generator.name if requests else None
        return {
            "query": str(query),
            "generator": generator,
            "mode": mode,
            "answers": batch_results_to_rows(results),
        }

    async def _run(
        self, requests: list[BatchRequest], mode: str
    ) -> list[BatchResult]:
        """Fan one parsed request list out per group and reassemble."""
        groups: dict[tuple, list[tuple[int, BatchRequest]]] = {}
        for position, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append((position, request))
        submissions = [
            self.batcher.submit(
                members[0][1].database,
                members[0][1].constraints,
                members[0][1].generator,
                [request for _, request in members],
                mode,
            )
            for members in groups.values()
        ]
        chunks = await asyncio.gather(*submissions)
        results: list[BatchResult | None] = [None] * len(requests)
        for members, chunk in zip(groups.values(), chunks):
            for (position, _), outcome in zip(members, chunk):
                results[position] = outcome
        self.requests_served += len(requests)
        return results  # type: ignore[return-value]  # every slot is filled above


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    seed: int | None = None,
    cache_dir: str | None = None,
    backend: str = "auto",
    max_sessions: int | None = None,
    use_kernel: bool = True,
) -> int:
    """Run the estimation service until interrupted (the CLI entry point).

    Builds a :class:`SessionRegistry` from the arguments, binds, prints
    the served URL to stderr, and blocks.  Returns ``0`` on a clean
    ``KeyboardInterrupt`` shutdown (warm sessions are spilled to the
    cache store first).
    """
    registry = SessionRegistry(
        seed=seed,
        cache_dir=cache_dir,
        backend=backend,
        use_kernel=use_kernel,
        max_sessions=DEFAULT_MAX_SESSIONS if max_sessions is None else max_sessions,
    )

    async def _main() -> None:
        server = EstimationServer(registry, host=host, port=port)
        bound_host, bound_port = await server.start()
        print(
            f"repro estimation service on http://{bound_host}:{bound_port} "
            f"(seed={seed}, backend={backend}, "
            f"cache_dir={cache_dir}, max_sessions={registry.max_sessions})",
            file=sys.stderr,
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


class BackgroundServer:
    """An :class:`EstimationServer` on a daemon thread, for embedding.

    The harness tests, the E27 bench and the CI smoke job all use this:
    ``with BackgroundServer(seed=7) as server:`` yields a bound server
    (ephemeral port by default) whose :attr:`url` a
    :class:`~repro.service.client.ServiceClient` can hit from any
    thread; exiting stops the loop and spills warm sessions.
    """

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        **registry_options,
    ):
        if registry is not None and registry_options:
            raise TypeError("pass a registry or registry options, not both")
        self.registry = (
            registry if registry is not None else SessionRegistry(**registry_options)
        )
        self.server = EstimationServer(self.registry, host=host, port=port)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "EstimationServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.server

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.server.stop()

        asyncio.run(_main())
