"""The estimation HTTP server: a stdlib-only asyncio JSON API, hardened.

Endpoints (request/response JSON specified in ``docs/FORMATS.md``):

* ``POST /estimate`` — a workload-shaped document (``instances`` +
  ``requests`` + optional ``mode``/``defaults``, the exact
  ``python -m repro batch`` format with *inline* instance documents) or
  a single-request document (``instance`` + ``query`` + optional
  ``generator``/``answer``/``answers``/``epsilon``/``delta``/
  ``method``/``max_samples``/``mode``/``label``); responds with
  ``{"mode": ..., "results": [row, ...]}`` in request order, each row in
  the ``batch --json`` schema (scope errors are *rows*, not HTTP
  errors).
* ``POST /answers`` — single-request shape without ``answer``; expands
  every candidate tuple of ``Q(D)`` (the workload format's
  ``"answers": "all"``) and responds ``{"answers": [row, ...]}``.
* ``GET /healthz`` — liveness + session count.
* ``GET /stats`` — registry, micro-batcher, answer-cache and server
  counters as one JSON document.
* ``GET /metrics`` — the same operational signals in Prometheus text
  exposition format (:mod:`repro.service.metrics`).

Operational hardening (PR 7):

* **Backpressure** — the micro-batcher's queues are bounded
  (``max_queue`` per group, ``max_pending`` total); a request that
  would exceed them is refused with ``429`` and a ``Retry-After``
  header *before* any work is enqueued, so saturation degrades into
  fast rejections instead of unbounded queueing.
* **Deadline budgets** — a per-request ``budget_seconds`` document
  field (``408`` on expiry) and a server-wide ``default_budget``
  (``504``); expiry cancels the request's queued work, so a timed-out
  request stops consuming capacity.
* **Answer cache** — a digest-verified LRU of served result rows
  (:class:`~repro.service.cache.AnswerCache`) keyed by everything that
  determines a row; hits bypass the batcher entirely.  Seeded servers
  only — unseeded estimates are not reproducible, so they are never
  memoized.
* **Fault injection** (``fault_injection=True`` / ``serve
  --enable-fault-injection``) — a ``POST /_fault`` endpoint the
  load-test harness uses to slow handlers, poison cache entries, and
  (PR 9) inject disk faults — ``disk_enospc`` / ``disk_bitflip``
  install a persistent :mod:`repro.engine.fsfault` plan, and
  ``spill_sessions`` / ``drop_sessions`` exercise the store so the
  fault (and recovery) is observable immediately; absent (404) in
  normal operation.
* **Degraded-mode storage** (PR 9) — registry warm-start/spill
  failures are absorbed and accounted
  (``repro_store_errors_total{op,kind}``, ``repro_degraded_mode``,
  ``storage`` sections in ``/healthz`` and ``/stats``); a broken disk
  degrades the cache, never the answers.

Instance documents must be inline: the on-disk workload format's
"instance by file path" convenience is rejected here (a network service
must not read files named by its callers).

The server is deliberately minimal HTTP/1.1 — one request per
connection, ``Connection: close`` — because its job is to demonstrate
and exercise the service plane (registry + micro-batching) with zero
dependencies, not to replace a production front end; the concurrency
that matters (estimation) happens behind the event loop in coalesced
batches, where an idle keep-alive connection would buy nothing.
"""

from __future__ import annotations

import asyncio
import json
import signal as signal_module
import sys
import threading
import time
from typing import Any, Callable, Mapping

from ..engine import fsfault as _fsfault
from ..engine.batch import BatchRequest, BatchResult
from ..io import InstanceFormatError, batch_result_to_row, workload_from_dict
from .batching import MODES, MicroBatcher, QueueFull
from .cache import DEFAULT_ANSWER_CACHE_SIZE, AnswerCache
from .metrics import LATENCY_BUCKETS, WIDTH_BUCKETS, MetricsRegistry
from .registry import DEFAULT_MAX_SESSIONS, SessionRegistry
from .sharding import WorkerConfig, WorkerPool, aggregate_shard_stats

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Request bodies past this size are rejected (64 MiB — far above any
#: reasonable workload document, far below a memory-exhaustion payload).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: A connection must deliver its complete request within this window;
#: slow or truncated-then-silent senders are dropped instead of pinning
#: a reader task forever.
READ_TIMEOUT_SECONDS = 30.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request-row fields forwarded from a single-request document into the
#: wrapped workload row (everything else is server-side configuration).
_SINGLE_REQUEST_FIELDS = (
    "query",
    "generator",
    "answer",
    "answers",
    "epsilon",
    "delta",
    "method",
    "max_samples",
)


class _BadRequest(Exception):
    """A client error carried to the HTTP layer as a 400 row."""


class _ShuttingDown(Exception):
    """The server is draining for shutdown: queued work fails as 503.

    The graceful-shutdown contract: :meth:`EstimationServer.stop` first
    *drains* queued batch rounds, and only waiters that outlive the
    drain timeout are failed with this — never silently dropped (the
    pre-fix behavior when the loop closed under them).
    """


class _DeadlineExceeded(Exception):
    """A request budget expired: 408 (client budget) or 504 (server's)."""

    def __init__(self, status: int, budget: float):
        self.status = status
        self.budget = budget
        super().__init__(
            f"request budget of {budget:g}s exceeded; partial work cancelled"
        )


class _Response:
    """One rendered HTTP response (status, body, headers)."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Mapping[str, str] | None = None,
    ):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})


def _json_response(
    status: int, payload: Any, headers: Mapping[str, str] | None = None
) -> _Response:
    return _Response(
        status, json.dumps(payload).encode("utf-8"), headers=headers
    )


def _parse_body(body: bytes) -> Mapping[str, Any]:
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _BadRequest(f"request body is not valid JSON: {error}") from None
    if not isinstance(document, Mapping):
        raise _BadRequest("request body must be a JSON object")
    return document


def _reject_instance_paths(instances: Any) -> None:
    """The service never loads instances from server-side file paths."""
    if isinstance(instances, Mapping):
        for name, spec in instances.items():
            if not isinstance(spec, Mapping):
                raise _BadRequest(
                    f"instance {name!r} must be an inline instance document "
                    "(file paths are not served)"
                )


def _parse_mode(document: Mapping[str, Any]) -> str:
    mode = document.get("mode", "fixed")
    if mode not in MODES:
        raise _BadRequest(f"unknown mode {mode!r}; choose from {MODES}")
    return mode


def _estimate_requests(
    document: Mapping[str, Any],
) -> tuple[list[BatchRequest], str]:
    """Both ``/estimate`` body shapes → (requests, mode)."""
    if "requests" in document:
        _reject_instance_paths(document.get("instances"))
        try:
            return workload_from_dict(document), _parse_mode(document)
        except InstanceFormatError as error:
            raise _BadRequest(str(error)) from None
    return _single_request(document)


def _single_request(
    document: Mapping[str, Any], force_all_answers: bool = False
) -> tuple[list[BatchRequest], str]:
    """A single-request document, wrapped into the workload format."""
    instance = document.get("instance")
    if not isinstance(instance, Mapping):
        raise _BadRequest(
            "request needs an inline 'instance' document (or use the "
            "workload shape with 'instances' + 'requests')"
        )
    label = document.get("label", "request")
    if not isinstance(label, str):
        raise _BadRequest("'label' must be a string")
    row = {
        key: document[key] for key in _SINGLE_REQUEST_FIELDS if key in document
    }
    if force_all_answers:
        row.pop("answer", None)
        row["answers"] = "all"
    row["instance"] = label
    try:
        requests = workload_from_dict(
            {"instances": {label: instance}, "requests": [row]}
        )
    except InstanceFormatError as error:
        raise _BadRequest(str(error)) from None
    return requests, _parse_mode(document)


class EstimationServer:
    """The asyncio HTTP server over one registry + micro-batcher.

    Hardening knobs (all optional; ``None``/default = pre-hardening
    behavior): ``max_queue`` / ``max_pending`` bound the micro-batcher's
    queued requests per group / in total, ``default_budget`` is the
    server-wide deadline (seconds) applied to requests that bring no
    ``budget_seconds`` of their own, ``answer_cache_size`` sizes the
    memoized answer cache (0 disables it), and ``fault_injection``
    enables the ``POST /_fault`` test surface.

    ``workers=N`` (``serve --workers N``) switches the server into
    **sharded router mode**: estimation no longer runs in this process —
    a :class:`~repro.service.sharding.WorkerPool` of ``N`` warm worker
    processes (each with its own registry + micro-batcher, built from
    this server's configuration) executes groups routed by
    :func:`~repro.service.sharding.shard_for_key` over the registry key.
    The local registry then only derives keys and seeds (it never admits
    sessions), the answer cache and admission bounds stay router-side,
    and ``/stats`` / ``/metrics`` aggregate per-shard breakdowns under a
    ``shard`` label.  Results are bit-identical at any worker count —
    placement cannot matter because group seeds are content-derived.
    """

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        executor=None,
        max_queue: int | None = None,
        max_pending: int | None = None,
        max_inflight: int | None = None,
        default_budget: float | None = None,
        answer_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE,
        fault_injection: bool = False,
        workers: int | None = None,
    ):
        if default_budget is not None and default_budget <= 0:
            raise ValueError("default_budget must be positive (or None)")
        if answer_cache_size < 0:
            raise ValueError("answer_cache_size must be >= 0")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive (or None for in-process)")
        self.workers = workers or 0
        self.worker_pool: WorkerPool | None = None
        self._shard_snapshot: list[dict | None] = []
        self.registry = registry if registry is not None else SessionRegistry()
        self.metrics = MetricsRegistry()
        self._build_metrics()
        self.batcher = MicroBatcher(
            self.registry,
            executor=executor,
            max_queue=max_queue,
            max_pending=max_pending,
            on_batch=self._observe_batch,
        )
        self.default_budget = default_budget
        self.max_inflight = max_inflight
        self._inflight = 0
        self._connections: set[asyncio.Task] = set()
        self.answer_cache = (
            AnswerCache(answer_cache_size) if answer_cache_size else None
        )
        self.fault_injection = fault_injection
        self._faults: dict[str, float] = {
            "slow_seconds": 0.0,
            "disk_enospc": 0.0,
            "disk_bitflip": 0.0,
        }
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self.requests_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None

    # -- metrics -----------------------------------------------------------------------

    def _build_metrics(self) -> None:
        metrics = self.metrics
        self._m_requests = metrics.counter(
            "repro_requests_total",
            "HTTP requests handled, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self._m_request_seconds = metrics.histogram(
            "repro_request_seconds",
            "Wall-clock HTTP request handling latency in seconds, by "
            "endpoint and status (admitted latency is the status=200 series).",
            LATENCY_BUCKETS,
            ("endpoint", "status"),
        )
        self._m_batch_seconds = metrics.histogram(
            "repro_batch_seconds",
            "Coalesced batch execution latency in seconds, by group key prefix.",
            LATENCY_BUCKETS,
            ("group",),
        )
        self._m_batch_width = metrics.histogram(
            # Dimensionless by design (a request count, not a latency);
            # its _bucket/_count/_sum series are still counter-shaped and
            # the monotonicity checker covers them via those suffixes.
            "repro_batch_width",  # repro-lint: disable=RL005
            "Estimation requests coalesced into one batch pass.",
            WIDTH_BUCKETS,
        )
        self._m_rejected = metrics.counter(
            "repro_rejected_total",
            "Requests refused admission, by reason.",
            ("reason",),
        )
        metrics.counter(
            "repro_estimates_served_total",
            "Estimation request rows served (cache hits included).",
            callback=lambda: self.requests_served,
        )
        metrics.gauge(
            "repro_sessions",
            "Warm sessions currently held by the registry.",
            callback=lambda: len(self.registry.handles()),
        )
        metrics.counter(
            "repro_registry_hits_total",
            "Warm session registry hits.",
            callback=lambda: self.registry.hits,
        )
        metrics.counter(
            "repro_registry_misses_total",
            "Warm session registry misses (cold admissions).",
            callback=lambda: self.registry.misses,
        )
        metrics.counter(
            "repro_registry_evictions_total",
            "Warm sessions evicted from the registry LRU.",
            callback=lambda: self.registry.evictions,
        )
        # Store failures arrive from worker threads (spills, admissions),
        # so the labeled counter is driven by the registry log's listener
        # rather than a callback (labeled callbacks are not supported,
        # and the log already serializes recording).
        self._m_store_errors = metrics.counter(
            "repro_store_errors_total",
            "Cache-store failures absorbed into degraded mode, by "
            "operation (load/warm/spill/save) and kind.",
            ("op", "kind"),
        )
        self.registry.storage.listener = (
            lambda op, kind: self._m_store_errors.labels(op, kind).inc()
        )
        metrics.gauge(
            "repro_degraded_mode",
            "1 while the most recent cache-store interaction failed "
            "(this process or any shard), 0 otherwise.",
            callback=self._storage_degraded,
        )
        metrics.counter(
            "repro_answer_cache_hits_total",
            "Answer cache hits.",
            callback=lambda: self.answer_cache.hits if self.answer_cache else 0,
        )
        metrics.counter(
            "repro_answer_cache_misses_total",
            "Answer cache misses.",
            callback=lambda: self.answer_cache.misses if self.answer_cache else 0,
        )
        metrics.counter(
            "repro_answer_cache_poisoned_total",
            "Answer cache entries dropped after digest verification failed.",
            callback=lambda: self.answer_cache.poisoned if self.answer_cache else 0,
        )
        metrics.gauge(
            "repro_answer_cache_entries",
            "Answer cache entries currently held.",
            callback=lambda: len(self.answer_cache) if self.answer_cache else 0,
        )
        metrics.gauge(
            "repro_inflight_requests",
            "Estimation endpoint requests currently being handled.",
            callback=lambda: self._inflight,
        )
        metrics.gauge(
            "repro_pending_requests",
            "Estimation requests queued in the micro-batcher.",
            callback=lambda: self.batcher._pending_total,
        )
        # The loadtest harness uses this as the server-lifetime marker: a
        # decrease between scrapes means a restart, which legitimately
        # resets every counter above.
        metrics.gauge(
            "repro_uptime_seconds",
            "Seconds since this server process started serving.",
            callback=lambda: (
                0.0
                if self._started_at is None
                else time.monotonic() - self._started_at
            ),
        )
        if self.workers:
            # Per-shard breakdowns.  The restart counter is router-owned
            # (monotone across respawns); the per-shard registry/batcher
            # series are *gauges* because a respawned worker's counters
            # restart from zero — a labeled counter would violate the
            # monotonicity invariant the loadtest asserts.
            self._m_worker_restarts = metrics.counter(
                "repro_worker_restarts_total",
                "Worker processes respawned after dying, by shard.",
                ("shard",),
            )
            metrics.gauge(
                "repro_shard_workers",
                "Configured worker shard count.",
                callback=lambda: self.workers,
            )
            for name, help_text, section, field in (
                (
                    "repro_shard_sessions",
                    "Warm sessions held per shard registry.",
                    "registry",
                    "sessions",
                ),
                (
                    "repro_shard_registry_hits",
                    "Registry hits per shard (resets on respawn).",
                    "registry",
                    "hits",
                ),
                (
                    "repro_shard_registry_misses",
                    "Registry misses per shard (resets on respawn).",
                    "registry",
                    "misses",
                ),
                (
                    "repro_shard_store_errors",
                    "Cache-store failures per shard registry (resets on respawn).",
                    "registry",
                    "store_errors",
                ),
                (
                    "repro_shard_pending_requests",
                    "Micro-batcher queued requests per shard.",
                    "batching",
                    "pending_requests",
                ),
                (
                    "repro_shard_batches_run",
                    "Coalesced batches executed per shard (resets on respawn).",
                    "batching",
                    "batches_run",
                ),
            ):
                metrics.gauge(
                    name,
                    help_text,
                    callback=self._shard_gauge(section, field),
                    labelnames=("shard",),
                )

    def _shard_gauge(self, section: str, field: str):
        """A labeled-gauge callback reading the latest shard snapshot.

        The snapshot refreshes on every ``/stats`` and ``/metrics``
        request (see :meth:`_refresh_shards`) — gauge callbacks must not
        await, so rendering reads the cached documents.
        """

        def read() -> dict[str, float]:
            series: dict[str, float] = {}
            for entry in self._shard_snapshot:
                if not entry or not entry.get(section):
                    continue
                series[str(entry.get("shard"))] = entry[section].get(field, 0)
            return series

        return read

    def _storage_degraded(self) -> int:
        """1 while any registry's last store interaction failed.

        Covers the in-process registry and — in sharded mode — the most
        recent shard snapshot (refreshed on every ``/stats`` and
        ``/metrics`` request, so scraping keeps it current).
        """
        if self.registry.storage.degraded:
            return 1
        for entry in self._shard_snapshot:
            if entry and (entry.get("registry") or {}).get("degraded"):
                return 1
        return 0

    def _observe_batch(self, key: str, seconds: float, width: int) -> None:
        self._m_batch_seconds.labels(key[:12]).observe(seconds)
        self._m_batch_width.observe(width)

    # -- lifecycle ---------------------------------------------------------------------

    def _worker_config(self) -> WorkerConfig:
        """The picklable recipe each shard builds its own plane from."""
        registry = self.registry
        return WorkerConfig(
            seed=registry.seed,
            cache_dir=None if registry.store is None else registry.store.directory,
            backend=registry.backend,
            use_kernel=registry.use_kernel,
            max_sessions=registry.max_sessions,
            max_queue=self.batcher.max_queue,
            max_pending=self.batcher.max_pending,
        )

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns ``(host, port)`` actually bound
        (``port=0`` picks an ephemeral port)."""
        if self.workers and self.worker_pool is None:
            self.worker_pool = WorkerPool(
                self._worker_config(),
                self.workers,
                on_restart=lambda shard: self._m_worker_restarts.labels(
                    str(shard)
                ).inc(),
            )
            await self.worker_pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._started_at = time.monotonic()
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (:meth:`start` must have run)."""
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain queued work, then spill warm sessions.

        The graceful-shutdown order: close the listener (no new
        requests), give queued micro-batcher rounds ``drain_timeout``
        seconds to complete, fail whatever remains with a clean 503
        (never a silent drop), stop the worker pool (which SIGTERM-drains
        each shard), and finally spill the registry to the cache store.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self.batcher.drain(), drain_timeout)
        except asyncio.TimeoutError:
            pass
        self.batcher.fail_pending(
            _ShuttingDown("server shutting down; request was not executed")
        )
        # Connection handlers may still be mid-request (e.g. a handler
        # that had not reached the batcher when it drained); let them
        # finish writing their responses before the engine goes away.
        pending = {task for task in self._connections if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout)
        if self.worker_pool is not None:
            await self.worker_pool.stop()
            self.worker_pool = None
        # Spilling walks session locks — keep it off the event loop.
        await asyncio.get_running_loop().run_in_executor(None, self.registry.close)

    @property
    def url(self) -> str:
        """The served base URL (after :meth:`start`)."""
        if self.address is None:
            raise RuntimeError("server not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- HTTP plumbing -----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            response = await asyncio.wait_for(
                self._handle_request(reader), READ_TIMEOUT_SECONDS
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            asyncio.LimitOverrunError,
            ValueError,  # readline() wraps over-long header lines in this
        ):
            writer.close()
            return
        # ``Exception`` (not ``BaseException``) by contract: CrashPoint
        # sails through this backstop exactly like SIGKILL would.
        except Exception as error:  # pragma: no cover  # repro-lint: disable=RL003
            response = _json_response(500, {"error": f"internal error: {error}"})
        head_lines = [
            f"HTTP/1.1 {response.status} {_STATUS_TEXT.get(response.status, 'Error')}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        head_lines.extend(f"{name}: {value}" for name, value in response.headers.items())
        head_lines.append("Connection: close")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("ascii")
        try:
            writer.write(head + response.body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client gone
            pass

    async def _handle_request(self, reader) -> _Response:
        # The whole head arrives in one readuntil: under a rejection
        # flood every await is an event-loop round trip, and a
        # line-by-line header loop costs ~10 of them per connection.
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial.strip():
                raise ConnectionError("empty request") from None
            raise
        lines = head.decode("latin-1").split("\r\n")
        request_line = lines[0].strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return self._finish(
                "other",
                _json_response(400, {"error": f"malformed request line {request_line!r}"}),
                time.perf_counter(),
            )
        method, target, _ = parts
        path = target.split("?", 1)[0]
        started = time.perf_counter()
        length = 0
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = -1
                if length < 0:
                    return self._finish(
                        self._endpoint_label(path),
                        _json_response(400, {"error": "malformed Content-Length"}),
                        started,
                    )
        if length > MAX_BODY_BYTES:
            return self._finish(
                self._endpoint_label(path),
                _json_response(
                    413, {"error": f"request body over {MAX_BODY_BYTES} bytes"}
                ),
                started,
            )
        body = await reader.readexactly(length) if length else b""
        response = await self._dispatch(method, path, body)
        return self._finish(self._endpoint_label(path), response, started)

    def _endpoint_label(self, path: str) -> str:
        """Known route paths verbatim; everything else pooled (bounded
        label cardinality — callers must not mint metric series)."""
        return path if path in self._routes() else "other"

    def _finish(self, endpoint: str, response: _Response, started: float) -> _Response:
        self._m_requests.labels(endpoint, str(response.status)).inc()
        self._m_request_seconds.labels(endpoint, str(response.status)).observe(
            time.perf_counter() - started
        )
        return response

    # -- routing -----------------------------------------------------------------------

    def _routes(self) -> dict[str, tuple[str, Callable]]:
        routes = {
            "/healthz": ("GET", self._healthz),
            "/stats": ("GET", self._stats),
            "/metrics": ("GET", self._metrics_endpoint),
            "/estimate": ("POST", self._estimate),
            "/answers": ("POST", self._answers),
        }
        if self.fault_injection:
            routes["/_fault"] = ("POST", self._fault)
        return routes

    async def _dispatch(self, method: str, path: str, body: bytes) -> _Response:
        routes = self._routes()
        route = routes.get(path)
        if route is None:
            return _json_response(
                404, {"error": f"unknown path {path!r}", "paths": sorted(routes)}
            )
        expected, endpoint = route
        if method != expected:
            return _json_response(405, {"error": f"{path} expects {expected}"})
        try:
            if expected == "GET":
                result = endpoint()
                if asyncio.iscoroutine(result):
                    # Sharded monitoring endpoints poll the workers.
                    result = await result
            elif path in ("/estimate", "/answers"):
                result = await self._admit_request(endpoint, body)
            else:
                result = await endpoint(_parse_body(body))
        except _BadRequest as error:
            return _json_response(400, {"error": str(error)})
        except _ShuttingDown as error:
            return _json_response(503, {"error": str(error)})
        except QueueFull as error:
            self._m_rejected.labels("queue_full").inc()
            return _json_response(
                429,
                {
                    "error": str(error),
                    "retry_after_seconds": error.retry_after,
                },
                headers={"Retry-After": str(error.retry_after)},
            )
        except _DeadlineExceeded as error:
            return _json_response(error.status, {"error": str(error)})
        if isinstance(result, _Response):
            return result
        return _json_response(200, result)

    async def _admit_request(self, endpoint, body: bytes):
        """Run one estimation endpoint under the ``max_inflight`` bound.

        Body parsing, instance construction, and cache-key hashing all
        run on the event loop, so *connection-level* concurrency — not
        just the batcher queue — needs an admission bound: without one,
        every concurrent request waits behind the CPU work of all the
        others (head-of-line blocking the batcher bounds cannot see).
        The check runs *before* the body is parsed, so a rejected
        request costs almost nothing.  Single-threaded event loop, so
        the counter needs no lock.
        """
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            raise QueueFull(
                "inflight",
                self._inflight,
                self.max_inflight,
                self.batcher.retry_after_hint(self._inflight),
            )
        self._inflight += 1
        try:
            return await endpoint(_parse_body(body))
        finally:
            self._inflight -= 1

    # -- monitoring endpoints ----------------------------------------------------------

    def _healthz(self) -> dict:
        # Degraded storage does not fail liveness: the whole point of
        # degraded mode is that the service keeps answering (by
        # recomputing) while the disk is broken.
        storage = self.registry.storage.snapshot()
        document = {
            "status": "ok",
            "sessions": len(self.registry.handles()),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "storage": {
                "degraded": bool(self._storage_degraded()),
                "store_errors": storage["total"],
                "last_error": storage["last_error"],
            },
        }
        if self.workers:
            document["workers"] = self._workers_document()
        return document

    def _workers_document(self) -> dict:
        """Pool size + per-shard liveness (no IPC: ``Process.is_alive``)."""
        document = {"count": self.workers}
        if self.worker_pool is not None:
            document["alive"] = [
                self.worker_pool.alive(shard) for shard in range(self.workers)
            ]
        return document

    async def _refresh_shards(self) -> list[dict | None]:
        """Poll the worker pool and cache the per-shard stat documents
        (the cached snapshot also feeds the labeled shard gauges)."""
        self._shard_snapshot = await self.worker_pool.stats()
        return self._shard_snapshot

    def _stats(self):
        if self.worker_pool is not None:
            return self._stats_sharded()
        return self._stats_document(None)

    async def _stats_sharded(self) -> dict:
        return self._stats_document(await self._refresh_shards())

    def _stats_document(self, per_shard: list[dict | None] | None) -> dict:
        registry_stats = self.registry.stats()
        batching_stats = self.batcher.stats()
        if per_shard is not None:
            # Router mode: the local registry/batcher never execute, so
            # the meaningful totals are the shard aggregates (the sum
            # contract is pinned by tests over aggregate_shard_stats).
            aggregated = aggregate_shard_stats(per_shard)
            registry_stats = {**registry_stats, **aggregated["registry"]}
            batching_stats = {**batching_stats, **aggregated["batching"]}
            # "degraded" is a level, not a counter — fold with OR, not sum.
            registry_stats["degraded"] = bool(self._storage_degraded())
        document = {
            "requests_served": self.requests_served,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "default_budget": self.default_budget,
            "max_inflight": self.max_inflight,
            "inflight": self._inflight,
            "registry": registry_stats,
            "batching": batching_stats,
            "answer_cache": (
                self.answer_cache.stats() if self.answer_cache else None
            ),
        }
        if per_shard is not None:
            document["workers"] = self._workers_document()
            document["shards"] = [entry or {} for entry in per_shard]
        if self.fault_injection:
            document["faults"] = dict(self._faults)
        return document

    def _metrics_endpoint(self):
        if self.worker_pool is not None:
            return self._metrics_sharded()
        return self._metrics_response()

    async def _metrics_sharded(self) -> _Response:
        await self._refresh_shards()
        return self._metrics_response()

    def _metrics_response(self) -> _Response:
        return _Response(
            200,
            self.metrics.render().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- fault injection (test surface) ------------------------------------------------

    def _apply_disk_faults(self) -> None:
        """Install (or clear) the fsfault shim matching ``self._faults``.

        One combined plan: ``disk_enospc`` fails every store write with
        ``ENOSPC``; ``disk_bitflip`` flips one seeded bit per store read.
        Both off restores the passthrough shim.
        """
        enospc = bool(self._faults["disk_enospc"])
        bitflip = int(self._faults["disk_bitflip"])
        if not enospc and not bitflip:
            _fsfault.reset()
            return
        _fsfault.install(
            _fsfault.FaultyOps(
                _fsfault.FaultPlan(
                    write_enospc=enospc,
                    bitflip_seed=bitflip if bitflip else None,
                )
            )
        )

    async def _fault(self, document: Mapping[str, Any]) -> dict:
        """Inject operational faults (only routed with ``fault_injection``)."""
        report: dict[str, Any] = {}
        if document.get("reset"):
            self._faults["slow_seconds"] = 0.0
            self._faults["disk_enospc"] = 0.0
            self._faults["disk_bitflip"] = 0.0
            self._apply_disk_faults()
            report["reset"] = True
        if "slow_seconds" in document:
            value = document["slow_seconds"]
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise _BadRequest("'slow_seconds' must be a non-negative number")
            self._faults["slow_seconds"] = float(value)
        if "disk_enospc" in document or "disk_bitflip" in document:
            if self.worker_pool is not None:
                # The shim is process-local; in sharded mode the store
                # lives in the workers, where it would silently miss.
                raise _BadRequest(
                    "disk faults require in-process mode (no --workers)"
                )
            if "disk_enospc" in document:
                value = document["disk_enospc"]
                if not isinstance(value, bool):
                    raise _BadRequest("'disk_enospc' must be a boolean")
                self._faults["disk_enospc"] = float(value)
            if "disk_bitflip" in document:
                value = document["disk_bitflip"]
                if value is True:
                    value = 1
                if value is False:
                    value = 0
                if not isinstance(value, int) or value < 0:
                    raise _BadRequest(
                        "'disk_bitflip' must be a boolean or a positive "
                        "integer seed (0/false clears it)"
                    )
                self._faults["disk_bitflip"] = float(value)
            self._apply_disk_faults()
        if document.get("poison_cache"):
            if self.answer_cache is None:
                raise _BadRequest("answer cache is disabled; nothing to poison")
            count = document.get("poison_count")
            if count is not None and (not isinstance(count, int) or count < 0):
                raise _BadRequest("'poison_count' must be a non-negative integer")
            report["poisoned_entries"] = self.answer_cache.poison(count)
        if "kill_worker" in document:
            shard = document["kill_worker"]
            if self.worker_pool is None:
                raise _BadRequest("'kill_worker' requires sharded mode (--workers)")
            if (
                not isinstance(shard, int)
                or isinstance(shard, bool)
                or not 0 <= shard < self.workers
            ):
                raise _BadRequest(
                    f"'kill_worker' must be a shard index in [0, {self.workers})"
                )
            report["killed_worker"] = shard
            report["killed_pid"] = self.worker_pool.kill(shard)
        if document.get("spill_sessions"):
            # Exercise the store now (after any disk-fault change above),
            # so injected failures — and recovery — surface immediately
            # instead of waiting for organic eviction traffic.  Spilling
            # walks session locks: keep it off the event loop.
            report["spilled_sessions"] = await asyncio.get_running_loop(
            ).run_in_executor(None, self.registry.spill_all)
        if document.get("drop_sessions"):
            # Force the next request per group to re-admit from disk
            # (warm-start reads then run under any injected read fault).
            report["dropped_sessions"] = self.registry.drop_sessions()
        report["faults"] = dict(self._faults)
        return report

    # -- estimation endpoints ----------------------------------------------------------

    def _budget_for(self, document: Mapping[str, Any]) -> tuple[float | None, int]:
        """``(budget seconds or None, status on expiry)`` for a document.

        A client-supplied ``budget_seconds`` expires as 408 (the client
        asked for the deadline); the server-wide ``default_budget``
        expires as 504.  A client budget is capped by the server's.
        """
        raw = document.get("budget_seconds")
        if raw is None:
            return self.default_budget, 504
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
            raise _BadRequest("'budget_seconds' must be a positive number")
        budget = float(raw)
        if self.default_budget is not None:
            budget = min(budget, self.default_budget)
        return budget, 408

    async def _with_budget(self, document: Mapping[str, Any], work):
        """Run ``work()`` under the document's deadline budget.

        Expiry cancels the awaited work — queued micro-batcher waiters
        are dropped before execution (see ``batching._pop_round``), so a
        timed-out request stops consuming capacity.
        """
        budget, status = self._budget_for(document)
        delay = self._faults["slow_seconds"]

        async def timed():
            if delay:
                await asyncio.sleep(delay)
            return await work()

        if budget is None:
            return await timed()
        try:
            return await asyncio.wait_for(timed(), budget)
        except asyncio.TimeoutError:
            self._m_rejected.labels("deadline").inc()
            raise _DeadlineExceeded(status, budget) from None

    async def _estimate(self, document: Mapping[str, Any]) -> dict:
        requests, mode = _estimate_requests(document)
        rows = await self._with_budget(
            document, lambda: self._run_rows(requests, mode)
        )
        return {"mode": mode, "count": len(rows), "results": rows}

    async def _answers(self, document: Mapping[str, Any]) -> dict:
        if "answer" in document:
            raise _BadRequest(
                "/answers enumerates all candidate tuples; "
                "use /estimate to score one answer"
            )
        requests, mode = _single_request(document, force_all_answers=True)
        rows = await self._with_budget(
            document, lambda: self._run_rows(requests, mode)
        )
        query = requests[0].query if requests else document.get("query")
        generator = requests[0].generator.name if requests else None
        return {
            "query": str(query),
            "generator": generator,
            "mode": mode,
            "answers": rows,
        }

    # -- execution ---------------------------------------------------------------------

    def _cache_key(self, request: BatchRequest, mode: str) -> tuple:
        """Everything that determines a served row, hashable."""
        return (
            self.registry.key_for(
                request.database, request.constraints, request.generator
            ),
            request.query,
            request.answer,
            request.epsilon,
            request.delta,
            request.method,
            request.max_samples,
            request.label,
            mode,
            self.registry.backend,
        )

    async def _run_rows(
        self, requests: list[BatchRequest], mode: str
    ) -> list[dict]:
        """Serve every request as a JSON row: answer cache, then batcher."""
        rows: list[dict | None] = [None] * len(requests)
        use_cache = self.answer_cache is not None and self.registry.seed is not None
        keys: list[tuple | None] = [None] * len(requests)
        pending: list[tuple[int, BatchRequest]] = []
        if use_cache:
            for position, request in enumerate(requests):
                keys[position] = self._cache_key(request, mode)
                cached = self.answer_cache.get(keys[position])
                if cached is not None:
                    rows[position] = cached
                else:
                    pending.append((position, request))
        else:
            pending = list(enumerate(requests))
        if pending:
            outcomes = await self._run([request for _, request in pending], mode)
            for (position, _), outcome in zip(pending, outcomes):
                row = batch_result_to_row(outcome)
                rows[position] = row
                if use_cache:
                    self.answer_cache.put(keys[position], row)
        self.requests_served += len(requests)
        return rows  # type: ignore[return-value]  # every slot is filled above

    async def _run(
        self, requests: list[BatchRequest], mode: str
    ) -> list[BatchResult]:
        """Fan one parsed request list out per group and reassemble.

        In-process mode submits each group to the local micro-batcher;
        sharded mode routes each group to its worker (one ``estimate``
        frame per group — coalescing then happens inside the shard's own
        batcher).  Either way results come back in request order.
        """
        groups: dict[tuple, list[tuple[int, BatchRequest]]] = {}
        for position, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append((position, request))
        if self.worker_pool is not None:
            submissions = [
                self.worker_pool.submit(
                    self.registry.key_for(
                        members[0][1].database,
                        members[0][1].constraints,
                        members[0][1].generator,
                    ),
                    members[0][1].database,
                    members[0][1].constraints,
                    members[0][1].generator,
                    [request for _, request in members],
                    mode,
                )
                for members in groups.values()
            ]
        else:
            submissions = [
                self.batcher.submit(
                    members[0][1].database,
                    members[0][1].constraints,
                    members[0][1].generator,
                    [request for _, request in members],
                    mode,
                )
                for members in groups.values()
            ]
        chunks = await asyncio.gather(*submissions)
        results: list[BatchResult | None] = [None] * len(requests)
        for members, chunk in zip(groups.values(), chunks):
            for (position, _), outcome in zip(members, chunk):
                results[position] = outcome
        return results  # type: ignore[return-value]  # every slot is filled above


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    seed: int | None = None,
    cache_dir: str | None = None,
    backend: str = "auto",
    max_sessions: int | None = None,
    use_kernel: bool = True,
    max_queue: int | None = None,
    max_pending: int | None = None,
    max_inflight: int | None = None,
    default_budget: float | None = None,
    answer_cache_size: int | None = None,
    fault_injection: bool = False,
    workers: int | None = None,
) -> int:
    """Run the estimation service until interrupted (the CLI entry point).

    Builds a :class:`SessionRegistry` from the arguments, binds, prints
    the served URL to stderr, and blocks.  ``workers=N`` runs the
    sharded multi-process plane (one warm registry per shard; see
    :class:`EstimationServer`).  SIGTERM and SIGINT both shut down
    gracefully: queued batch waiters are drained (or failed with a clean
    503 past the drain timeout) and warm sessions are spilled to the
    cache store before the loop closes — in both single-process and
    sharded modes.  Returns ``0`` on clean shutdown.
    """
    # A mixed IO/CPU process: under a request flood the event-loop
    # thread would otherwise keep the GIL for the default 5 ms switch
    # interval while an executor thread sits mid-batch — measured to
    # inflate a ~0.1 ms batch to ~3 ms wall and admitted tail latency
    # by 10x.  A finer interval trades a sliver of throughput for
    # bounded tails; process-wide, so set only in this CLI entry point.
    sys.setswitchinterval(0.001)
    registry = SessionRegistry(
        seed=seed,
        cache_dir=cache_dir,
        backend=backend,
        use_kernel=use_kernel,
        max_sessions=DEFAULT_MAX_SESSIONS if max_sessions is None else max_sessions,
    )

    async def _main() -> None:
        server = EstimationServer(
            registry,
            host=host,
            port=port,
            max_queue=max_queue,
            max_pending=max_pending,
            max_inflight=max_inflight,
            default_budget=default_budget,
            answer_cache_size=(
                DEFAULT_ANSWER_CACHE_SIZE
                if answer_cache_size is None
                else answer_cache_size
            ),
            fault_injection=fault_injection,
            workers=workers,
        )
        bound_host, bound_port = await server.start()
        print(
            f"repro estimation service on http://{bound_host}:{bound_port} "
            f"(seed={seed}, backend={backend}, "
            f"cache_dir={cache_dir}, max_sessions={registry.max_sessions}, "
            f"workers={server.workers or 1})",
            file=sys.stderr,
            flush=True,
        )
        # Graceful shutdown: both signals set the stop event, letting
        # stop() drain queued waiters instead of the loop tearing down
        # underneath them (the pre-fix silent-drop bug).
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[int] = []
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-posix loops fall back to KeyboardInterrupt
        try:
            await stop_event.wait()
            print("shutting down", file=sys.stderr, flush=True)
        except asyncio.CancelledError:
            pass
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


class BackgroundServer:
    """An :class:`EstimationServer` on a daemon thread, for embedding.

    The harness tests, the E27/E29 benches and the CI smoke jobs all use
    this: ``with BackgroundServer(seed=7) as server:`` yields a bound
    server (ephemeral port by default) whose :attr:`url` a
    :class:`~repro.service.client.ServiceClient` can hit from any
    thread; exiting stops the loop and spills warm sessions.
    ``server_options`` forwards hardening knobs (``max_queue``,
    ``max_pending``, ``default_budget``, ``answer_cache_size``,
    ``fault_injection``, ``workers`` — sharded mode works embedded too)
    to the :class:`EstimationServer`.
    """

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        server_options: Mapping[str, Any] | None = None,
        **registry_options,
    ):
        if registry is not None and registry_options:
            raise TypeError("pass a registry or registry options, not both")
        self.registry = (
            registry if registry is not None else SessionRegistry(**registry_options)
        )
        self.server = EstimationServer(
            self.registry, host=host, port=port, **dict(server_options or {})
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "EstimationServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.server

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            # Captured, not swallowed: ``__enter__`` re-raises this on
            # the entering thread (see ``raise self._startup_error``).
            except BaseException as error:  # repro-lint: disable=RL003
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.server.stop()

        asyncio.run(_main())
