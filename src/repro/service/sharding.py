"""Sharded service plane: one warm registry per core behind a router.

The single-process server tops out at roughly one core: micro-batching
amortizes Python overhead but every batch still executes under the GIL.
PR 5's content-derived group seeds (:func:`~repro.engine.batch.group_seed_for`
over :func:`~repro.engine.store.instance_cache_key`) make *placement
irrelevant to results* — any process that evaluates a group produces the
same seeded sample stream — so scale-out reduces to routing.

This module supplies the pieces:

* :func:`shard_for_key` — rendezvous (highest-random-weight) hashing of
  a registry key to a shard.  Rendezvous hashing gives the stability
  property the tests pin down: growing ``n → n + 1`` workers remaps only
  the keys that land on the *new* shard, and removing a shard remaps
  only that shard's keys — every other placement is untouched, so warm
  sessions survive resizes.
* :class:`WorkerConfig` — the picklable recipe for one worker's
  :class:`~repro.service.registry.SessionRegistry` +
  :class:`~repro.service.batching.MicroBatcher`.
* :class:`WorkerPool` — the router half: spawns one warm worker process
  per shard, speaks a length-prefixed frame protocol over duplex pipes,
  respawns dead workers (re-warming their keys from the shared cache
  store and transparently retrying in-flight frames), and aggregates
  per-shard stats.
* :func:`aggregate_shard_stats` — the pure sum/max fold the server uses
  for ``GET /stats`` totals (unit-tested: sum over shards == totals).

**Protocol.**  Frames are pickled ``(request_id, kind, payload)`` tuples
over ``multiprocessing.Pipe`` connections — ``send_bytes`` writes a
length-prefixed packet, so framing is inherent.  Router→worker kinds:
``estimate`` (one instance group per frame), ``warm`` (admit a group
without scoring), ``stats``, ``shutdown``.  Worker→router statuses:
``result``, ``queue_full`` (re-raised as
:class:`~repro.service.batching.QueueFull` router-side so 429/Retry-After
semantics are shard-transparent), ``error``, ``stats``, ``ok``.

**Start method.**  Workers always spawn (the server process runs
threads; forking a threaded process can deadlock — the same policy as
``engine/batch.py``) unless ``REPRO_UOCQA_START_METHOD`` explicitly
overrides.

**Crash transparency.**  Estimates are deterministic and idempotent
(every request reads its group pool from position zero), so the router
may retry a dead worker's in-flight frames on the respawned process
without changing any result — a mid-storm ``SIGKILL`` is invisible in
served rows, which is what the kill/respawn bit-identity tests assert.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import os
import pickle
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from .batching import MicroBatcher, QueueFull
from .registry import DEFAULT_MAX_SESSIONS, SessionRegistry

__all__ = [
    "WorkerConfig",
    "WorkerPool",
    "aggregate_shard_stats",
    "shard_for_key",
]

#: Registry stat keys summed across shards by :func:`aggregate_shard_stats`.
_REGISTRY_SUM_KEYS = ("sessions", "hits", "misses", "evictions", "store_errors")
#: Batcher stat keys summed across shards.
_BATCHING_SUM_KEYS = (
    "batches_run",
    "coalesced_batches",
    "pending_requests",
    "rejected",
    "cancelled_waiters",
)
#: Batcher stat keys folded with ``max`` (a width is not additive).
_BATCHING_MAX_KEYS = ("widest_batch",)

#: In-flight frames are retried at most this many times across respawns
#: before failing the caller (a worker that dies twice on the same frame
#: is likely being killed *by* it).
_MAX_RETRIES = 2


def shard_for_key(key: str, shards: int) -> int:
    """Rendezvous-hash a registry key to a shard in ``range(shards)``.

    Each ``(key, shard)`` pair gets an independent SHA-256 weight and
    the key goes to the argmax — the classic highest-random-weight
    scheme.  Placement is a pure function of the key and the shard
    *count*, and resizing moves only the minimal set of keys (see the
    module docstring); both properties are pinned by hypothesis tests.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if shards == 1:
        return 0
    encoded = key.encode("utf-8")
    best_shard = 0
    best_weight = b""
    for shard in range(shards):
        weight = hashlib.sha256(encoded + b"|" + str(shard).encode()).digest()
        if weight > best_weight:
            best_weight = weight
            best_shard = shard
    return best_shard


def aggregate_shard_stats(per_shard: Iterable[Mapping | None]) -> dict:
    """Fold per-shard stat documents into registry/batching totals.

    Counters are summed, ``widest_batch`` is folded with ``max``, and
    shards that failed to report (``None`` entries, or entries without a
    ``registry`` section — e.g. mid-respawn) are skipped but counted in
    ``"unreported"``.  Pure and synchronous so the aggregation contract
    (sum over shards == totals) is unit-testable without processes.
    """
    registry_totals = {key: 0 for key in _REGISTRY_SUM_KEYS}
    batching_totals = {key: 0 for key in _BATCHING_SUM_KEYS}
    for key in _BATCHING_MAX_KEYS:
        batching_totals[key] = 0
    reported = 0
    unreported = 0
    for entry in per_shard:
        if not entry or not entry.get("registry"):
            unreported += 1
            continue
        reported += 1
        registry = entry["registry"]
        batching = entry.get("batching") or {}
        for key in _REGISTRY_SUM_KEYS:
            registry_totals[key] += registry.get(key, 0)
        for key in _BATCHING_SUM_KEYS:
            batching_totals[key] += batching.get(key, 0)
        for key in _BATCHING_MAX_KEYS:
            batching_totals[key] = max(batching_totals[key], batching.get(key, 0))
    return {
        "shards": reported,
        "unreported": unreported,
        "registry": registry_totals,
        "batching": batching_totals,
    }


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its registry + batcher.

    Plain picklable fields only — the config crosses the spawn boundary.
    ``shared_pools`` defaults on: worker vector pools live in
    :class:`~repro.sampling.vectorized.SharedSampleSegment` matrices so
    the store (and future readers) see sample rows zero-copy.
    """

    seed: int | None = None
    cache_dir: str | None = None
    backend: str = "auto"
    use_kernel: bool = True
    max_sessions: int = DEFAULT_MAX_SESSIONS
    max_queue: int | None = None
    max_pending: int | None = None
    shared_pools: bool = True
    start_method: str | None = None


class WorkerDied(RuntimeError):
    """An estimate could not be completed: its worker kept dying."""


# --------------------------------------------------------------------------------------
# Worker side (runs in the spawned child process)
# --------------------------------------------------------------------------------------


def _worker_main(shard: int, conn, config: WorkerConfig) -> None:
    """Child-process entry point: serve frames until shutdown/SIGTERM.

    The worker ignores SIGINT (the router's terminal Ctrl-C reaches the
    whole process group; shutdown is the router's call) and treats
    SIGTERM as a graceful-drain request: in-flight batches complete and
    the registry spills before exit.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_worker_loop(shard, conn, config))
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover - exit races
        pass


async def _worker_loop(shard: int, conn, config: WorkerConfig) -> None:
    loop = asyncio.get_running_loop()
    registry = SessionRegistry(
        seed=config.seed,
        cache_dir=config.cache_dir,
        backend=config.backend,
        use_kernel=config.use_kernel,
        max_sessions=config.max_sessions,
        shared_pools=config.shared_pools,
    )
    batcher = MicroBatcher(
        registry, max_queue=config.max_queue, max_pending=config.max_pending
    )
    frames: asyncio.Queue = asyncio.Queue()
    send_lock = threading.Lock()

    def send(frame) -> None:
        blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        with send_lock:
            conn.send_bytes(blob)

    def read_frames() -> None:
        # Blocking pipe reads stay off the loop; EOF (router gone) and a
        # local shutdown sentinel both funnel through the same queue.
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(frames.put_nowait, None)
                return
            loop.call_soon_threadsafe(frames.put_nowait, blob)

    threading.Thread(
        target=read_frames, name=f"repro-shard-{shard}-reader", daemon=True
    ).start()
    try:
        loop.add_signal_handler(
            signal.SIGTERM, lambda: frames.put_nowait(_SHUTDOWN_SENTINEL)
        )
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-posix
        pass

    tasks: set[asyncio.Task] = set()

    async def handle(blob: bytes) -> None:
        request_id, kind, payload = pickle.loads(blob)
        try:
            if kind == "estimate":
                database, constraints, generator, requests, mode = payload
                rows = await batcher.submit(
                    database, constraints, generator, requests, mode
                )
                reply = (request_id, "result", rows)
            elif kind == "warm":
                database, constraints, generator = payload
                await loop.run_in_executor(
                    None, registry.handle, database, constraints, generator
                )
                reply = (request_id, "ok", None)
            elif kind == "stats":
                reply = (
                    request_id,
                    "stats",
                    {
                        "shard": shard,
                        "pid": os.getpid(),
                        "registry": registry.stats(),
                        "batching": batcher.stats(),
                    },
                )
            elif kind == "shutdown":
                frames.put_nowait(_SHUTDOWN_SENTINEL)
                reply = (request_id, "ok", None)
            else:
                reply = (request_id, "error", f"unknown frame kind {kind!r}")
        except QueueFull as error:
            reply = (
                request_id,
                "queue_full",
                (error.scope, error.depth, error.limit, error.retry_after),
            )
        except BaseException as error:  # noqa: BLE001 - must cross the pipe
            reply = (request_id, "error", f"{type(error).__name__}: {error}")
        try:
            await loop.run_in_executor(None, send, reply)
        except (OSError, ValueError):  # pragma: no cover - router went away
            pass

    while True:
        blob = await frames.get()
        if blob is None or blob is _SHUTDOWN_SENTINEL:
            break
        task = asyncio.create_task(handle(blob))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    # Graceful drain: finish accepted frames, then queued batch rounds,
    # then spill warm sessions (and unlink shared segments) on the way out.
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    await batcher.drain()
    await loop.run_in_executor(None, registry.close)
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


#: Queue sentinel distinguishing "drain and exit" from reader EOF.
_SHUTDOWN_SENTINEL = object()


# --------------------------------------------------------------------------------------
# Router side
# --------------------------------------------------------------------------------------


class _Shard:
    """Router-side state for one worker process (one generation)."""

    __slots__ = (
        "shard",
        "process",
        "conn",
        "reader",
        "inflight",
        "send_lock",
        "dead",
    )

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.reader: threading.Thread | None = None
        # request_id -> (future, kind, payload, retries); loop-confined.
        self.inflight: dict[int, tuple] = {}
        self.send_lock = threading.Lock()
        self.dead = False


class WorkerPool:
    """The router's pool of warm worker processes, one per shard.

    All mutable state is confined to the asyncio event loop; reader
    threads (one per worker, blocking on the pipe) hand frames back via
    ``call_soon_threadsafe`` and sends run in the loop's default
    executor, so the loop never blocks on a pipe.

    Fault handling: a worker whose pipe hits EOF is respawned with the
    same shard id.  Its in-flight frames are retried on the replacement
    (estimates are idempotent — see the module docstring) up to
    ``_MAX_RETRIES`` times, and the keys recently routed to that shard
    are re-warmed from the cache store via fire-and-forget ``warm``
    frames, so a killed worker comes back hot instead of cold.
    """

    def __init__(
        self,
        config: WorkerConfig,
        workers: int,
        *,
        warm_keys: int = 256,
        on_restart: Callable[[int], None] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.config = config
        self.workers = workers
        self._on_restart = on_restart
        self._loop: asyncio.AbstractEventLoop | None = None
        self._context = None
        self._shards: list[_Shard] = []
        self._ids = itertools.count(1)
        self._stopping = False
        #: Monotone per-shard respawn counters (rendered as a counter
        #: metric — the router owns them, so restarts never reset them).
        self.restarts = [0] * workers
        # key -> (database, constraints, generator): the bounded LRU of
        # recently routed groups used to re-warm a respawned shard.
        self._warm: OrderedDict[str, tuple] = OrderedDict()
        self._warm_limit = warm_keys
        self._revivals: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker (concurrently — spawn imports are slow)."""
        from ..engine.batch import START_METHOD_ENV, _pool_context

        self._loop = asyncio.get_running_loop()
        if self.config.start_method or os.environ.get(START_METHOD_ENV):
            self._context = _pool_context(self.config.start_method)
        else:
            # Never default to fork here, even when the process is still
            # single-threaded at resolution time: shards are forked
            # concurrently from executor threads, so a forked sibling
            # inherits every already-created shard pipe — and a held
            # write end means a SIGKILLed worker never EOFs its reader,
            # so the router never notices the death (no respawn).
            # Spawned children fork+exec with explicit fd passing, which
            # cannot cross-inherit.
            self._context = multiprocessing.get_context("spawn")
        self._shards = list(
            await asyncio.gather(
                *(
                    self._loop.run_in_executor(None, self._spawn, shard)
                    for shard in range(self.workers)
                )
            )
        )

    def _spawn(self, shard: int) -> _Shard:
        """Blocking: fork/spawn one worker and wire its reader thread."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(shard, child_conn, self.config),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Shard(shard, process, parent_conn)
        worker.reader = threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"repro-router-read-{shard}",
            daemon=True,
        )
        worker.reader.start()
        return worker

    async def stop(self, timeout: float = 10.0) -> None:
        """Drain and terminate every worker (graceful, then forceful)."""
        if self._loop is None:
            return
        self._stopping = True
        goodbyes = []
        for worker in self._shards:
            future = self._loop.create_future()
            self._dispatch(worker.shard, future, "shutdown", None)
            goodbyes.append(future)
        if goodbyes:
            done, pending = await asyncio.wait(goodbyes, timeout=timeout)
            for future in pending:
                future.cancel()
            for future in done:
                future.exception()  # consume, ignore
        for worker in self._shards:
            await self._loop.run_in_executor(None, self._reap, worker, timeout)
        for worker in self._shards:
            for future, *_ in list(worker.inflight.values()):
                if not future.done():
                    future.set_exception(WorkerDied("worker pool stopped"))
            worker.inflight.clear()

    @staticmethod
    def _reap(worker: _Shard, timeout: float) -> None:
        worker.process.join(timeout)
        if worker.process.is_alive():  # pragma: no cover - drain overrun
            worker.process.terminate()
            worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def alive(self, shard: int) -> bool:
        """Whether ``shard``'s current process is running."""
        worker = self._shards[shard]
        return not worker.dead and worker.process.is_alive()

    def kill(self, shard: int) -> int:
        """SIGKILL ``shard``'s worker (fault injection); returns its pid.

        The reader thread notices the EOF and the normal respawn/retry
        path takes over — this is exactly the fault the loadtest's
        per-worker kill beat injects.
        """
        if not 0 <= shard < self.workers:
            raise ValueError(f"shard must be in [0, {self.workers})")
        process = self._shards[shard].process
        pid = process.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass
        return pid or -1

    # -- request path ------------------------------------------------------------------

    async def submit(
        self,
        key: str,
        database,
        constraints,
        generator,
        requests: Sequence,
        mode: str,
    ):
        """Route one instance group's requests to its shard and await rows.

        Raises :class:`~repro.service.batching.QueueFull` when the
        shard's batcher refuses admission (the server's 429 path works
        unchanged) and :class:`WorkerDied` when the shard keeps dying.
        """
        shard = shard_for_key(key, self.workers)
        self._remember(key, (database, constraints, generator))
        status, payload = await self._request(
            shard, "estimate", (database, constraints, generator, list(requests), mode)
        )
        return payload

    async def stats(self, timeout: float = 5.0) -> list[dict | None]:
        """Per-shard stat documents (``None`` for unresponsive shards)."""

        async def one(shard: int) -> dict | None:
            try:
                status, payload = await asyncio.wait_for(
                    self._request(shard, "stats", None), timeout
                )
                document = dict(payload)
            except (asyncio.TimeoutError, WorkerDied, QueueFull):
                document = {"shard": shard, "registry": None, "batching": None}
            document["alive"] = self.alive(shard)
            document["restarts"] = self.restarts[shard]
            return document

        return list(await asyncio.gather(*(one(s) for s in range(self.workers))))

    async def _request(self, shard: int, kind: str, payload):
        assert self._loop is not None, "WorkerPool.start() was never awaited"
        future = self._loop.create_future()
        self._dispatch(shard, future, kind, payload)
        status, result = await future
        return status, result

    def _dispatch(
        self, shard: int, future: asyncio.Future, kind: str, payload, retries: int = 0
    ) -> None:
        """Loop-side: register the frame in-flight and post it.

        Frames dispatched to a shard mid-respawn park in the dead
        worker's ``inflight`` map; the revival migrates them to the
        replacement, so callers never observe the gap.
        """
        worker = self._shards[shard]
        request_id = next(self._ids)
        worker.inflight[request_id] = (future, kind, payload, retries)
        if not worker.dead:
            self._post(worker, request_id, kind, payload)

    def _post(self, worker: _Shard, request_id: int, kind: str, payload) -> None:
        blob = pickle.dumps(
            (request_id, kind, payload), protocol=pickle.HIGHEST_PROTOCOL
        )

        def write() -> None:
            try:
                with worker.send_lock:
                    worker.conn.send_bytes(blob)
            except (OSError, ValueError, BrokenPipeError):
                # The reader thread sees the same death and triggers the
                # respawn path, which retries this frame.
                pass

        self._loop.run_in_executor(None, write)

    def _read_loop(self, worker: _Shard) -> None:
        while True:
            try:
                blob = worker.conn.recv_bytes()
            except (EOFError, OSError):
                self._loop.call_soon_threadsafe(self._worker_died, worker)
                return
            self._loop.call_soon_threadsafe(self._deliver, worker, blob)

    def _deliver(self, worker: _Shard, blob: bytes) -> None:
        request_id, status, payload = pickle.loads(blob)
        entry = worker.inflight.pop(request_id, None)
        if entry is None:
            return
        future, _kind, _payload, _retries = entry
        if future.done():
            return
        if status == "queue_full":
            scope, depth, limit, retry_after = payload
            future.set_exception(QueueFull(scope, depth, limit, retry_after))
        elif status == "error":
            future.set_exception(
                RuntimeError(f"shard {worker.shard}: {payload}")
            )
        else:
            future.set_result((status, payload))

    # -- death and rebirth -------------------------------------------------------------

    def _worker_died(self, worker: _Shard) -> None:
        if worker.dead or self._stopping:
            return
        if self._shards[worker.shard] is not worker:
            return  # a stale generation's reader winding down
        worker.dead = True
        self.restarts[worker.shard] += 1
        if self._on_restart is not None:
            self._on_restart(worker.shard)
        task = asyncio.ensure_future(self._revive(worker))
        self._revivals.add(task)
        task.add_done_callback(self._revivals.discard)

    async def _revive(self, worker: _Shard) -> None:
        shard = worker.shard
        await self._loop.run_in_executor(None, worker.process.join, 1.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        replacement = await self._loop.run_in_executor(None, self._spawn, shard)
        if self._stopping:
            return
        # From here to the end of the method is one synchronous block on
        # the loop: dispatches cannot interleave, so no frame can slip
        # into the dead worker's map after migration.
        self._shards[shard] = replacement
        # Re-warm the shard's recently routed groups from the store
        # (fire-and-forget: a warm failure just means a cold first hit).
        for key, group in list(self._warm.items()):
            if shard_for_key(key, self.workers) == shard:
                request_id = next(self._ids)
                self._post(replacement, request_id, "warm", group)
        # Transparently retry what the dead worker was holding.
        pending = worker.inflight
        worker.inflight = {}
        for future, kind, payload, retries in pending.values():
            if future.done():
                continue
            if retries >= _MAX_RETRIES:
                future.set_exception(
                    WorkerDied(
                        f"shard {shard} died {retries + 1} times executing one frame"
                    )
                )
            else:
                self._dispatch(shard, future, kind, payload, retries + 1)

    def _remember(self, key: str, group: tuple) -> None:
        self._warm[key] = group
        self._warm.move_to_end(key)
        while len(self._warm) > self._warm_limit:
            self._warm.popitem(last=False)
