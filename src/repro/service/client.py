"""A small stdlib HTTP client for the estimation service.

:class:`ServiceClient` wraps the JSON API of
:class:`~repro.service.server.EstimationServer`: it serializes
``(Database, FDSet)`` pairs through :func:`repro.io.instance_to_dict`,
posts request documents, and hands back the service's JSON rows
verbatim (the ``batch --json`` row schema).  Each call opens a fresh
connection (the server is one-request-per-connection), which also makes
the client trivially thread-safe — the E27/E29 benches drive it from a
thread pool to exercise the server's micro-batching.

Error handling is total: *every* failure mode — JSON error responses,
non-JSON bodies (a proxy's HTML 500 page), truncated responses, refused
connections — surfaces as :class:`ServiceClientError` carrying the HTTP
status (0 when no response arrived) and a bounded excerpt of whatever
body was received, never a raw ``json.JSONDecodeError`` or bare
``URLError``.  A ``429``'s ``Retry-After`` header is parsed onto the
error (:attr:`ServiceClientError.retry_after`), and constructing the
client with ``max_retries > 0`` makes it honor that hint itself:
rejected calls sleep ``min(Retry-After, retry_after_cap)`` and retry up
to the bound, then raise the final rejection.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Sequence

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from ..io import format_query, instance_to_dict

#: Longest body excerpt attached to a :class:`ServiceClientError`.
_EXCERPT_LIMIT = 200


def _excerpt(body: bytes) -> str:
    text = body.decode("utf-8", errors="replace")
    if len(text) > _EXCERPT_LIMIT:
        return text[:_EXCERPT_LIMIT] + "…"
    return text


class ServiceClientError(RuntimeError):
    """An estimation-service call that failed.

    ``status`` is the HTTP status code (``0`` when no HTTP response was
    received at all — connection refused, truncated mid-body).
    ``payload`` is the decoded JSON error document when the server sent
    one, else a synthesized ``{"error": ..., "body_excerpt": ...}``
    describing what *was* received.  ``retry_after`` carries a parsed
    ``Retry-After`` header (seconds) when the response had one.
    """

    def __init__(
        self,
        status: int,
        payload: Mapping[str, Any],
        retry_after: float | None = None,
    ):
        self.status = status
        self.payload = dict(payload)
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {self.payload.get('error', self.payload)}")


def _retry_after_seconds(headers) -> float | None:
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def _generator_name(generator: MarkovChainGenerator | str) -> str:
    return generator if isinstance(generator, str) else generator.name


def _query_text(query: ConjunctiveQuery | str) -> str:
    return query if isinstance(query, str) else format_query(query)


class ServiceClient:
    """A client bound to one service base URL (e.g. from
    :attr:`EstimationServer.url <repro.service.server.EstimationServer.url>`).

    ``max_retries`` bounds how many times a ``429``-rejected call is
    retried after sleeping the server's ``Retry-After`` hint (capped at
    ``retry_after_cap`` seconds per sleep); ``0`` (the default) raises
    immediately, preserving the pre-hardening behavior.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 300.0,
        *,
        max_retries: int = 0,
        retry_after_cap: float = 5.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_after_cap <= 0:
            raise ValueError("retry_after_cap must be positive")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_after_cap = retry_after_cap

    def _call(self, method: str, path: str, payload: Any = None) -> dict:
        for attempt in range(self.max_retries + 1):
            try:
                return self._call_once(method, path, payload)
            except ServiceClientError as error:
                retriable = (
                    error.status == 429
                    and error.retry_after is not None
                    and attempt < self.max_retries
                )
                if not retriable:
                    raise
                time.sleep(min(error.retry_after, self.retry_after_cap))
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, method: str, path: str, payload: Any = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                status = response.status
                body = response.read()
        except urllib.error.HTTPError as error:
            status = error.code
            retry_after = _retry_after_seconds(error.headers)
            try:
                body = error.read()
            except (http.client.IncompleteRead, ConnectionError, OSError) as read_error:
                body = getattr(read_error, "partial", b"") or b""
            try:
                decoded = json.loads(body.decode("utf-8"))
                if not isinstance(decoded, Mapping):
                    raise ValueError("non-object error body")
            except (ValueError, UnicodeDecodeError):
                decoded = {
                    "error": f"non-JSON error body ({error.reason})",
                    "body_excerpt": _excerpt(body),
                }
            raise ServiceClientError(status, decoded, retry_after) from None
        except (http.client.IncompleteRead, ConnectionResetError) as error:
            partial = getattr(error, "partial", b"") or b""
            raise ServiceClientError(
                0,
                {
                    "error": f"truncated response from {self.base_url + path}: {error}",
                    "body_excerpt": _excerpt(partial),
                },
            ) from None
        except urllib.error.URLError as error:
            raise ServiceClientError(
                0, {"error": f"request to {self.base_url + path} failed: {error.reason}"}
            ) from None
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceClientError(
                status,
                {
                    "error": "response body is not valid JSON",
                    "body_excerpt": _excerpt(body),
                },
            ) from None
        if not isinstance(document, dict):
            raise ServiceClientError(
                status,
                {
                    "error": "response body is not a JSON object",
                    "body_excerpt": _excerpt(body),
                },
            )
        return document

    # -- monitoring --------------------------------------------------------------------

    def healthz(self) -> dict:
        """The server's liveness document."""
        return self._call("GET", "/healthz")

    def stats(self) -> dict:
        """Registry / micro-batcher / answer-cache / server counters."""
        return self._call("GET", "/stats")

    def metrics(self) -> dict[str, float]:
        """Scrape ``GET /metrics`` and parse it into ``{series: value}``.

        Uses :func:`repro.service.metrics.parse_metrics_text`; the raw
        exposition text is available via :meth:`metrics_text`.
        """
        from .metrics import parse_metrics_text

        return parse_metrics_text(self.metrics_text())

    def metrics_text(self) -> str:
        """The raw Prometheus exposition text from ``GET /metrics``."""
        request = urllib.request.Request(self.base_url + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                decoded = {"error": str(error.reason), "body_excerpt": _excerpt(body)}
            raise ServiceClientError(error.code, decoded) from None
        except urllib.error.URLError as error:
            raise ServiceClientError(
                0, {"error": f"request to {self.base_url}/metrics failed: {error.reason}"}
            ) from None

    # -- estimation --------------------------------------------------------------------

    def estimate(
        self,
        database: Database,
        constraints: FDSet,
        query: ConjunctiveQuery | str,
        answer: Sequence = (),
        *,
        generator: MarkovChainGenerator | str = "M_ur",
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        max_samples: int | None = None,
        mode: str = "fixed",
        label: str = "request",
        budget_seconds: float | None = None,
    ) -> dict:
        """Score one ``(query, answer)`` and return its result row."""
        document: dict[str, Any] = {
            "instance": instance_to_dict(database, constraints),
            "query": _query_text(query),
            "generator": _generator_name(generator),
            "answer": list(answer),
            "epsilon": epsilon,
            "delta": delta,
            "method": method,
            "mode": mode,
            "label": label,
        }
        if max_samples is not None:
            document["max_samples"] = max_samples
        if budget_seconds is not None:
            document["budget_seconds"] = budget_seconds
        (row,) = self._call("POST", "/estimate", document)["results"]
        return row

    def estimate_workload(self, document: Mapping[str, Any]) -> list[dict]:
        """Post a full workload document; returns rows in request order.

        The document uses the ``docs/FORMATS.md`` workload schema with
        *inline* instance documents (the server rejects file paths).
        """
        return self._call("POST", "/estimate", dict(document))["results"]

    def answers(
        self,
        database: Database,
        constraints: FDSet,
        query: ConjunctiveQuery | str,
        *,
        generator: MarkovChainGenerator | str = "M_ur",
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        max_samples: int | None = None,
        mode: str = "fixed",
        label: str = "request",
        budget_seconds: float | None = None,
    ) -> list[dict]:
        """Score every candidate answer of ``Q(D)``; returns the rows."""
        document: dict[str, Any] = {
            "instance": instance_to_dict(database, constraints),
            "query": _query_text(query),
            "generator": _generator_name(generator),
            "epsilon": epsilon,
            "delta": delta,
            "method": method,
            "mode": mode,
            "label": label,
        }
        if max_samples is not None:
            document["max_samples"] = max_samples
        if budget_seconds is not None:
            document["budget_seconds"] = budget_seconds
        return self._call("POST", "/answers", document)["answers"]
