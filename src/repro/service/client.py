"""A small stdlib HTTP client for the estimation service.

:class:`ServiceClient` wraps the JSON API of
:class:`~repro.service.server.EstimationServer`: it serializes
``(Database, FDSet)`` pairs through :func:`repro.io.instance_to_dict`,
posts request documents, and hands back the service's JSON rows
verbatim (the ``batch --json`` row schema).  Each call opens a fresh
connection (the server is one-request-per-connection), which also makes
the client trivially thread-safe — the E27 bench drives it from a
thread pool to exercise the server's micro-batching.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Mapping, Sequence

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from ..io import format_query, instance_to_dict


class ServiceClientError(RuntimeError):
    """An HTTP-level error response, with the decoded JSON payload."""

    def __init__(self, status: int, payload: Mapping[str, Any]):
        self.status = status
        self.payload = dict(payload)
        super().__init__(f"HTTP {status}: {self.payload.get('error', self.payload)}")


def _generator_name(generator: MarkovChainGenerator | str) -> str:
    return generator if isinstance(generator, str) else generator.name


def _query_text(query: ConjunctiveQuery | str) -> str:
    return query if isinstance(query, str) else format_query(query)


class ServiceClient:
    """A client bound to one service base URL (e.g. from
    :attr:`EstimationServer.url <repro.service.server.EstimationServer.url>`)."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, method: str, path: str, payload: Any = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                decoded = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                decoded = {"error": str(error.reason)}
            raise ServiceClientError(error.code, decoded) from None

    # -- monitoring --------------------------------------------------------------------

    def healthz(self) -> dict:
        """The server's liveness document."""
        return self._call("GET", "/healthz")

    def stats(self) -> dict:
        """Registry / micro-batcher / server counters."""
        return self._call("GET", "/stats")

    # -- estimation --------------------------------------------------------------------

    def estimate(
        self,
        database: Database,
        constraints: FDSet,
        query: ConjunctiveQuery | str,
        answer: Sequence = (),
        *,
        generator: MarkovChainGenerator | str = "M_ur",
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        max_samples: int | None = None,
        mode: str = "fixed",
        label: str = "request",
    ) -> dict:
        """Score one ``(query, answer)`` and return its result row."""
        document: dict[str, Any] = {
            "instance": instance_to_dict(database, constraints),
            "query": _query_text(query),
            "generator": _generator_name(generator),
            "answer": list(answer),
            "epsilon": epsilon,
            "delta": delta,
            "method": method,
            "mode": mode,
            "label": label,
        }
        if max_samples is not None:
            document["max_samples"] = max_samples
        (row,) = self._call("POST", "/estimate", document)["results"]
        return row

    def estimate_workload(self, document: Mapping[str, Any]) -> list[dict]:
        """Post a full workload document; returns rows in request order.

        The document uses the ``docs/FORMATS.md`` workload schema with
        *inline* instance documents (the server rejects file paths).
        """
        return self._call("POST", "/estimate", dict(document))["results"]

    def answers(
        self,
        database: Database,
        constraints: FDSet,
        query: ConjunctiveQuery | str,
        *,
        generator: MarkovChainGenerator | str = "M_ur",
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        max_samples: int | None = None,
        mode: str = "fixed",
        label: str = "request",
    ) -> list[dict]:
        """Score every candidate answer of ``Q(D)``; returns the rows."""
        document: dict[str, Any] = {
            "instance": instance_to_dict(database, constraints),
            "query": _query_text(query),
            "generator": _generator_name(generator),
            "epsilon": epsilon,
            "delta": delta,
            "method": method,
            "mode": mode,
            "label": label,
        }
        if max_samples is not None:
            document["max_samples"] = max_samples
        return self._call("POST", "/answers", document)["answers"]
