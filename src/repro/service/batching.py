"""Micro-batching: coalesce concurrent same-group requests into one pass.

The engine's economics reward width: one
:func:`~repro.engine.batch.run_group` pass over ``k`` requests costs one
pool extension (whole vector batches) plus ``k`` cheap batched
hit-counting reductions, whereas ``k`` sequential passes serialize on
the session lock and re-enter the evaluation machinery ``k`` times.
:class:`MicroBatcher` turns concurrency into width: requests arriving
for a group *while a batch for that group is already being scored* pile
into a pending list, and the next drain round executes all of them as a
single coalesced pass.

Coalescing is free, correctness-wise: every request evaluates the group
pool from position zero, so results are independent of how requests are
partitioned into batches (the bit-identity contract of
:func:`~repro.engine.batch.run_group`).  Fixed-mode and adaptive-mode
waiters sharing a drain round are executed as one pass per mode over
the same pool.

**Admission control.**  Pending work is bounded: ``max_queue`` caps the
requests queued per group and ``max_pending`` caps the total across
groups.  A :meth:`submit` that would exceed either bound raises
:class:`QueueFull` *immediately* — before any state is enqueued — with
a ``retry_after`` hint derived from the smoothed batch execution time
and the queue depth ahead of the rejected request.  The server turns
that into ``429`` + ``Retry-After``; under saturation the queues stay
bounded and admitted requests keep bounded latency instead of the whole
service collapsing into one unbounded backlog.

**Cancellation.**  A waiter whose future is cancelled while queued (a
request deadline expired) is dropped at drain time without being
executed — its share of the coalesced pass is never paid.  Work already
*running* in the executor cannot be interrupted, but its results are
simply discarded for cancelled waiters (``future.done()`` guards every
resolution).

Threading model: all queue state lives on the asyncio event loop (no
locks); only the compute — :meth:`SessionHandle.run
<repro.service.registry.SessionHandle.run>` under the per-session lock —
runs in the executor.  At most one drain task exists per group key, so
the session lock is uncontended in the server path and the event loop
stays free to accept (and thereby coalesce) more requests.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Callable, Sequence

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..engine.batch import BatchRequest, BatchResult
from .registry import SessionRegistry

#: The two per-request execution modes a waiter may ask for.
MODES = ("fixed", "adaptive")

#: Smoothing factor for the exponentially weighted batch-duration
#: estimate behind ``Retry-After`` hints.
_EWMA_ALPHA = 0.3


class QueueFull(RuntimeError):
    """Admission refused: a micro-batcher queue bound would be exceeded.

    ``retry_after`` is the batcher's estimate (whole seconds, >= 1) of
    when retrying is likely to be admitted, sized from the smoothed
    batch duration and the depth of the queue that rejected the request.
    """

    def __init__(self, scope: str, depth: int, limit: int, retry_after: int):
        self.scope = scope
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"{scope} queue full ({depth} pending requests, limit {limit}); "
            f"retry in ~{retry_after}s"
        )


class _Waiter:
    """One submitted request bundle awaiting its coalesced batch."""

    __slots__ = ("database", "constraints", "generator", "requests", "mode", "future")

    def __init__(self, database, constraints, generator, requests, mode, future):
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.requests = requests
        self.mode = mode
        self.future = future


class MicroBatcher:
    """Coalesces concurrent :meth:`submit` calls per instance group.

    Construct one per server over its :class:`SessionRegistry`; an
    ``executor`` of ``None`` uses the event loop's default thread pool.
    ``max_queue`` / ``max_pending`` bound the queued *requests* per
    group / in total (``None`` = unbounded, the pre-hardening behavior);
    ``on_batch(key, seconds, width)`` is an optional observation hook
    the server uses for latency/width histograms.
    """

    def __init__(
        self,
        registry: SessionRegistry,
        executor=None,
        *,
        max_queue: int | None = None,
        max_pending: int | None = None,
        on_batch: Callable[[str, float, int], None] | None = None,
    ):
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.registry = registry
        self.max_queue = max_queue
        self.max_pending = max_pending
        self._executor = executor
        self._on_batch = on_batch
        self._pending: dict[str, list[_Waiter]] = {}
        self._pending_sizes: dict[str, int] = {}
        self._pending_total = 0
        self._draining: set[str] = set()
        self._drain_tasks: set[asyncio.Task] = set()
        self._batch_seconds_ewma = 0.0
        self.batches_run = 0
        self.coalesced_batches = 0
        self.widest_batch = 0
        self.rejected = 0
        self.cancelled_waiters = 0

    # -- admission ---------------------------------------------------------------------

    def retry_after_hint(self, depth: int) -> int:
        """Whole seconds (>= 1) until ``depth`` queued requests likely drain."""
        per_batch = self._batch_seconds_ewma or 0.1
        # Depth drains in coalesced passes; assume modest width so the
        # hint errs conservative rather than thundering-herd optimistic.
        return max(1, math.ceil(per_batch * (1 + depth / max(1, self.widest_batch or 1))))

    def _admit(self, key: str, size: int) -> None:
        depth = self._pending_sizes.get(key, 0)
        if self.max_queue is not None and depth + size > self.max_queue:
            self.rejected += size
            raise QueueFull("group", depth, self.max_queue, self.retry_after_hint(depth))
        if (
            self.max_pending is not None
            and self._pending_total + size > self.max_pending
        ):
            self.rejected += size
            raise QueueFull(
                "server",
                self._pending_total,
                self.max_pending,
                self.retry_after_hint(self._pending_total),
            )

    async def submit(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
        requests: Sequence[BatchRequest],
        mode: str = "fixed",
    ) -> list[BatchResult]:
        """Score ``requests`` (one group) and return results in order.

        Out-of-scope groups resolve to per-request error rows, exactly
        like ``batch_estimate``; malformed calls (unknown mode) and
        genuine internal failures raise, and a full queue raises
        :class:`QueueFull` before enqueueing anything.
        """
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
        loop = asyncio.get_running_loop()
        key = self.registry.key_for(database, constraints, generator)
        size = len(requests)
        self._admit(key, size)
        waiter = _Waiter(
            database, constraints, generator, list(requests), mode, loop.create_future()
        )
        self._pending.setdefault(key, []).append(waiter)
        self._pending_sizes[key] = self._pending_sizes.get(key, 0) + size
        self._pending_total += size
        if key not in self._draining:
            self._draining.add(key)
            task = loop.create_task(self._drain(key))
            # Keep a strong reference: the loop only holds weak ones.
            self._drain_tasks.add(task)
            task.add_done_callback(self._drain_tasks.discard)
        return await waiter.future

    # -- draining ----------------------------------------------------------------------

    def _pop_round(self, key: str) -> list[_Waiter]:
        """Dequeue every pending waiter for ``key``, dropping cancelled ones."""
        waiters = self._pending.pop(key, [])
        self._pending_total -= self._pending_sizes.pop(key, 0)
        live = []
        for waiter in waiters:
            if waiter.future.cancelled():
                self.cancelled_waiters += 1
            else:
                live.append(waiter)
        return live

    async def _drain(self, key: str) -> None:
        """Serve ``key``'s pending waiters in coalesced rounds until empty."""
        loop = asyncio.get_running_loop()
        try:
            while self._pending.get(key):
                waiters = self._pop_round(key)
                if not waiters:
                    continue
                started = time.perf_counter()
                try:
                    outputs = await loop.run_in_executor(
                        self._executor, self._run_batch, waiters
                    )
                except Exception as error:
                    # One poisoned batch fails only its own waiters; the
                    # drain loop survives to serve the next round.
                    for waiter in waiters:
                        if not waiter.future.done():
                            waiter.future.set_exception(error)
                    continue
                elapsed = time.perf_counter() - started
                self._batch_seconds_ewma = (
                    elapsed
                    if self._batch_seconds_ewma == 0.0
                    else (1 - _EWMA_ALPHA) * self._batch_seconds_ewma
                    + _EWMA_ALPHA * elapsed
                )
                self.batches_run += 1
                self.widest_batch = max(self.widest_batch, len(waiters))
                if len(waiters) > 1:
                    self.coalesced_batches += 1
                if self._on_batch is not None:
                    self._on_batch(key, elapsed, sum(len(w.requests) for w in waiters))
                for waiter, rows in zip(waiters, outputs):
                    if not waiter.future.done():
                        waiter.future.set_result(rows)
        finally:
            self._draining.discard(key)

    def _run_batch(self, waiters: list[_Waiter]) -> list[list[BatchResult]]:
        """Executor-side: one coalesced :meth:`SessionHandle.run` per mode.

        All waiters share one registry key, so the handle resolves once;
        their request lists are flattened into a single pass per mode and
        the results split back per waiter.  Waiters cancelled between
        dequeue and execution are skipped (their slots stay ``None`` —
        the drain loop never resolves a done future).
        """
        from ..approx.fpras import FPRASUnavailable

        first = waiters[0]
        try:
            handle = self.registry.handle(
                first.database, first.constraints, first.generator
            )
        except (FPRASUnavailable, ValueError) as error:
            message = str(error)
            return [
                [BatchResult(request, error=message) for request in waiter.requests]
                for waiter in waiters
            ]
        outputs: list[list[BatchResult] | None] = [None] * len(waiters)
        for mode in MODES:
            flat: list[BatchRequest] = []
            spans: list[tuple[int, int, int]] = []
            for position, waiter in enumerate(waiters):
                if waiter.mode != mode or waiter.future.cancelled():
                    continue
                spans.append((position, len(flat), len(flat) + len(waiter.requests)))
                flat.extend(waiter.requests)
            if not flat:
                continue
            results = handle.run(flat, mode)
            for position, start, stop in spans:
                outputs[position] = results[start:stop]
        return outputs  # type: ignore[return-value]  # every live waiter has a mode

    # -- shutdown ----------------------------------------------------------------------

    async def drain(self) -> None:
        """Wait until every queued waiter has been served.

        The graceful-shutdown half of the batcher: awaits the live drain
        tasks (which keep spawning rounds while work is pending) until no
        pending requests and no running drains remain.  New submissions
        arriving *during* the wait are drained too — callers that want a
        hard stop should fence admissions first and use
        :meth:`fail_pending` for whatever outlives their timeout.
        """
        while self._drain_tasks or self._pending_total:
            tasks = list(self._drain_tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:  # pending but no drain task yet: let it get scheduled
                await asyncio.sleep(0)

    def fail_pending(self, error: BaseException) -> int:
        """Fail every still-queued waiter with ``error``; returns how many.

        The forceful-shutdown half: dequeues everything (so drain rounds
        find nothing) and resolves the waiters' futures exceptionally —
        the server maps the error to a clean ``503`` instead of the
        pre-fix behavior of silently dropping queued work when the loop
        closed underneath it.
        """
        failed = 0
        for key in list(self._pending):
            for waiter in self._pop_round(key):
                if not waiter.future.done():
                    waiter.future.set_exception(error)
                    failed += 1
        return failed

    def stats(self) -> dict:
        """Coalescing, queue and rejection counters, JSON-native."""
        return {
            "batches_run": self.batches_run,
            "coalesced_batches": self.coalesced_batches,
            "widest_batch": self.widest_batch,
            "pending_requests": self._pending_total,
            "max_queue": self.max_queue,
            "max_pending": self.max_pending,
            "rejected": self.rejected,
            "cancelled_waiters": self.cancelled_waiters,
            "batch_seconds_ewma": round(self._batch_seconds_ewma, 6),
        }
