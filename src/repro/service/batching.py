"""Micro-batching: coalesce concurrent same-group requests into one pass.

The engine's economics reward width: one
:func:`~repro.engine.batch.run_group` pass over ``k`` requests costs one
pool extension (whole vector batches) plus ``k`` cheap batched
hit-counting reductions, whereas ``k`` sequential passes serialize on
the session lock and re-enter the evaluation machinery ``k`` times.
:class:`MicroBatcher` turns concurrency into width: requests arriving
for a group *while a batch for that group is already being scored* pile
into a pending list, and the next drain round executes all of them as a
single coalesced pass.

Coalescing is free, correctness-wise: every request evaluates the group
pool from position zero, so results are independent of how requests are
partitioned into batches (the bit-identity contract of
:func:`~repro.engine.batch.run_group`).  Fixed-mode and adaptive-mode
waiters sharing a drain round are executed as one pass per mode over
the same pool.

Threading model: all queue state lives on the asyncio event loop (no
locks); only the compute — :meth:`SessionHandle.run
<repro.service.registry.SessionHandle.run>` under the per-session lock —
runs in the executor.  At most one drain task exists per group key, so
the session lock is uncontended in the server path and the event loop
stays free to accept (and thereby coalesce) more requests.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..engine.batch import BatchRequest, BatchResult
from .registry import SessionRegistry

#: The two per-request execution modes a waiter may ask for.
MODES = ("fixed", "adaptive")


class _Waiter:
    """One submitted request bundle awaiting its coalesced batch."""

    __slots__ = ("database", "constraints", "generator", "requests", "mode", "future")

    def __init__(self, database, constraints, generator, requests, mode, future):
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.requests = requests
        self.mode = mode
        self.future = future


class MicroBatcher:
    """Coalesces concurrent :meth:`submit` calls per instance group.

    Construct one per server over its :class:`SessionRegistry`; an
    ``executor`` of ``None`` uses the event loop's default thread pool.
    """

    def __init__(self, registry: SessionRegistry, executor=None):
        self.registry = registry
        self._executor = executor
        self._pending: dict[str, list[_Waiter]] = {}
        self._draining: set[str] = set()
        self._drain_tasks: set[asyncio.Task] = set()
        self.batches_run = 0
        self.coalesced_batches = 0
        self.widest_batch = 0

    async def submit(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
        requests: Sequence[BatchRequest],
        mode: str = "fixed",
    ) -> list[BatchResult]:
        """Score ``requests`` (one group) and return results in order.

        Out-of-scope groups resolve to per-request error rows, exactly
        like ``batch_estimate``; only malformed calls (unknown mode) and
        genuine internal failures raise.
        """
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
        loop = asyncio.get_running_loop()
        key = self.registry.key_for(database, constraints, generator)
        waiter = _Waiter(
            database, constraints, generator, list(requests), mode, loop.create_future()
        )
        self._pending.setdefault(key, []).append(waiter)
        if key not in self._draining:
            self._draining.add(key)
            task = loop.create_task(self._drain(key))
            # Keep a strong reference: the loop only holds weak ones.
            self._drain_tasks.add(task)
            task.add_done_callback(self._drain_tasks.discard)
        return await waiter.future

    async def _drain(self, key: str) -> None:
        """Serve ``key``'s pending waiters in coalesced rounds until empty."""
        loop = asyncio.get_running_loop()
        try:
            while self._pending.get(key):
                waiters = self._pending.pop(key)
                try:
                    outputs = await loop.run_in_executor(
                        self._executor, self._run_batch, waiters
                    )
                except Exception as error:  # pragma: no cover - defensive
                    for waiter in waiters:
                        if not waiter.future.done():
                            waiter.future.set_exception(error)
                    continue
                self.batches_run += 1
                self.widest_batch = max(self.widest_batch, len(waiters))
                if len(waiters) > 1:
                    self.coalesced_batches += 1
                for waiter, rows in zip(waiters, outputs):
                    if not waiter.future.done():
                        waiter.future.set_result(rows)
        finally:
            self._draining.discard(key)

    def _run_batch(self, waiters: list[_Waiter]) -> list[list[BatchResult]]:
        """Executor-side: one coalesced :meth:`SessionHandle.run` per mode.

        All waiters share one registry key, so the handle resolves once;
        their request lists are flattened into a single pass per mode and
        the results split back per waiter.
        """
        from ..approx.fpras import FPRASUnavailable

        first = waiters[0]
        try:
            handle = self.registry.handle(
                first.database, first.constraints, first.generator
            )
        except (FPRASUnavailable, ValueError) as error:
            message = str(error)
            return [
                [BatchResult(request, error=message) for request in waiter.requests]
                for waiter in waiters
            ]
        outputs: list[list[BatchResult] | None] = [None] * len(waiters)
        for mode in MODES:
            flat: list[BatchRequest] = []
            spans: list[tuple[int, int, int]] = []
            for position, waiter in enumerate(waiters):
                if waiter.mode != mode:
                    continue
                spans.append((position, len(flat), len(flat) + len(waiter.requests)))
                flat.extend(waiter.requests)
            if not flat:
                continue
            results = handle.run(flat, mode)
            for position, start, stop in spans:
                outputs[position] = results[start:stop]
        return outputs  # type: ignore[return-value]  # every waiter has a mode

    def stats(self) -> dict:
        """Coalescing counters, JSON-native."""
        return {
            "batches_run": self.batches_run,
            "coalesced_batches": self.coalesced_batches,
            "widest_batch": self.widest_batch,
        }
