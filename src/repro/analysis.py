"""Diagnostics over inconsistent databases and repair distributions.

Utilities a practitioner points at a dirty database before/after running
OCQA: inconsistency metrics, repair-size expectations, and distribution
summaries.  Exact versions use the library's exact engines (exponential
worst case); sampled versions accept any repair sampler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

from .chains.generators import MarkovChainGenerator, UniformOperations
from .chains.local import LocalChainGenerator, local_repair_distribution
from .core.conflict_graph import ConflictGraph
from .core.database import Database
from .core.dependencies import FDSet
from .core.violations import violations
from .exact.enumerate import candidate_repairs
from .exact.state_space import StateSpaceEngine


@dataclass(frozen=True)
class InconsistencyReport:
    """Structural inconsistency metrics for ``(D, Σ)``."""

    facts: int
    violations: int
    conflicting_pairs: int
    facts_in_conflict: int
    nontrivial_components: int
    largest_component: int
    max_degree: int

    @property
    def inconsistency_ratio(self) -> float:
        """Fraction of facts involved in at least one conflict."""
        if self.facts == 0:
            return 0.0
        return self.facts_in_conflict / self.facts


def inconsistency_report(database: Database, constraints: FDSet) -> InconsistencyReport:
    """Measure how (and how badly) a database violates its FDs."""
    graph = ConflictGraph.of(database, constraints)
    components = graph.nontrivial_components()
    return InconsistencyReport(
        facts=len(database),
        violations=len(violations(database, constraints)),
        conflicting_pairs=graph.edge_count(),
        facts_in_conflict=len(graph.nodes) - len(graph.isolated_nodes()),
        nontrivial_components=len(components),
        largest_component=max((len(c) for c in components), default=0),
        max_degree=graph.max_degree(),
    )


def repair_distribution(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
) -> dict[Database, Fraction]:
    """``[[D]]_{M_Σ}`` exactly, dispatching to the cheapest engine.

    ``M_ur``/``M_ur,1`` are uniform over (singleton) candidate repairs;
    ``M_uo`` variants use the state-space DP; other local generators use the
    local DP; anything else materializes the explicit chain.
    """
    from .chains.generators import UniformRepairs

    if isinstance(generator, UniformRepairs):
        repairs = list(candidate_repairs(
            database, constraints, singleton_only=generator.singleton_only
        ))
        share = Fraction(1, len(repairs))
        return {repair: share for repair in repairs}
    if isinstance(generator, UniformOperations):
        engine = StateSpaceEngine(
            database, constraints, singleton_only=generator.singleton_only
        )
        return engine.uniform_operations_repair_distribution()
    if isinstance(generator, LocalChainGenerator):
        return local_repair_distribution(database, constraints, generator)
    chain = generator.chain(database, constraints)
    return chain.repair_probabilities()


def expected_repair_size(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
) -> Fraction:
    """``E[|D'|]`` over the generator's repair distribution (exact)."""
    distribution = repair_distribution(database, constraints, generator)
    return sum(
        (Fraction(len(repair)) * probability for repair, probability in distribution.items()),
        Fraction(0),
    )


def expected_deletion_count(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
) -> Fraction:
    """``E[|D| - |D'|]``: how many facts repairing is expected to delete."""
    return Fraction(len(database)) - expected_repair_size(database, constraints, generator)


def repair_distribution_entropy(distribution: dict[Database, Fraction]) -> float:
    """Shannon entropy (bits) of a repair distribution.

    Uniform-repairs distributions attain ``log2 |CORep|``; skewed chains
    (e.g. trust-weighted ones) measurably concentrate.
    """
    entropy = 0.0
    for probability in distribution.values():
        p = float(probability)
        if p > 0:
            entropy -= p * math.log2(p)
    return entropy


def sampled_expected_repair_size(
    sample: Callable[[], Database],
    samples: int = 1_000,
) -> float:
    """Monte-Carlo ``E[|D'|]`` from any repair sampler callable."""
    if samples <= 0:
        raise ValueError("need a positive sample count")
    return sum(len(sample()) for _ in range(samples)) / samples


def total_variation_distance(
    first: dict[Database, Fraction], second: dict[Database, Fraction]
) -> Fraction:
    """``TV(P, Q) = (1/2) Σ |P - Q|`` between two repair distributions."""
    keys = set(first) | set(second)
    total = sum(
        abs(first.get(key, Fraction(0)) - second.get(key, Fraction(0))) for key in keys
    )
    return Fraction(total, 2)


def empirical_distribution(
    draws: Iterable[Database],
) -> dict[Database, Fraction]:
    """Turn sampler draws into an empirical repair distribution."""
    counts: dict[Database, int] = {}
    total = 0
    for repair in draws:
        counts[repair] = counts.get(repair, 0) + 1
        total += 1
    if total == 0:
        raise ValueError("no draws given")
    return {repair: Fraction(count, total) for repair, count in counts.items()}


def expected_answer_count(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query,
) -> Fraction:
    """``E[|Q(D')|]`` over the generator's repair distribution (exact).

    The probability-weighted number of answers the query returns after
    repairing — a natural "how much signal survives" aggregate.  Equals the
    sum of the per-answer probabilities by linearity of expectation, and the
    tests assert exactly that identity.
    """
    distribution = repair_distribution(database, constraints, generator)
    return sum(
        (Fraction(len(query.answers(repair))) * probability
         for repair, probability in distribution.items()),
        Fraction(0),
    )


def compare_generators(
    database: Database,
    constraints: FDSet,
    generators: Iterable[MarkovChainGenerator],
) -> dict[str, dict[str, object]]:
    """Side-by-side summary of several generators on one instance."""
    summary: dict[str, dict[str, object]] = {}
    for generator in generators:
        distribution = repair_distribution(database, constraints, generator)
        summary[generator.name] = {
            "repairs": len(distribution),
            "expected_size": expected_repair_size(database, constraints, generator),
            "entropy_bits": repair_distribution_entropy(distribution),
        }
    return summary
