"""Serialization: JSON instances and a text query syntax.

Instance JSON format::

    {
      "schema": {"R": ["A", "B"]},
      "facts":  [["R", "a1", "b1"], ["R", "a1", "b2"]],
      "fds":    [["R", ["A"], ["B"]]]
    }

Query text format (variables start with ``?``; bare tokens are constants,
parsed as ints when numeric)::

    Ans(?x) :- R(?x, ?y), T(1)
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping

from .core.database import Database
from .core.dependencies import FDSet, FunctionalDependency
from .core.facts import Constant, Fact
from .core.queries import Atom, ConjunctiveQuery, QueryError, Variable
from .core.schema import Schema


class InstanceFormatError(ValueError):
    """Raised for malformed instance documents or query strings."""


# -- instances -----------------------------------------------------------------------


def instance_from_dict(document: Mapping[str, Any]) -> tuple[Database, FDSet]:
    """Parse an instance document into ``(Database, FDSet)``."""
    try:
        schema_spec = document["schema"]
        fact_rows = document["facts"]
        fd_rows = document["fds"]
    except KeyError as missing:
        raise InstanceFormatError(f"instance document lacks key {missing}") from None
    schema = Schema.from_spec({name: list(attrs) for name, attrs in schema_spec.items()})
    facts = []
    for row in fact_rows:
        if not isinstance(row, (list, tuple)) or len(row) < 2:
            raise InstanceFormatError(f"malformed fact row {row!r}")
        relation, *values = row
        facts.append(Fact(str(relation), tuple(_freeze(v) for v in values)))
    dependencies = []
    for row in fd_rows:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise InstanceFormatError(f"malformed fd row {row!r}")
        relation, lhs, rhs = row
        dependencies.append(
            FunctionalDependency(str(relation), frozenset(lhs), frozenset(rhs))
        )
    database = Database(facts, schema=schema)
    return database, FDSet(schema, dependencies)


def instance_to_dict(database: Database, constraints: FDSet) -> dict[str, Any]:
    """Serialize ``(Database, FDSet)`` to the instance document format."""
    schema = constraints.schema
    return {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "facts": [[f.relation, *f.values] for f in database.sorted_facts()],
        "fds": [
            [d.relation, sorted(d.lhs), sorted(d.rhs)] for d in constraints
        ],
    }


def load_instance(path: str) -> tuple[Database, FDSet]:
    """Load an instance from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))


def save_instance(path: str, database: Database, constraints: FDSet) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(database, constraints), handle, indent=2)


def _freeze(value: Any) -> Constant:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


# -- queries --------------------------------------------------------------------------

_QUERY_SHAPE = re.compile(r"^\s*Ans\s*\((?P<head>[^)]*)\)\s*:-\s*(?P<body>.+)$")
_ATOM_SHAPE = re.compile(r"\s*(?P<relation>\w+)\s*\((?P<terms>[^)]*)\)\s*")


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``Ans(?x) :- R(?x, a), S(1)`` into a :class:`ConjunctiveQuery`."""
    match = _QUERY_SHAPE.match(text)
    if match is None:
        raise InstanceFormatError(
            f"query {text!r} does not match 'Ans(...) :- atom, atom, ...'"
        )
    head = [
        _parse_term(token)
        for token in _split_terms(match.group("head"))
    ]
    for term in head:
        if not isinstance(term, Variable):
            raise InstanceFormatError("answer positions must be ?variables")
    atoms = []
    rest = match.group("body")
    position = 0
    while position < len(rest):
        atom_match = _ATOM_SHAPE.match(rest, position)
        if atom_match is None:
            raise InstanceFormatError(f"cannot parse atom at ...{rest[position:]!r}")
        terms = tuple(
            _parse_term(token) for token in _split_terms(atom_match.group("terms"))
        )
        if not terms:
            raise InstanceFormatError("atoms need at least one term")
        atoms.append(Atom(atom_match.group("relation"), terms))
        position = atom_match.end()
        if position < len(rest):
            if rest[position] != ",":
                raise InstanceFormatError(
                    f"expected ',' between atoms at ...{rest[position:]!r}"
                )
            position += 1
    try:
        return ConjunctiveQuery(tuple(head), tuple(atoms))
    except QueryError as error:
        raise InstanceFormatError(str(error)) from None


def format_query(query: ConjunctiveQuery) -> str:
    """The inverse of :func:`parse_query` (up to whitespace)."""
    head = ", ".join(f"?{v.name}" for v in query.answer_variables)
    atoms = []
    for atom in query.atoms:
        terms = ", ".join(
            f"?{t.name}" if isinstance(t, Variable) else str(t) for t in atom.terms
        )
        atoms.append(f"{atom.relation}({terms})")
    return f"Ans({head}) :- " + ", ".join(atoms)


def _split_terms(raw: str) -> list[str]:
    stripped = raw.strip()
    if not stripped:
        return []
    return [token.strip() for token in stripped.split(",")]


def _parse_term(token: str) -> Variable | Constant:
    if not token:
        raise InstanceFormatError("empty term")
    if token.startswith("?"):
        name = token[1:]
        if not name:
            raise InstanceFormatError("variable needs a name after '?'")
        return Variable(name)
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if (token.startswith("'") and token.endswith("'")) or (
        token.startswith('"') and token.endswith('"')
    ):
        return token[1:-1]
    return token
