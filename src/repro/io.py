"""Serialization: JSON instances, JSON batch workloads, a text query syntax.

Instance JSON format::

    {
      "schema": {"R": ["A", "B"]},
      "facts":  [["R", "a1", "b1"], ["R", "a1", "b2"]],
      "fds":    [["R", ["A"], ["B"]]]
    }

Query text format (variables start with ``?``; bare tokens are constants,
parsed as ints when numeric)::

    Ans(?x) :- R(?x, ?y), T(1)

Workload JSON format (consumed by ``python -m repro batch`` and
:func:`load_workload`; full reference in ``docs/FORMATS.md``)::

    {
      "mode":      "adaptive",
      "cache_dir": ".repro-cache",
      "defaults":  {"generator": "M_ur", "epsilon": 0.2},
      "instances": {"shop": {...inline instance...}, "hr": "hr.json"},
      "requests":  [
        {"instance": "shop", "query": "Ans(?x) :- R(?x, ?y)", "answer": ["a1"]},
        {"instance": "shop", "query": "Ans(?x) :- R(?x, ?y)", "answers": "all"}
      ]
    }

The optional top-level ``mode`` (``"fixed"`` | ``"adaptive"``) and
``cache_dir`` fields carry execution options; :func:`load_workload_spec`
returns them alongside the parsed requests as a :class:`WorkloadSpec`.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from .chains.generators import ALL_GENERATORS
from .core.database import Database
from .core.dependencies import FDSet, FunctionalDependency
from .core.facts import Constant, Fact
from .core.queries import Atom, ConjunctiveQuery, QueryError, Variable
from .core.schema import Schema
from .engine.batch import BatchRequest


class InstanceFormatError(ValueError):
    """Raised for malformed instance documents or query strings."""


# -- instances -----------------------------------------------------------------------


def instance_from_dict(document: Mapping[str, Any]) -> tuple[Database, FDSet]:
    """Parse an instance document into ``(Database, FDSet)``."""
    try:
        schema_spec = document["schema"]
        fact_rows = document["facts"]
        fd_rows = document["fds"]
    except KeyError as missing:
        raise InstanceFormatError(f"instance document lacks key {missing}") from None
    schema = Schema.from_spec({name: list(attrs) for name, attrs in schema_spec.items()})
    facts = []
    for row in fact_rows:
        if not isinstance(row, (list, tuple)) or len(row) < 2:
            raise InstanceFormatError(f"malformed fact row {row!r}")
        relation, *values = row
        facts.append(Fact(str(relation), tuple(_freeze(v) for v in values)))
    dependencies = []
    for row in fd_rows:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise InstanceFormatError(f"malformed fd row {row!r}")
        relation, lhs, rhs = row
        dependencies.append(
            FunctionalDependency(str(relation), frozenset(lhs), frozenset(rhs))
        )
    database = Database(facts, schema=schema)
    return database, FDSet(schema, dependencies)


def instance_to_dict(database: Database, constraints: FDSet) -> dict[str, Any]:
    """Serialize ``(Database, FDSet)`` to the instance document format."""
    schema = constraints.schema
    return {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "facts": [[f.relation, *f.values] for f in database.sorted_facts()],
        "fds": [
            [d.relation, sorted(d.lhs), sorted(d.rhs)] for d in constraints
        ],
    }


def load_instance(path: str) -> tuple[Database, FDSet]:
    """Load an instance from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))


def save_instance(path: str, database: Database, constraints: FDSet) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(database, constraints), handle, indent=2)


def _freeze(value: Any) -> Constant:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


# -- batch workloads -------------------------------------------------------------------

_GENERATORS_BY_NAME = {generator.name: generator for generator in ALL_GENERATORS}
_WORKLOAD_METHODS = ("auto", "fixed", "dklr")
_WORKLOAD_MODES = ("fixed", "adaptive")
_WORKLOAD_BACKENDS = ("auto", "vector", "scalar")


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed workload: the request rows plus execution options.

    ``mode`` selects the estimation strategy (``"fixed"`` classical
    estimators, ``"adaptive"`` sequential early stopping), ``cache_dir``
    names a persistent :class:`~repro.engine.store.CacheStore` directory,
    and ``backend`` pins the sample plane (``"auto"`` | ``"vector"`` |
    ``"scalar"`` — pin one for reproducibility across machines with and
    without numpy); all default to CLI-flag overridable values.
    """

    requests: list = field(default_factory=list)
    mode: str = "fixed"
    cache_dir: str | None = None
    backend: str = "auto"


def workload_spec_from_dict(
    document: Mapping[str, Any], *, base_dir: str | None = None
) -> WorkloadSpec:
    """Parse a workload document including the top-level execution options.

    ``mode`` must be one of ``"fixed"`` / ``"adaptive"``; a relative
    ``cache_dir`` resolves against ``base_dir`` (the workload file's
    directory when loaded from disk).
    """
    requests = workload_from_dict(document, base_dir=base_dir)
    mode = document.get("mode", "fixed")
    if mode not in _WORKLOAD_MODES:
        raise InstanceFormatError(
            f"unknown mode {mode!r}; choose from {_WORKLOAD_MODES}"
        )
    cache_dir = document.get("cache_dir")
    if cache_dir is not None:
        if not isinstance(cache_dir, str):
            raise InstanceFormatError("'cache_dir' must be a path string")
        if base_dir is not None and not os.path.isabs(cache_dir):
            cache_dir = os.path.join(base_dir, cache_dir)
    backend = document.get("backend", "auto")
    if backend not in _WORKLOAD_BACKENDS:
        raise InstanceFormatError(
            f"unknown backend {backend!r}; choose from {_WORKLOAD_BACKENDS}"
        )
    return WorkloadSpec(
        requests=requests, mode=mode, cache_dir=cache_dir, backend=backend
    )


def load_workload_spec(path: str) -> WorkloadSpec:
    """Load a workload file as a :class:`WorkloadSpec` (requests + options)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return workload_spec_from_dict(
        document, base_dir=os.path.dirname(os.path.abspath(path))
    )


def workload_from_dict(
    document: Mapping[str, Any], *, base_dir: str | None = None
) -> list[BatchRequest]:
    """Parse a workload document into :class:`~repro.engine.batch.BatchRequest` rows.

    ``instances`` maps names to inline instance documents or to paths of
    instance JSON files (resolved against ``base_dir`` when relative).  Each
    request names an instance and a query and gives either one ``answer``
    tuple or ``"answers": "all"``, which expands to every candidate tuple of
    ``Q(D)`` in deterministic order.  ``defaults`` supplies fallback values
    for ``generator``, ``epsilon``, ``delta``, ``method`` and
    ``max_samples``.
    """
    try:
        instance_specs = document["instances"]
        request_rows = document["requests"]
    except (KeyError, TypeError):
        raise InstanceFormatError(
            "workload document needs 'instances' and 'requests' keys"
        ) from None
    defaults = document.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise InstanceFormatError("workload 'defaults' must be an object")
    if not isinstance(instance_specs, Mapping):
        raise InstanceFormatError("workload 'instances' must be an object")
    instances: dict[str, tuple[Database, FDSet]] = {}
    for name, spec in instance_specs.items():
        if isinstance(spec, str):
            path = spec
            if base_dir is not None and not os.path.isabs(path):
                path = os.path.join(base_dir, path)
            instances[name] = load_instance(path)
        elif isinstance(spec, Mapping):
            instances[name] = instance_from_dict(spec)
        else:
            raise InstanceFormatError(
                f"instance {name!r} must be a document or a file path"
            )
    requests: list[BatchRequest] = []
    for row in request_rows:
        if not isinstance(row, Mapping):
            raise InstanceFormatError(f"malformed request row {row!r}")
        name = row.get("instance")
        if name not in instances:
            raise InstanceFormatError(
                f"request names unknown instance {name!r}; "
                f"declared: {sorted(instances)}"
            )
        database, constraints = instances[name]
        generator_name = row.get("generator", defaults.get("generator", "M_ur"))
        generator = _GENERATORS_BY_NAME.get(generator_name)
        if generator is None:
            raise InstanceFormatError(
                f"unknown generator {generator_name!r}; "
                f"choose from {sorted(_GENERATORS_BY_NAME)}"
            )
        if "query" not in row:
            raise InstanceFormatError(f"request row lacks a 'query': {row!r}")
        query = parse_query(row["query"])
        method = row.get("method", defaults.get("method", "auto"))
        if method not in _WORKLOAD_METHODS:
            raise InstanceFormatError(
                f"unknown method {method!r}; choose from {_WORKLOAD_METHODS}"
            )
        max_samples = row.get("max_samples", defaults.get("max_samples"))
        common = dict(
            database=database,
            constraints=constraints,
            generator=generator,
            query=query,
            epsilon=float(row.get("epsilon", defaults.get("epsilon", 0.2))),
            delta=float(row.get("delta", defaults.get("delta", 0.05))),
            method=method,
            max_samples=None if max_samples is None else int(max_samples),
            label=str(name),
        )
        if "answers" in row:
            if row["answers"] != "all":
                raise InstanceFormatError(
                    f"'answers' must be the string 'all', got {row['answers']!r}"
                )
            if "answer" in row:
                raise InstanceFormatError(
                    "give either 'answer' or 'answers': 'all', not both"
                )
            for candidate in sorted(query.answers(database), key=repr):
                requests.append(BatchRequest(answer=candidate, **common))
        else:
            raw_answer = row.get("answer", [])
            if not isinstance(raw_answer, (list, tuple)):
                raise InstanceFormatError(
                    f"'answer' must be a list of values, got {raw_answer!r}"
                )
            answer = tuple(_freeze(v) for v in raw_answer)
            if len(answer) != len(query.answer_variables):
                raise InstanceFormatError(
                    f"answer {answer!r} has arity {len(answer)} but query "
                    f"{row['query']!r} expects {len(query.answer_variables)} "
                    "(use 'answers': 'all' to enumerate candidates)"
                )
            requests.append(BatchRequest(answer=answer, **common))
    return requests


def load_workload(path: str) -> list[BatchRequest]:
    """Load a batch workload from a JSON file (see ``docs/FORMATS.md``).

    Relative instance paths inside the workload resolve against the
    workload file's own directory.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return workload_from_dict(
        document, base_dir=os.path.dirname(os.path.abspath(path))
    )


def batch_result_to_row(outcome) -> dict[str, Any]:
    """One :class:`~repro.engine.batch.BatchResult` as a JSON-native row.

    The single row schema every machine-readable surface emits —
    ``python -m repro batch --json`` and the service HTTP API both build
    their output through here, so the two can never drift.  Successful
    rows carry ``estimate`` / ``samples`` / ``method`` / ``certified_zero``
    (plus ``interval`` when the estimator produced one); failed rows carry
    ``error`` instead.
    """
    request = outcome.request
    row: dict[str, Any] = {
        "instance": request.label,
        "generator": request.generator.name,
        "query": str(request.query),
        "answer": list(request.answer),
    }
    if outcome.ok:
        row.update(
            estimate=outcome.result.estimate,
            samples=outcome.result.samples_used,
            method=outcome.result.method,
            certified_zero=outcome.result.certified_zero,
        )
        interval = getattr(outcome.result, "interval", None)
        if interval is not None:
            row["interval"] = [interval.lower, interval.upper]
    else:
        row["error"] = outcome.error
    return row


def batch_results_to_rows(results) -> list[dict[str, Any]]:
    """Serialize a ``batch_estimate`` result list to JSON-native rows."""
    return [batch_result_to_row(outcome) for outcome in results]


# -- queries --------------------------------------------------------------------------

_QUERY_SHAPE = re.compile(r"^\s*Ans\s*\((?P<head>[^)]*)\)\s*:-\s*(?P<body>.+)$")
_ATOM_SHAPE = re.compile(r"\s*(?P<relation>\w+)\s*\((?P<terms>[^)]*)\)\s*")


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``Ans(?x) :- R(?x, a), S(1)`` into a :class:`ConjunctiveQuery`."""
    match = _QUERY_SHAPE.match(text)
    if match is None:
        raise InstanceFormatError(
            f"query {text!r} does not match 'Ans(...) :- atom, atom, ...'"
        )
    head = [
        _parse_term(token)
        for token in _split_terms(match.group("head"))
    ]
    for term in head:
        if not isinstance(term, Variable):
            raise InstanceFormatError("answer positions must be ?variables")
    atoms = []
    rest = match.group("body")
    position = 0
    while position < len(rest):
        atom_match = _ATOM_SHAPE.match(rest, position)
        if atom_match is None:
            raise InstanceFormatError(f"cannot parse atom at ...{rest[position:]!r}")
        terms = tuple(
            _parse_term(token) for token in _split_terms(atom_match.group("terms"))
        )
        if not terms:
            raise InstanceFormatError("atoms need at least one term")
        atoms.append(Atom(atom_match.group("relation"), terms))
        position = atom_match.end()
        if position < len(rest):
            if rest[position] != ",":
                raise InstanceFormatError(
                    f"expected ',' between atoms at ...{rest[position:]!r}"
                )
            position += 1
    try:
        return ConjunctiveQuery(tuple(head), tuple(atoms))
    except QueryError as error:
        raise InstanceFormatError(str(error)) from None


def format_query(query: ConjunctiveQuery) -> str:
    """The inverse of :func:`parse_query` (up to whitespace)."""
    head = ", ".join(f"?{v.name}" for v in query.answer_variables)
    atoms = []
    for atom in query.atoms:
        terms = ", ".join(
            f"?{t.name}" if isinstance(t, Variable) else str(t) for t in atom.terms
        )
        atoms.append(f"{atom.relation}({terms})")
    return f"Ans({head}) :- " + ", ".join(atoms)


def _split_terms(raw: str) -> list[str]:
    stripped = raw.strip()
    if not stripped:
        return []
    return [token.strip() for token in stripped.split(",")]


def _parse_term(token: str) -> Variable | Constant:
    if not token:
        raise InstanceFormatError("empty term")
    if token.startswith("?"):
        name = token[1:]
        if not name:
            raise InstanceFormatError("variable needs a name after '?'")
        return Variable(name)
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if (token.startswith("'") and token.endswith("'")) or (
        token.startswith('"') and token.endswith('"')
    ):
        return token[1:-1]
    return token
