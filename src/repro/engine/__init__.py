"""Batched estimation engine: sessions, shared sample pools, workload planning.

One :class:`EstimationSession` per ``(database, constraints, generator)``
amortizes block decompositions, witness images and — via
:class:`SamplePool` — the Monte-Carlo sampling pass itself across many
``(query, answer)`` requests; :func:`batch_estimate` plans a mixed workload
over these sessions, optionally in adaptive early-stopping mode
(``mode="adaptive"``) and/or against a persistent cross-run
:class:`CacheStore` (``cache_dir=...``).  See ``docs/ARCHITECTURE.md`` for
how this layer sits on top of the paper's samplers and bounds.
"""

from .batch import BatchRequest, BatchResult, batch_estimate
from .session import DEFAULT_BATCH_SIZE, EstimationSession, SamplePool
from .store import STORE_VERSION, CacheEntry, CacheStore, instance_cache_key

__all__ = [
    "BatchRequest",
    "BatchResult",
    "CacheEntry",
    "CacheStore",
    "DEFAULT_BATCH_SIZE",
    "EstimationSession",
    "STORE_VERSION",
    "SamplePool",
    "batch_estimate",
    "instance_cache_key",
]
