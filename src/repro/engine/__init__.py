"""Batched estimation engine: sessions, shared sample pools, workload planning.

One :class:`EstimationSession` per ``(database, constraints, generator)``
amortizes block decompositions, witness images and — via
:class:`SamplePool` — the Monte-Carlo sampling pass itself across many
``(query, answer)`` requests; :func:`batch_estimate` plans a mixed workload
over these sessions, optionally in adaptive early-stopping mode
(``mode="adaptive"``) and/or against a persistent cross-run
:class:`CacheStore` (``cache_dir=...``).  The store is crash-consistent
(fsynced commits, per-entry content digests) and auditable offline with
:func:`fsck_store` (``python -m repro fsck``); absorbed store failures are
accounted in a :class:`StoreErrorLog`.  See ``docs/ARCHITECTURE.md`` for
how this layer sits on top of the paper's samplers and bounds.
"""

from .batch import BatchRequest, BatchResult, batch_estimate
from .session import DEFAULT_BATCH_SIZE, EstimationSession, SamplePool
from .store import (
    STORE_VERSION,
    CacheEntry,
    CacheSerializationError,
    CacheStore,
    FsckReport,
    StoreErrorLog,
    fsck_store,
    instance_cache_key,
)

__all__ = [
    "BatchRequest",
    "BatchResult",
    "CacheEntry",
    "CacheSerializationError",
    "CacheStore",
    "DEFAULT_BATCH_SIZE",
    "EstimationSession",
    "FsckReport",
    "STORE_VERSION",
    "SamplePool",
    "StoreErrorLog",
    "batch_estimate",
    "fsck_store",
    "instance_cache_key",
]
