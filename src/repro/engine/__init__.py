"""Batched estimation engine: sessions, shared sample pools, workload planning.

One :class:`EstimationSession` per ``(database, constraints, generator)``
amortizes block decompositions, witness images and — via
:class:`SamplePool` — the Monte-Carlo sampling pass itself across many
``(query, answer)`` requests; :func:`batch_estimate` plans a mixed workload
over these sessions.  See ``docs/ARCHITECTURE.md`` for how this layer sits
on top of the paper's samplers and bounds.
"""

from .batch import BatchRequest, BatchResult, batch_estimate
from .session import EstimationSession, SamplePool

__all__ = [
    "BatchRequest",
    "BatchResult",
    "EstimationSession",
    "SamplePool",
    "batch_estimate",
]
