"""Estimation sessions: amortized Monte-Carlo OCQA over one instance.

:func:`repro.approx.fpras.fpras_ocqa` answers a single ``P_{M_Σ,Q}(D, c̄)``
question per call and pays the full setup cost every time: the block
decomposition is recomputed, the CRS counts re-derived, and — far worse — a
fresh stream of sampled repairs is drawn even when fifty candidate answers
share the same database.  :class:`EstimationSession` binds one
``(D, Σ, M_Σ)`` triple and amortizes all of that:

* **structural caches** — the block decomposition (Lemma 5.2) is computed
  once and shared by every sampler the session builds; the CRS counting
  DPs (Lemma C.1) are memoized process-wide already and hit warm.
* **witness caches** — for each ``(Q, c̄)`` the session enumerates the
  homomorphism images ``h(Q)`` with ``h(x̄) = c̄`` once, over ``D``.  A
  sampled repair ``S ⊆ D`` satisfies ``c̄ ∈ Q(S)`` iff it contains one of
  the inclusion-minimal images, so per-sample evaluation drops from a
  fresh backtracking join to a few frozenset containment tests.
* **shared sample pools** — :class:`SamplePool` materializes one seeded
  stream of sampled repairs lazily; every request evaluates against the
  prefix it needs, so ``N`` requests cost one sampling pass plus ``N``
  cheap evaluations instead of ``N`` independent Monte-Carlo runs.

Determinism contract: the pool's ``k``-th sample equals the ``k``-th draw
that a per-call run seeded identically would make, so pooled estimates are
*bit-for-bit identical* to per-call :func:`~repro.approx.fpras.fpras_ocqa`
results under the same seed (``tests/test_engine.py`` asserts this).

Two layers sit on top of the fixed estimators:

* **adaptive estimation** — :meth:`EstimationSession.estimate_adaptive`
  runs a sequential early-stopping estimator
  (:mod:`repro.approx.adaptive`) over the pool prefix, and
  :meth:`EstimationSession.estimate_adaptive_many` schedules many such
  estimators in doubling rounds over one shared pool (its length is the
  slowest stopping time, not the sum);
* **persistence** — an attached :class:`~repro.engine.store.CacheEntry`
  makes decompositions, possibility verdicts, positivity bounds and the
  pool's sample prefix survive the process
  (:meth:`EstimationSession.cached_pool` resumes the stream bit-for-bit).

Scope enforcement is unchanged: combinations outside the paper's positive
results raise :class:`~repro.approx.fpras.FPRASUnavailable` with the same
messages as the per-call API.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..approx.adaptive import AdaptiveResult, SequentialEstimator
from ..approx.bounds import (
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_singleton_fd_lower_bound,
)
from ..approx.intervals import ConfidenceInterval
from ..approx.montecarlo import (
    EstimateResult,
    chernoff_sample_size,
    fixed_sample_estimate,
    stopping_rule_estimate,
)
from ..chains.generators import (
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.queries import ConjunctiveQuery, QueryError, _bind_answer
from ..exact.possibility import image_is_consistent
from ..sampling.operations_sampler import UniformOperationsSampler
from ..sampling.repair_sampler import RepairSampler
from ..sampling.rng import resolve_rng
from ..sampling.sequence_sampler import SequenceSampler

if TYPE_CHECKING:  # pragma: no cover - type-only (store imports session's pool)
    from .store import CacheEntry


def _unavailable(message: str) -> RuntimeError:
    # Deferred import: fpras.py routes through this module, so the class
    # stays at its public home without a circular module-level import.
    from ..approx.fpras import FPRASUnavailable

    return FPRASUnavailable(message)


class SamplePool:
    """A lazily materialized, seeded stream of sampled repairs.

    Samples are stored as fact sets and grown on demand; request ``i``
    evaluates against positions ``0 .. n_i`` of the *same* stream.  Because
    every request reads from position zero, a pooled estimate consumes
    exactly the prefix a fresh per-call run (seeded like the pool) would
    draw — which is what makes pooled results bit-for-bit reproducible
    against the per-call API.

    Replay requires retention: the pool keeps every drawn sample for its
    lifetime (unlike the per-call path, which streams and discards).  For
    adaptive ``dklr`` requests on near-zero probabilities, pass
    ``max_samples`` to bound the prefix — an unbounded stopping-rule run
    would grow the pool without limit.

    ``preloaded`` warm-starts the stream with samples persisted by a
    :class:`~repro.engine.store.CacheEntry`; ``draw`` is then only invoked
    past the preloaded prefix (the caller must hand it an RNG restored to
    the state recorded after the last persisted draw, so the stream
    continues bit-for-bit).
    """

    def __init__(
        self,
        draw: Callable[[], frozenset[Fact]],
        preloaded: Iterable[frozenset[Fact]] | None = None,
    ):
        self._draw = draw
        self._samples: list[frozenset[Fact]] = list(preloaded or ())

    def __len__(self) -> int:
        """Number of samples materialized so far (not a limit)."""
        return len(self._samples)

    def sample_at(self, index: int) -> frozenset[Fact]:
        """The ``index``-th sample of the stream, drawing as needed."""
        while len(self._samples) <= index:
            self._samples.append(self._draw())
        return self._samples[index]

    def prefix(self, length: int) -> Sequence[frozenset[Fact]]:
        """The first ``length`` samples (materializing them if necessary)."""
        if length > 0:
            self.sample_at(length - 1)
        return self._samples[:length]

    def materialized_samples(self) -> Sequence[frozenset[Fact]]:
        """Every sample drawn so far (used by the cache store to persist)."""
        return self._samples


class EstimationSession:
    """Shared-state estimator for one ``(database, constraints, generator)``.

    All public entry points mirror the per-call FPRAS API; see the module
    docstring for the caching and determinism guarantees.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
        cache: "CacheEntry | None" = None,
    ):
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.cache = cache
        self._decomposition: BlockDecomposition | None = None
        self._witnesses: dict[
            tuple[ConjunctiveQuery, tuple], tuple[frozenset[Fact], ...]
        ] = {}
        self._possible: dict[tuple[ConjunctiveQuery, tuple], bool] = {}
        self._bounds: dict[ConjunctiveQuery, float] = {}

    # -- structural caches ---------------------------------------------------------

    def decomposition(self) -> BlockDecomposition:
        """The block decomposition of ``(D, Σ)``, computed once (primary keys).

        With a cache entry attached, a persisted decomposition is decoded
        instead of recomputed (and a fresh one is recorded for next time).
        """
        if self._decomposition is None:
            if self.cache is not None:
                self._decomposition = self.cache.get_decomposition()
            if self._decomposition is None:
                self._decomposition = block_decomposition(
                    self.database, self.constraints
                )
                if self.cache is not None:
                    self.cache.set_decomposition(self._decomposition)
        return self._decomposition

    def ensure_supported(self) -> None:
        """Raise :class:`FPRASUnavailable` outside the paper's positive results.

        The checks and messages match :func:`repro.approx.fpras.fpras_ocqa`
        exactly (Theorems 5.1(2), 6.1(2), 7.1(2), 7.5, E.1(2), E.8(2)).
        """
        generator = self.generator
        if isinstance(generator, UniformRepairs):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_ur beyond primary keys: no FPRAS for FDs unless RP = NP "
                    "(Theorem 5.1(3)); keys are open (Prop 5.5 rules out repair "
                    "counting)."
                )
        elif isinstance(generator, UniformSequences):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_us beyond primary keys is open; the paper conjectures no "
                    "FPRAS even for keys (Section 6)."
                )
        elif isinstance(generator, UniformOperations):
            if not generator.singleton_only and not self.constraints.all_keys():
                raise _unavailable(
                    "M_uo with non-key FDs: the target probability can be "
                    "exponentially small (Prop D.6), so Monte Carlo cannot give "
                    "an FPRAS; use M_uo,1 (Theorem 7.5) instead."
                )
        else:
            raise _unavailable(
                f"no FPRAS dispatch for generator {generator.name!r}"
            )

    def sampler(self, rng: random.Random | None = None):
        """A sampler for the session's generator, reusing cached structure."""
        self.ensure_supported()
        rng = resolve_rng(rng)
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            return RepairSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
            )
        if isinstance(self.generator, UniformSequences):
            return SequenceSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
            )
        return UniformOperationsSampler(self.database, self.constraints, singleton, rng)

    def _draw_facts(self, rng: random.Random | None) -> Callable[[], frozenset[Fact]]:
        """A thunk drawing one sampled repair as a fact set."""
        sampler = self.sampler(rng)
        if isinstance(sampler, SequenceSampler):
            return lambda: sampler.sample_result().facts
        return lambda: sampler.sample().facts

    def pool(self, rng: random.Random | None = None) -> SamplePool:
        """One shared, lazily grown sample stream for this session."""
        return SamplePool(self._draw_facts(resolve_rng(rng)))

    def cached_pool(self, seed: int | None) -> SamplePool:
        """A pool warm-started from the session's cache entry (if possible).

        Persisted samples preload the stream and the RNG resumes from the
        recorded state, so warm draws continue the cold run's stream
        bit-for-bit.  Without a cache entry or a seed this degrades to a
        plain :meth:`pool` (an unseeded stream is not reproducible, so
        persisting it would be meaningless).
        """
        rng = random.Random(seed) if seed is not None else None
        if self.cache is None or rng is None:
            return self.pool(rng)
        preloaded = self.cache.preload_samples()
        state = self.cache.rng_state() if preloaded else None
        if state is not None:
            try:
                rng.setstate(state)
            except (TypeError, ValueError, OverflowError):
                # Shape-valid but meaningless state vectors (tampering)
                # raise any of these from the C implementation.
                state = None
                rng = random.Random(seed)
        if preloaded and state is None:
            # Samples without a usable post-draw RNG state cannot be
            # extended consistently: drop them so the entry is rewritten.
            self.cache.discard_samples()
            preloaded = []
        shared = SamplePool(self._draw_facts(rng), preloaded=preloaded)
        self.cache.attach_pool(shared, rng)
        return shared

    # -- per-(query, answer) caches --------------------------------------------------

    def positivity_bound(self, query: ConjunctiveQuery) -> float:
        """The paper's positivity lower bound for this generator and query.

        Mirrors the per-call dispatch: Lemmas 5.3 / 6.3 for ``M_ur`` /
        ``M_us``, Lemmas E.3 / E.10 for their singleton variants, Lemma D.8
        for ``M_uo,1``; for plain ``M_uo`` the pragmatic ``rrfreq`` floor
        stands in for Prop 7.3's astronomically small polynomial.
        """
        cached = self._bounds.get(query)
        if cached is not None:
            return cached
        self.ensure_supported()
        if self.cache is not None:
            persisted = self.cache.get_bound(query)
            if persisted is not None:
                self._bounds[query] = persisted
                return persisted
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else rrfreq_lower_bound(self.database, query)
            )
        elif isinstance(self.generator, UniformSequences):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else srfreq_lower_bound(self.database, query)
            )
        elif singleton:
            bound = uo_singleton_fd_lower_bound(self.database, query)
        else:
            bound = rrfreq_lower_bound(self.database, query)
        value = float(bound)
        self._bounds[query] = value
        if self.cache is not None:
            self.cache.set_bound(query, value)
        return value

    def witnesses(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> tuple[frozenset[Fact], ...]:
        """Inclusion-minimal homomorphism images ``h(Q)`` with ``h(x̄) = c̄``.

        Every sampled repair is a subset of ``D``, so a sample ``S`` entails
        the answer iff ``w ⊆ S`` for some witness ``w`` — evaluated once per
        sample with subset tests instead of a backtracking join.  An empty
        tuple means no homomorphism exists (probability zero everywhere).
        """
        key = (query, answer)
        cached = self._witnesses.get(key)
        if cached is None:
            cached = self._compute_witnesses(query, answer)
            self._witnesses[key] = cached
        return cached

    def _compute_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        if len(answer) != len(query.answer_variables):
            return ()
        # The same binding ``entails`` uses, so the witness semantics can
        # never drift from direct query evaluation.
        fixed = _bind_answer(query.answer_variables, answer)
        if fixed is None:
            return ()
        images = set()
        for homomorphism in query.homomorphisms(self.database, fixed=fixed):
            images.add(query.image(homomorphism))
        minimal = [
            image for image in images if not any(other < image for other in images)
        ]
        minimal.sort(key=lambda image: (len(image), sorted(map(str, image))))
        return tuple(minimal)

    def is_possible(self, query: ConjunctiveQuery, answer: tuple = ()) -> bool:
        """Cached polynomial zero-test (see :mod:`repro.exact.possibility`).

        ``P > 0`` under every uniform generator iff some witness image is
        conflict-free; pairwise consistency is closed under subsets, so
        checking the inclusion-minimal witnesses is equivalent.
        """
        key = (query, answer)
        cached = self._possible.get(key)
        if cached is None:
            if self.cache is not None:
                cached = self.cache.get_possible(query, answer)
            if cached is None:
                cached = any(
                    image_is_consistent(witness, self.constraints)
                    for witness in self.witnesses(query, answer)
                )
                if self.cache is not None:
                    self.cache.set_possible(query, answer, cached)
            self._possible[key] = cached
        return cached

    @staticmethod
    def _entails_sample(
        witnesses: tuple[frozenset[Fact], ...], facts: frozenset[Fact]
    ) -> bool:
        return any(witness <= facts for witness in witnesses)

    # -- estimation ------------------------------------------------------------------

    def estimate(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fpras_ocqa`.

        Draws a fresh sample stream from ``rng``; the result is bit-for-bit
        identical to the per-call API under the same seed, the caches only
        make it cheaper.
        """
        rng = resolve_rng(rng)
        draw_facts = self._draw_facts(rng)  # raises FPRASUnavailable first
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        witnesses = self.witnesses(query, answer)

        def draw() -> float:
            return 1.0 if self._entails_sample(witnesses, draw_facts()) else 0.0

        return self._run(draw, query, epsilon, delta, method, p_lower, max_samples)

    def estimate_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Like :meth:`estimate`, but drawing from a shared :class:`SamplePool`.

        Each request reads the pool from position zero, so the result equals
        ``estimate(..., rng=random.Random(seed))`` whenever ``pool`` was
        seeded with the same seed — while ``N`` pooled requests share one
        sampling pass instead of performing ``N``.
        """
        self.ensure_supported()
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        witnesses = self.witnesses(query, answer)
        position = 0

        def draw() -> float:
            nonlocal position
            facts = pool.sample_at(position)
            position += 1
            return 1.0 if self._entails_sample(witnesses, facts) else 0.0

        return self._run(draw, query, epsilon, delta, method, p_lower, max_samples)

    def estimate_many(
        self,
        requests: Iterable[tuple[ConjunctiveQuery, tuple]],
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        rng: random.Random | None = None,
        max_samples: int | None = None,
        pool: SamplePool | None = None,
        mode: str = "fixed",
    ) -> list[EstimateResult | AdaptiveResult]:
        """Score many ``(query, answer)`` pairs against one shared pool.

        ``mode="fixed"`` (default) runs each request's classical estimator
        against the pool; ``mode="adaptive"`` instead runs all requests as
        concurrent sequential estimators scheduled in doubling rounds (see
        :meth:`estimate_adaptive_many`), ignoring ``method``.
        """
        if pool is None:
            pool = self.pool(rng)
        if mode == "adaptive":
            specs = [
                (query, answer, epsilon, delta, max_samples)
                for query, answer in requests
            ]
            return self.estimate_adaptive_many(pool, specs)
        if mode != "fixed":
            raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
        return [
            self.estimate_pooled(
                pool,
                query,
                answer,
                epsilon=epsilon,
                delta=delta,
                method=method,
                max_samples=max_samples,
            )
            for query, answer in requests
        ]

    # -- adaptive estimation -----------------------------------------------------------

    def estimate_adaptive(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        pool: SamplePool | None = None,
        max_samples: int | None = None,
    ) -> AdaptiveResult:
        """Sequential early-stopping estimate of ``P_{M_Σ,Q}(D, c̄)``.

        Runs a :class:`~repro.approx.adaptive.SequentialEstimator` over the
        pool's prefix (a fresh ``rng``-seeded pool when none is given).  The
        (ε, δ) contract matches the fixed path — the estimator's fallback
        cap *is* the fixed Chernoff budget — but easy answers stop after a
        small fraction of it.  Reading the pool from position zero keeps
        adaptive runs replayable against fixed runs on the same seed.
        """
        if pool is None:
            pool = self.pool(rng)
        else:
            self.ensure_supported()
        (result,) = self.estimate_adaptive_many(
            pool, [(query, answer, epsilon, delta, max_samples)]
        )
        return result

    def adaptive_estimator(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        max_samples: int | None = None,
    ) -> SequentialEstimator:
        """A sequential estimator for one request, with this query's bound.

        The single construction point for adaptive estimators — the batch
        planner rehearses through it for per-request error isolation, and
        :meth:`estimate_adaptive_many` builds the real ones through it, so
        the validated parameters can never drift apart.
        """
        return SequentialEstimator(
            epsilon,
            delta,
            p_lower=self.positivity_bound(query),
            max_samples=max_samples,
        )

    def estimate_adaptive_many(
        self,
        pool: SamplePool,
        specs: Sequence[tuple[ConjunctiveQuery, tuple, float, float, int | None]],
        *,
        initial_round: int = 64,
    ) -> list[AdaptiveResult]:
        """Run many sequential estimators against one pool in doubling rounds.

        ``specs`` rows are ``(query, answer, epsilon, delta, max_samples)``.
        Rounds double a shared position target (capped by the largest
        surviving estimator's own sample cap); every pending estimator
        consumes the same pool prefix up to the round target, with samples
        drawn on demand — so ``N`` concurrent adaptive requests cost one
        sampling pass whose length is the *maximum* (not the sum) of their
        stopping times, and nothing is drawn past the slowest stop.
        Certified-impossible answers never touch the pool, and results are
        identical to running :meth:`estimate_adaptive` per request against
        the same pool.
        """
        self.ensure_supported()
        results: list[AdaptiveResult | None] = [None] * len(specs)
        pending: list[list] = []  # [index, witnesses, estimator, position]
        for index, (query, answer, epsilon, delta, max_samples) in enumerate(specs):
            if not self.is_possible(query, answer):
                results[index] = self._certified_zero_adaptive(epsilon, delta)
                continue
            estimator = self.adaptive_estimator(query, epsilon, delta, max_samples)
            pending.append([index, self.witnesses(query, answer), estimator, 0])
        target = initial_round
        while pending:
            goal = min(target, max(state[2].sample_cap for state in pending))
            still_pending = []
            for state in pending:
                index, witnesses, estimator, position = state
                while position < goal and not estimator.decided:
                    hit = self._entails_sample(witnesses, pool.sample_at(position))
                    position += 1
                    estimator.offer(1.0 if hit else 0.0)
                state[3] = position
                if estimator.decided:
                    results[index] = estimator.result()
                else:
                    still_pending.append(state)
            pending = still_pending
            target *= 2
        return results  # type: ignore[return-value]  # every slot is filled above

    @staticmethod
    def _certified_zero_adaptive(epsilon: float, delta: float) -> AdaptiveResult:
        return AdaptiveResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            interval=ConfidenceInterval(
                lower=0.0, upper=0.0, confidence=1.0, method="possibility-zero"
            ),
            certified_zero=True,
        )

    def fixed_budget(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
        rng: random.Random | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fixed_budget_estimate`."""
        rng = resolve_rng(rng)
        draw_facts = self._draw_facts(rng)
        witnesses = self._budget_witnesses(query, answer)
        hits = sum(
            1 for _ in range(samples) if self._entails_sample(witnesses, draw_facts())
        )
        return self._budget_result(hits, samples)

    def fixed_budget_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
    ) -> EstimateResult:
        """Fixed-budget estimate over a shared pool's first ``samples`` draws."""
        self.ensure_supported()
        witnesses = self._budget_witnesses(query, answer)
        hits = sum(
            1
            for index in range(samples)
            if self._entails_sample(witnesses, pool.sample_at(index))
        )
        return self._budget_result(hits, samples)

    def _budget_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        # The budget estimators keep entails()'s arity error, which the
        # (ε, δ) path never reaches (its zero-test returns first).
        if len(answer) != len(query.answer_variables):
            raise QueryError(
                f"answer arity {len(answer)} does not match "
                f"|x̄| = {len(query.answer_variables)}"
            )
        return self.witnesses(query, answer)

    @staticmethod
    def _budget_result(hits: int, samples: int) -> EstimateResult:
        return EstimateResult(
            estimate=hits / samples,
            samples_used=samples,
            epsilon=float("nan"),
            delta=float("nan"),
            method="fixed-budget",
            certified_zero=(hits == 0),
        )

    @staticmethod
    def _certified_zero(epsilon: float, delta: float) -> EstimateResult:
        # The polynomial zero-test: no conflict-free image of the query
        # exists, so the probability is exactly 0 under every generator —
        # certify without spending a single sample.
        return EstimateResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            certified_zero=True,
        )

    def _run(
        self,
        draw: Callable[[], float],
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        method: str,
        p_lower: float | None,
        max_samples: int | None,
    ) -> EstimateResult:
        from ..approx.fpras import AUTO_FIXED_BUDGET

        bound = p_lower if p_lower is not None else self.positivity_bound(query)
        if method == "auto":
            budget = chernoff_sample_size(epsilon, delta, bound)
            method = "fixed" if budget <= AUTO_FIXED_BUDGET else "dklr"
        if method == "fixed":
            return fixed_sample_estimate(draw, epsilon, delta, bound)
        if method == "dklr":
            return stopping_rule_estimate(draw, epsilon, delta, max_samples=max_samples)
        raise ValueError(f"unknown method {method!r}")
