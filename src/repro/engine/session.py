"""Estimation sessions: amortized Monte-Carlo OCQA over one instance.

:func:`repro.approx.fpras.fpras_ocqa` answers a single ``P_{M_Σ,Q}(D, c̄)``
question per call and pays the full setup cost every time: the block
decomposition is recomputed, the CRS counts re-derived, and — far worse — a
fresh stream of sampled repairs is drawn even when fifty candidate answers
share the same database.  :class:`EstimationSession` binds one
``(D, Σ, M_Σ)`` triple and amortizes all of that:

* **structural caches** — the block decomposition (Lemma 5.2) is computed
  once and shared by every sampler the session builds; the CRS counting
  DPs (Lemma C.1) are memoized process-wide already and hit warm.
* **witness caches** — for each ``(Q, c̄)`` the session enumerates the
  homomorphism images ``h(Q)`` with ``h(x̄) = c̄`` once, over ``D``.  A
  sampled repair ``S ⊆ D`` satisfies ``c̄ ∈ Q(S)`` iff it contains one of
  the inclusion-minimal images, so per-sample evaluation drops from a
  fresh backtracking join to a few subset tests.
* **the interned kernel** — the session interns ``D`` once into an
  :class:`~repro.core.interning.InstanceIndex` (dense fact ids), samplers
  draw survivor *id bitmasks* without constructing ``Operation`` or
  ``Database`` objects, and the minimal witness images become bitmasks too
  — "repair entails answer" is the integer subset test
  ``w & s == w``.  ``use_kernel=False`` falls back to object-path draws
  (identical results, slower; the kernel is a pure speedup).
* **shared sample pools** — :class:`SamplePool` materializes one seeded
  stream of sampled repairs lazily; every request evaluates against the
  prefix it needs, so ``N`` requests cost one sampling pass plus ``N``
  cheap evaluations instead of ``N`` independent Monte-Carlo runs.

Determinism contract: the pool's ``k``-th sample equals the ``k``-th draw
that a per-call run seeded identically would make, so pooled estimates are
*bit-for-bit identical* to per-call :func:`~repro.approx.fpras.fpras_ocqa`
results under the same seed (``tests/test_engine.py`` asserts this).

Two layers sit on top of the fixed estimators:

* **adaptive estimation** — :meth:`EstimationSession.estimate_adaptive`
  runs a sequential early-stopping estimator
  (:mod:`repro.approx.adaptive`) over the pool prefix, and
  :meth:`EstimationSession.estimate_adaptive_many` schedules many such
  estimators in doubling rounds over one shared pool (its length is the
  slowest stopping time, not the sum);
* **persistence** — an attached :class:`~repro.engine.store.CacheEntry`
  makes decompositions, possibility verdicts, positivity bounds and the
  pool's sample prefix survive the process
  (:meth:`EstimationSession.cached_pool` resumes the stream bit-for-bit).

Scope enforcement is unchanged: combinations outside the paper's positive
results raise :class:`~repro.approx.fpras.FPRASUnavailable` with the same
messages as the per-call API.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..approx.adaptive import AdaptiveResult, SequentialEstimator
from ..approx.bounds import (
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_singleton_fd_lower_bound,
)
from ..approx.intervals import ConfidenceInterval
from ..approx.montecarlo import (
    EstimateResult,
    chernoff_sample_size,
    fixed_sample_estimate,
    stopping_rule_estimate,
)
from ..chains.generators import (
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import InstanceIndex
from ..core.queries import ConjunctiveQuery, QueryError, _bind_answer
from ..exact.possibility import image_is_consistent
from ..sampling.operations_sampler import UniformOperationsSampler
from ..sampling.repair_sampler import RepairSampler
from ..sampling.rng import resolve_rng
from ..sampling.sequence_sampler import SequenceSampler

if TYPE_CHECKING:  # pragma: no cover - type-only (store imports session's pool)
    from .store import CacheEntry


def _unavailable(message: str) -> RuntimeError:
    # Deferred import: fpras.py routes through this module, so the class
    # stays at its public home without a circular module-level import.
    from ..approx.fpras import FPRASUnavailable

    return FPRASUnavailable(message)


class SamplePool:
    """A lazily materialized, seeded stream of sampled repairs.

    Samples are stored as fact sets and grown on demand; request ``i``
    evaluates against positions ``0 .. n_i`` of the *same* stream.  Because
    every request reads from position zero, a pooled estimate consumes
    exactly the prefix a fresh per-call run (seeded like the pool) would
    draw — which is what makes pooled results bit-for-bit reproducible
    against the per-call API.

    Replay requires retention: the pool keeps every drawn sample for its
    lifetime (unlike the per-call path, which streams and discards).  For
    adaptive ``dklr`` requests on near-zero probabilities, pass
    ``max_samples`` to bound the prefix — an unbounded stopping-rule run
    would grow the pool without limit.

    ``preloaded`` warm-starts the stream with samples persisted by a
    :class:`~repro.engine.store.CacheEntry`; ``draw`` is then only invoked
    past the preloaded prefix (the caller must hand it an RNG restored to
    the state recorded after the last persisted draw, so the stream
    continues bit-for-bit).

    **Interned pools.**  Pools a session builds carry its
    :class:`~repro.core.interning.InstanceIndex`: ``draw`` returns id
    *bitmasks* (one ``int`` per sample, bit ``i`` = fact ``i`` survives),
    :meth:`mask_at` is the hot-path accessor, and :meth:`sample_at`
    reconstructs fact-set objects on demand — so holding ``n`` samples
    costs ``n`` ints, not ``n`` databases.  A pool constructed without an
    index (``SamplePool(draw)``) keeps the historical contract: ``draw``
    returns fact sets and :meth:`sample_at` hands them back verbatim.
    """

    def __init__(
        self,
        draw: Callable[[], frozenset[Fact] | int],
        preloaded: Iterable[frozenset[Fact] | int] | None = None,
        index: InstanceIndex | None = None,
    ):
        self._draw = draw
        self._index = index
        self._samples: list[frozenset[Fact] | int] = list(preloaded or ())

    @property
    def interned(self) -> bool:
        """Whether samples are stored as id bitmasks over an instance index."""
        return self._index is not None

    @property
    def index(self) -> InstanceIndex | None:
        """The interning the masks refer to (``None`` for plain pools)."""
        return self._index

    def __len__(self) -> int:
        """Number of samples materialized so far (not a limit)."""
        return len(self._samples)

    def _materialize(self, index: int) -> None:
        while len(self._samples) <= index:
            self._samples.append(self._draw())

    def mask_at(self, index: int) -> int:
        """The ``index``-th sample as an id bitmask (interned pools only)."""
        if self._index is None:
            raise TypeError("mask_at() requires a pool built over an InstanceIndex")
        self._materialize(index)
        return self._samples[index]

    def mask_prefix(self, length: int) -> Sequence[int]:
        """The first ``length`` samples as bitmasks (interned pools only).

        The bulk accessor for fixed-length evaluation loops: one
        materialization check for the whole prefix instead of one per
        sample.
        """
        if self._index is None:
            raise TypeError("mask_prefix() requires a pool built over an InstanceIndex")
        if length > 0:
            self._materialize(length - 1)
        return self._samples[:length]

    def sample_at(self, index: int) -> frozenset[Fact]:
        """The ``index``-th sample of the stream as a fact set, drawing as
        needed (on interned pools the facts are reconstructed on demand)."""
        self._materialize(index)
        sample = self._samples[index]
        if self._index is not None:
            return self._index.facts_of_mask(sample)
        return sample

    def prefix(self, length: int) -> Sequence[frozenset[Fact]]:
        """The first ``length`` samples as fact sets (materializing them)."""
        if length > 0:
            self._materialize(length - 1)
        return [self.sample_at(i) for i in range(length)]

    def materialized_samples(self) -> Sequence[frozenset[Fact] | int]:
        """Every sample drawn so far, in storage form (masks on interned
        pools, fact sets otherwise) — used by the cache store to persist."""
        return self._samples


class EstimationSession:
    """Shared-state estimator for one ``(database, constraints, generator)``.

    All public entry points mirror the per-call FPRAS API; see the module
    docstring for the caching and determinism guarantees.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
        cache: "CacheEntry | None" = None,
        use_kernel: bool = True,
    ):
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.cache = cache
        #: ``False`` forces object-path draws (Operation/Database per
        #: sample).  Results are bit-for-bit identical either way — the
        #: interned kernel is a pure speedup, and the flag exists so the
        #: parity tests and benches can prove exactly that.
        self.use_kernel = use_kernel
        self._decomposition: BlockDecomposition | None = None
        self._index: InstanceIndex | None = None
        self._witnesses: dict[
            tuple[ConjunctiveQuery, tuple], tuple[frozenset[Fact], ...]
        ] = {}
        self._witness_masks: dict[tuple[ConjunctiveQuery, tuple], tuple[int, ...]] = {}
        self._possible: dict[tuple[ConjunctiveQuery, tuple], bool] = {}
        self._bounds: dict[ConjunctiveQuery, float] = {}

    # -- structural caches ---------------------------------------------------------

    def decomposition(self) -> BlockDecomposition:
        """The block decomposition of ``(D, Σ)``, computed once (primary keys).

        With a cache entry attached, a persisted decomposition is decoded
        instead of recomputed (and a fresh one is recorded for next time).
        """
        if self._decomposition is None:
            if self.cache is not None:
                self._decomposition = self.cache.get_decomposition()
            if self._decomposition is None:
                self._decomposition = block_decomposition(
                    self.database, self.constraints
                )
                if self.cache is not None:
                    self.cache.set_decomposition(self._decomposition)
        return self._decomposition

    def index(self) -> InstanceIndex:
        """The session's fact interning, built once per ``(D, Σ)``.

        For primary keys the index also carries the conflicting blocks as
        id-tuples (sharing :meth:`decomposition`); for the arbitrary-FD
        generators it interns facts and masks only.
        """
        if self._index is None:
            if self.constraints.is_primary_keys():
                self._index = InstanceIndex.of(
                    self.database, decomposition=self.decomposition()
                )
            else:
                self._index = InstanceIndex.of(self.database)
        return self._index

    def ensure_supported(self) -> None:
        """Raise :class:`FPRASUnavailable` outside the paper's positive results.

        The checks and messages match :func:`repro.approx.fpras.fpras_ocqa`
        exactly (Theorems 5.1(2), 6.1(2), 7.1(2), 7.5, E.1(2), E.8(2)).
        """
        generator = self.generator
        if isinstance(generator, UniformRepairs):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_ur beyond primary keys: no FPRAS for FDs unless RP = NP "
                    "(Theorem 5.1(3)); keys are open (Prop 5.5 rules out repair "
                    "counting)."
                )
        elif isinstance(generator, UniformSequences):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_us beyond primary keys is open; the paper conjectures no "
                    "FPRAS even for keys (Section 6)."
                )
        elif isinstance(generator, UniformOperations):
            if not generator.singleton_only and not self.constraints.all_keys():
                raise _unavailable(
                    "M_uo with non-key FDs: the target probability can be "
                    "exponentially small (Prop D.6), so Monte Carlo cannot give "
                    "an FPRAS; use M_uo,1 (Theorem 7.5) instead."
                )
        else:
            raise _unavailable(
                f"no FPRAS dispatch for generator {generator.name!r}"
            )

    def sampler(self, rng: random.Random | None = None):
        """A sampler for the session's generator, reusing cached structure."""
        self.ensure_supported()
        rng = resolve_rng(rng)
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            return RepairSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
                index=self.index(),
            )
        if isinstance(self.generator, UniformSequences):
            return SequenceSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
                index=self.index(),
            )
        return UniformOperationsSampler(self.database, self.constraints, singleton, rng)

    def _draw_facts(self, rng: random.Random | None) -> Callable[[], frozenset[Fact]]:
        """A thunk drawing one sampled repair as a fact set (object path)."""
        sampler = self.sampler(rng)
        if isinstance(sampler, SequenceSampler):
            return lambda: sampler.sample_result().facts
        return lambda: sampler.sample().facts

    def _draw_mask(self, rng: random.Random | None) -> Callable[[], int]:
        """A thunk drawing one sampled repair as an id bitmask.

        With the kernel on, the block-structured samplers draw masks
        natively (no ``Operation``/``Database`` objects per draw); the
        ``M_uo`` walk — and every sampler when ``use_kernel=False`` — draws
        objects and interns the result, which consumes the RNG identically
        and therefore yields the *same* stream, just slower.
        """
        sampler = self.sampler(rng)
        if self.use_kernel and isinstance(sampler, (RepairSampler, SequenceSampler)):
            return sampler.sample_mask
        index = self.index()
        if isinstance(sampler, SequenceSampler):
            return lambda: index.mask_of(sampler.sample_result().facts)
        return lambda: index.mask_of(sampler.sample().facts)

    def pool(self, rng: random.Random | None = None) -> SamplePool:
        """One shared, lazily grown sample stream for this session.

        The pool stores compact id bitmasks (one ``int`` per sample) over
        the session's :meth:`index`; fact-set views are reconstructed on
        demand by :meth:`SamplePool.sample_at`.
        """
        return SamplePool(self._draw_mask(resolve_rng(rng)), index=self.index())

    def cached_pool(self, seed: int | None) -> SamplePool:
        """A pool warm-started from the session's cache entry (if possible).

        Persisted samples preload the stream and the RNG resumes from the
        recorded state, so warm draws continue the cold run's stream
        bit-for-bit.  Without a cache entry or a seed this degrades to a
        plain :meth:`pool` (an unseeded stream is not reproducible, so
        persisting it would be meaningless).
        """
        rng = random.Random(seed) if seed is not None else None
        if self.cache is None or rng is None:
            return self.pool(rng)
        preloaded = self.cache.preload_sample_masks()
        state = self.cache.rng_state() if preloaded else None
        if state is not None:
            try:
                rng.setstate(state)
            except (TypeError, ValueError, OverflowError):
                # Shape-valid but meaningless state vectors (tampering)
                # raise any of these from the C implementation.
                state = None
                rng = random.Random(seed)
        if preloaded and state is None:
            # Samples without a usable post-draw RNG state cannot be
            # extended consistently: drop them so the entry is rewritten.
            self.cache.discard_samples()
            preloaded = []
        shared = SamplePool(
            self._draw_mask(rng), preloaded=preloaded, index=self.index()
        )
        self.cache.attach_pool(shared, rng)
        return shared

    # -- per-(query, answer) caches --------------------------------------------------

    def positivity_bound(self, query: ConjunctiveQuery) -> float:
        """The paper's positivity lower bound for this generator and query.

        Mirrors the per-call dispatch: Lemmas 5.3 / 6.3 for ``M_ur`` /
        ``M_us``, Lemmas E.3 / E.10 for their singleton variants, Lemma D.8
        for ``M_uo,1``; for plain ``M_uo`` the pragmatic ``rrfreq`` floor
        stands in for Prop 7.3's astronomically small polynomial.
        """
        cached = self._bounds.get(query)
        if cached is not None:
            return cached
        self.ensure_supported()
        if self.cache is not None:
            persisted = self.cache.get_bound(query)
            if persisted is not None:
                self._bounds[query] = persisted
                return persisted
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else rrfreq_lower_bound(self.database, query)
            )
        elif isinstance(self.generator, UniformSequences):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else srfreq_lower_bound(self.database, query)
            )
        elif singleton:
            bound = uo_singleton_fd_lower_bound(self.database, query)
        else:
            bound = rrfreq_lower_bound(self.database, query)
        value = float(bound)
        self._bounds[query] = value
        if self.cache is not None:
            self.cache.set_bound(query, value)
        return value

    def witnesses(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> tuple[frozenset[Fact], ...]:
        """Inclusion-minimal homomorphism images ``h(Q)`` with ``h(x̄) = c̄``.

        Every sampled repair is a subset of ``D``, so a sample ``S`` entails
        the answer iff ``w ⊆ S`` for some witness ``w`` — evaluated once per
        sample with subset tests instead of a backtracking join.  An empty
        tuple means no homomorphism exists (probability zero everywhere).
        """
        key = (query, answer)
        cached = self._witnesses.get(key)
        if cached is None:
            cached = self._compute_witnesses(query, answer)
            self._witnesses[key] = cached
        return cached

    def _compute_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        if len(answer) != len(query.answer_variables):
            return ()
        # The same binding ``entails`` uses, so the witness semantics can
        # never drift from direct query evaluation.
        fixed = _bind_answer(query.answer_variables, answer)
        if fixed is None:
            return ()
        images = set()
        for homomorphism in query.homomorphisms(self.database, fixed=fixed):
            images.add(query.image(homomorphism))
        minimal = [
            image for image in images if not any(other < image for other in images)
        ]
        minimal.sort(key=lambda image: (len(image), sorted(map(str, image))))
        return tuple(minimal)

    def witness_masks(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> tuple[int, ...]:
        """The :meth:`witnesses` images as id bitmasks over :meth:`index`.

        A sample mask ``s`` entails the answer iff ``w & s == w`` for some
        witness mask ``w`` — the integer form of the subset test, cached per
        ``(query, answer)`` like the object witnesses themselves.
        """
        key = (query, answer)
        cached = self._witness_masks.get(key)
        if cached is None:
            index = self.index()
            cached = tuple(
                index.mask_of(witness) for witness in self.witnesses(query, answer)
            )
            self._witness_masks[key] = cached
        return cached

    def is_possible(self, query: ConjunctiveQuery, answer: tuple = ()) -> bool:
        """Cached polynomial zero-test (see :mod:`repro.exact.possibility`).

        ``P > 0`` under every uniform generator iff some witness image is
        conflict-free; pairwise consistency is closed under subsets, so
        checking the inclusion-minimal witnesses is equivalent.
        """
        key = (query, answer)
        cached = self._possible.get(key)
        if cached is None:
            if self.cache is not None:
                cached = self.cache.get_possible(query, answer)
            if cached is None:
                cached = any(
                    image_is_consistent(witness, self.constraints)
                    for witness in self.witnesses(query, answer)
                )
                if self.cache is not None:
                    self.cache.set_possible(query, answer, cached)
            self._possible[key] = cached
        return cached

    @staticmethod
    def _entails_sample(
        witnesses: tuple[frozenset[Fact], ...], facts: frozenset[Fact]
    ) -> bool:
        return any(witness <= facts for witness in witnesses)

    @staticmethod
    def _entails_mask(witness_masks: tuple[int, ...], sample_mask: int) -> bool:
        return any(witness & sample_mask == witness for witness in witness_masks)

    def _witness_eval(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[int, tuple[int, ...], bool]:
        """The witness masks classified for the hot loop.

        Returns ``(singles, complexes, always)``: the OR-union of all
        single-fact witness masks (a sample hits one iff ``mask & singles``
        is non-zero — one AND for the whole group, the overwhelmingly
        common case for per-fact survival workloads), the remaining
        multi-fact witness masks (each needing its own subset test), and
        whether an *empty* witness exists (the query is entailed by every
        sample).
        """
        singles = 0
        complexes = []
        always = False
        for witness in self.witness_masks(query, answer):
            if witness == 0:
                always = True
            elif witness & (witness - 1) == 0:
                singles |= witness
            else:
                complexes.append(witness)
        return singles, tuple(complexes), always

    def _pool_hit(
        self, pool: SamplePool, query: ConjunctiveQuery, answer: tuple
    ) -> Callable[[int], bool]:
        """Position → "sample entails answer", picked once per request.

        Interned pools (everything a session builds) evaluate with integer
        subset tests on masks; a caller-constructed plain pool keeps the
        original fact-set path.
        """
        if pool.interned:
            singles, complexes, always = self._witness_eval(query, answer)
            mask_at = pool.mask_at
            if always:
                return lambda position: True
            if not complexes:
                return lambda position: bool(mask_at(position) & singles)

            def hit(position: int) -> bool:
                mask = mask_at(position)
                return bool(mask & singles) or self._entails_mask(complexes, mask)

            return hit
        witnesses = self.witnesses(query, answer)
        return lambda position: self._entails_sample(
            witnesses, pool.sample_at(position)
        )

    # -- estimation ------------------------------------------------------------------

    def estimate(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fpras_ocqa`.

        Draws a fresh sample stream from ``rng``; the result is bit-for-bit
        identical to the per-call API under the same seed, the caches only
        make it cheaper.
        """
        rng = resolve_rng(rng)
        draw_mask = self._draw_mask(rng)  # raises FPRASUnavailable first
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        masks = self.witness_masks(query, answer)

        def draw() -> float:
            return 1.0 if self._entails_mask(masks, draw_mask()) else 0.0

        return self._run(draw, query, epsilon, delta, method, p_lower, max_samples)

    def estimate_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Like :meth:`estimate`, but drawing from a shared :class:`SamplePool`.

        Each request reads the pool from position zero, so the result equals
        ``estimate(..., rng=random.Random(seed))`` whenever ``pool`` was
        seeded with the same seed — while ``N`` pooled requests share one
        sampling pass instead of performing ``N``.
        """
        self.ensure_supported()
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        hit = self._pool_hit(pool, query, answer)
        position = 0

        def draw() -> float:
            nonlocal position
            entailed = hit(position)
            position += 1
            return 1.0 if entailed else 0.0

        return self._run(draw, query, epsilon, delta, method, p_lower, max_samples)

    def estimate_many(
        self,
        requests: Iterable[tuple[ConjunctiveQuery, tuple]],
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        rng: random.Random | None = None,
        max_samples: int | None = None,
        pool: SamplePool | None = None,
        mode: str = "fixed",
    ) -> list[EstimateResult | AdaptiveResult]:
        """Score many ``(query, answer)`` pairs against one shared pool.

        ``mode="fixed"`` (default) runs each request's classical estimator
        against the pool; ``mode="adaptive"`` instead runs all requests as
        concurrent sequential estimators scheduled in doubling rounds (see
        :meth:`estimate_adaptive_many`), ignoring ``method``.
        """
        if pool is None:
            pool = self.pool(rng)
        if mode == "adaptive":
            specs = [
                (query, answer, epsilon, delta, max_samples)
                for query, answer in requests
            ]
            return self.estimate_adaptive_many(pool, specs)
        if mode != "fixed":
            raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
        return [
            self.estimate_pooled(
                pool,
                query,
                answer,
                epsilon=epsilon,
                delta=delta,
                method=method,
                max_samples=max_samples,
            )
            for query, answer in requests
        ]

    # -- adaptive estimation -----------------------------------------------------------

    def estimate_adaptive(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        pool: SamplePool | None = None,
        max_samples: int | None = None,
    ) -> AdaptiveResult:
        """Sequential early-stopping estimate of ``P_{M_Σ,Q}(D, c̄)``.

        Runs a :class:`~repro.approx.adaptive.SequentialEstimator` over the
        pool's prefix (a fresh ``rng``-seeded pool when none is given).  The
        (ε, δ) contract matches the fixed path — the estimator's fallback
        cap *is* the fixed Chernoff budget — but easy answers stop after a
        small fraction of it.  Reading the pool from position zero keeps
        adaptive runs replayable against fixed runs on the same seed.
        """
        if pool is None:
            pool = self.pool(rng)
        else:
            self.ensure_supported()
        (result,) = self.estimate_adaptive_many(
            pool, [(query, answer, epsilon, delta, max_samples)]
        )
        return result

    def adaptive_estimator(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        max_samples: int | None = None,
    ) -> SequentialEstimator:
        """A sequential estimator for one request, with this query's bound.

        The single construction point for adaptive estimators — the batch
        planner rehearses through it for per-request error isolation, and
        :meth:`estimate_adaptive_many` builds the real ones through it, so
        the validated parameters can never drift apart.
        """
        return SequentialEstimator(
            epsilon,
            delta,
            p_lower=self.positivity_bound(query),
            max_samples=max_samples,
        )

    def estimate_adaptive_many(
        self,
        pool: SamplePool,
        specs: Sequence[tuple[ConjunctiveQuery, tuple, float, float, int | None]],
        *,
        initial_round: int = 64,
    ) -> list[AdaptiveResult]:
        """Run many sequential estimators against one pool in doubling rounds.

        ``specs`` rows are ``(query, answer, epsilon, delta, max_samples)``.
        Rounds double a shared position target (capped by the largest
        surviving estimator's own sample cap); every pending estimator
        consumes the same pool prefix up to the round target, with samples
        drawn on demand — so ``N`` concurrent adaptive requests cost one
        sampling pass whose length is the *maximum* (not the sum) of their
        stopping times, and nothing is drawn past the slowest stop.
        Certified-impossible answers never touch the pool, and results are
        identical to running :meth:`estimate_adaptive` per request against
        the same pool.
        """
        self.ensure_supported()
        results: list[AdaptiveResult | None] = [None] * len(specs)
        pending: list[list] = []  # [index, hit, estimator, position]
        for index, (query, answer, epsilon, delta, max_samples) in enumerate(specs):
            if not self.is_possible(query, answer):
                results[index] = self._certified_zero_adaptive(epsilon, delta)
                continue
            estimator = self.adaptive_estimator(query, epsilon, delta, max_samples)
            pending.append([index, self._pool_hit(pool, query, answer), estimator, 0])
        target = initial_round
        while pending:
            goal = min(target, max(state[2].sample_cap for state in pending))
            still_pending = []
            for state in pending:
                index, hit, estimator, position = state
                while position < goal and not estimator.decided:
                    entailed = hit(position)
                    position += 1
                    estimator.offer(1.0 if entailed else 0.0)
                state[3] = position
                if estimator.decided:
                    results[index] = estimator.result()
                else:
                    still_pending.append(state)
            pending = still_pending
            target *= 2
        return results  # type: ignore[return-value]  # every slot is filled above

    @staticmethod
    def _certified_zero_adaptive(epsilon: float, delta: float) -> AdaptiveResult:
        return AdaptiveResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            interval=ConfidenceInterval(
                lower=0.0, upper=0.0, confidence=1.0, method="possibility-zero"
            ),
            certified_zero=True,
        )

    def fixed_budget(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
        rng: random.Random | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fixed_budget_estimate`."""
        rng = resolve_rng(rng)
        draw_mask = self._draw_mask(rng)
        self._budget_witnesses(query, answer)
        masks = self.witness_masks(query, answer)
        hits = sum(
            1 for _ in range(samples) if self._entails_mask(masks, draw_mask())
        )
        return self._budget_result(hits, samples)

    def fixed_budget_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
    ) -> EstimateResult:
        """Fixed-budget estimate over a shared pool's first ``samples`` draws."""
        self.ensure_supported()
        self._budget_witnesses(query, answer)
        if pool.interned:
            singles, complexes, always = self._witness_eval(query, answer)
            prefix = pool.mask_prefix(samples)
            if always:
                hits = samples
            elif not complexes:
                hits = sum(1 for mask in prefix if mask & singles)
            else:
                hits = sum(
                    1
                    for mask in prefix
                    if mask & singles or self._entails_mask(complexes, mask)
                )
        else:
            hit = self._pool_hit(pool, query, answer)
            hits = sum(1 for index in range(samples) if hit(index))
        return self._budget_result(hits, samples)

    def _budget_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        # The budget estimators keep entails()'s arity error, which the
        # (ε, δ) path never reaches (its zero-test returns first).
        if len(answer) != len(query.answer_variables):
            raise QueryError(
                f"answer arity {len(answer)} does not match "
                f"|x̄| = {len(query.answer_variables)}"
            )
        return self.witnesses(query, answer)

    @staticmethod
    def _budget_result(hits: int, samples: int) -> EstimateResult:
        return EstimateResult(
            estimate=hits / samples,
            samples_used=samples,
            epsilon=float("nan"),
            delta=float("nan"),
            method="fixed-budget",
            certified_zero=(hits == 0),
        )

    @staticmethod
    def _certified_zero(epsilon: float, delta: float) -> EstimateResult:
        # The polynomial zero-test: no conflict-free image of the query
        # exists, so the probability is exactly 0 under every generator —
        # certify without spending a single sample.
        return EstimateResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            certified_zero=True,
        )

    def _run(
        self,
        draw: Callable[[], float],
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        method: str,
        p_lower: float | None,
        max_samples: int | None,
    ) -> EstimateResult:
        from ..approx.fpras import AUTO_FIXED_BUDGET

        bound = p_lower if p_lower is not None else self.positivity_bound(query)
        if method == "auto":
            budget = chernoff_sample_size(epsilon, delta, bound)
            method = "fixed" if budget <= AUTO_FIXED_BUDGET else "dklr"
        if method == "fixed":
            return fixed_sample_estimate(draw, epsilon, delta, bound)
        if method == "dklr":
            return stopping_rule_estimate(draw, epsilon, delta, max_samples=max_samples)
        raise ValueError(f"unknown method {method!r}")
