"""Estimation sessions: amortized Monte-Carlo OCQA over one instance.

:func:`repro.approx.fpras.fpras_ocqa` answers a single ``P_{M_Σ,Q}(D, c̄)``
question per call and pays the full setup cost every time: the block
decomposition is recomputed, the CRS counts re-derived, and — far worse — a
fresh stream of sampled repairs is drawn even when fifty candidate answers
share the same database.  :class:`EstimationSession` binds one
``(D, Σ, M_Σ)`` triple and amortizes all of that:

* **structural caches** — the block decomposition (Lemma 5.2) is computed
  once and shared by every sampler the session builds; the CRS counting
  DPs (Lemma C.1) are memoized process-wide already and hit warm.
* **witness caches** — for each ``(Q, c̄)`` the session enumerates the
  homomorphism images ``h(Q)`` with ``h(x̄) = c̄`` once, over ``D``.  A
  sampled repair ``S ⊆ D`` satisfies ``c̄ ∈ Q(S)`` iff it contains one of
  the inclusion-minimal images, so per-sample evaluation drops from a
  fresh backtracking join to a few subset tests.
* **the interned kernel** — the session interns ``D`` once into an
  :class:`~repro.core.interning.InstanceIndex` (dense fact ids), samplers
  draw survivor *id bitmasks* without constructing ``Operation`` or
  ``Database`` objects, and the minimal witness images become bitmasks too
  — "repair entails answer" is the integer subset test
  ``w & s == w``.  ``use_kernel=False`` falls back to object-path draws
  (identical results, slower; the kernel is a pure speedup).
* **shared sample pools** — :class:`SamplePool` materializes one seeded
  stream of sampled repairs lazily; every request evaluates against the
  prefix it needs, so ``N`` requests cost one sampling pass plus ``N``
  cheap evaluations instead of ``N`` independent Monte-Carlo runs.
* **the vectorized sample plane** — with numpy available (the
  ``repro-uocqa[fast]`` extra), seed-driven pools
  (:meth:`EstimationSession.pool_for_seed`, i.e. everything
  :func:`~repro.engine.batch.batch_estimate` builds) draw whole batches
  at once through :mod:`repro.sampling.vectorized`: samples live in a
  packed ``(S, ceil(n/64)) uint64`` bitset matrix and witness hits are
  counted with array reductions instead of per-sample Python tests.  The
  ``backend`` switch (``"auto"``/``"vector"``/``"scalar"``) controls the
  plane; ``"auto"`` resolves to the vector plane whenever numpy is
  importable, the kernel is on, and the generator is block-structured
  (``M_ur``/``M_us`` families), and falls back to the scalar kernel
  otherwise — the plane never changes *what* is computed, only how fast.

Determinism contracts, one per plane:

* **scalar** — a pool driven by a ``random.Random`` (``session.pool(rng)``)
  draws the exact stream a per-call run seeded identically would, so
  pooled estimates are *bit-for-bit identical* to per-call
  :func:`~repro.approx.fpras.fpras_ocqa` results under the same seed
  (``tests/test_engine.py`` asserts this).
* **vector** — a vector pool's batch ``b`` is a pure function of
  ``(instance structure, seed, b, batch size)`` via seeded
  ``numpy.random.SeedSequence`` substreams (contract spelled out in
  :mod:`repro.sampling.rng`); the stream is deliberately distinct from
  the scalar one — equal in distribution, reproducible per seed, and
  decode-parity-checked against the scalar mask construction
  (``tests/test_vectorized.py``) — so vector runs replay vector runs
  bit-for-bit, while cross-plane runs agree statistically, not
  sample-for-sample.

Two layers sit on top of the fixed estimators:

* **adaptive estimation** — :meth:`EstimationSession.estimate_adaptive`
  runs a sequential early-stopping estimator
  (:mod:`repro.approx.adaptive`) over the pool prefix, and
  :meth:`EstimationSession.estimate_adaptive_many` schedules many such
  estimators in doubling rounds over one shared pool (its length is the
  slowest stopping time, not the sum);
* **persistence** — an attached :class:`~repro.engine.store.CacheEntry`
  makes decompositions, possibility verdicts, positivity bounds and the
  pool's sample prefix survive the process
  (:meth:`EstimationSession.cached_pool` resumes the stream bit-for-bit).

Scope enforcement is unchanged: combinations outside the paper's positive
results raise :class:`~repro.approx.fpras.FPRASUnavailable` with the same
messages as the per-call API.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..approx.adaptive import AdaptiveResult, SequentialEstimator
from ..approx.bounds import (
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_singleton_fd_lower_bound,
)
from ..approx.intervals import ConfidenceInterval
from ..approx.montecarlo import (
    EstimateResult,
    chernoff_sample_size,
    fixed_estimate_from_total,
    fixed_sample_estimate,
    stopping_rule_estimate,
)
from ..chains.generators import (
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import InstanceIndex
from ..core.queries import ConjunctiveQuery, QueryError, _bind_answer
from ..exact.possibility import image_is_consistent
from ..sampling import vectorized as vectorized_plane
from ..sampling.operations_sampler import UniformOperationsSampler
from ..sampling.repair_sampler import RepairSampler
from ..sampling.rng import HAVE_NUMPY, resolve_rng
from ..sampling.sequence_sampler import SequenceSampler

if TYPE_CHECKING:  # pragma: no cover - type-only (store imports session's pool)
    from .store import CacheEntry


def _unavailable(message: str) -> RuntimeError:
    # Deferred import: fpras.py routes through this module, so the class
    # stays at its public home without a circular module-level import.
    from ..approx.fpras import FPRASUnavailable

    return FPRASUnavailable(message)


#: Samples per vector-plane batch: each batch is one seeded substream
#: (and one store row group); the value is part of the vector stream's
#: reproducibility contract, so changing it re-keys warm vector pools.
DEFAULT_BATCH_SIZE = 512


class SamplePool:
    """A lazily materialized, seeded stream of sampled repairs.

    Samples are grown on demand; request ``i`` evaluates against positions
    ``0 .. n_i`` of the *same* stream.  Because every request reads from
    position zero, a pooled estimate consumes exactly the prefix a fresh
    run (seeded like the pool) would draw — which is what makes pooled
    results reproducible.

    Replay requires retention: the pool keeps every drawn sample for its
    lifetime (unlike the per-call path, which streams and discards).  For
    adaptive ``dklr`` requests on near-zero probabilities, pass
    ``max_samples`` to bound the prefix — an unbounded stopping-rule run
    would grow the pool without limit.

    ``preloaded`` warm-starts the stream with samples persisted by a
    :class:`~repro.engine.store.CacheEntry`; new draws then continue past
    the preloaded prefix (for scalar pools the caller must hand ``draw``
    an RNG restored to the state recorded after the last persisted draw;
    vector pools resume by batch index — their substreams need no state).

    **Interned pools.**  Pools a session builds carry its
    :class:`~repro.core.interning.InstanceIndex`: samples are id
    *bitmasks* (one ``int`` per sample, bit ``i`` = fact ``i`` survives),
    :meth:`mask_at` is the hot-path accessor, and :meth:`sample_at`
    reconstructs fact-set objects on demand — so holding ``n`` samples
    costs ``n`` ints, not ``n`` databases.  A pool constructed without an
    index (``SamplePool(draw)``) keeps the historical contract: ``draw``
    returns fact sets and :meth:`sample_at` hands them back verbatim.

    **Vector pools.**  Constructed with a ``plane``
    (:mod:`repro.sampling.vectorized`) instead of a ``draw`` callable,
    the pool materializes whole batches of ``batch_size`` samples at a
    time and additionally keeps the plane's packed ``uint64`` bitset
    rows (:meth:`packed_prefix`), which the session's batched witness
    evaluation reduces with array ops.  All scalar accessors
    (:meth:`mask_at`, :meth:`mask_prefix`, :meth:`sample_at`,
    :meth:`prefix`) keep working unchanged — a vector pool is a drop-in
    backing, not a new interface.
    """

    def __init__(
        self,
        draw: Callable[[], frozenset[Fact] | int] | None = None,
        preloaded: Iterable[frozenset[Fact] | int] | None = None,
        index: InstanceIndex | None = None,
        plane=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        preloaded_rows=None,
        shared: bool = False,
    ):
        if (draw is None) == (plane is None):
            raise TypeError("exactly one of draw= and plane= is required")
        if plane is not None and index is None:
            raise TypeError("vector pools require an InstanceIndex")
        if shared and plane is None:
            raise TypeError("shared= requires a vector plane")
        if preloaded_rows is not None and (plane is None or preloaded is not None):
            raise TypeError(
                "preloaded_rows= is the vector-pool fast path (exclusive "
                "with preloaded=)"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._draw = draw
        self._plane = plane
        self._batch_size = batch_size
        self._index = index
        self._samples: list[frozenset[Fact] | int] = list(preloaded or ())
        self._rows = None  # capacity-doubling packed matrix (vector pools)
        self._rows_length = 0  # valid rows in ``_rows``
        self._shared = shared
        self._segment = None  # SharedSampleSegment backing ``_rows`` when shared
        self._mask_prefix_cache: tuple[int, tuple[int, ...]] = (0, ())
        self._facts_prefix_cache: tuple[int, tuple[frozenset[Fact], ...]] = (0, ())
        if plane is not None:
            if preloaded_rows is not None:
                # Packed rows preload directly (the warm-cache fast path):
                # masks stay lazy placeholders like live-drawn batches.
                count = preloaded_rows.shape[0]
                if count % batch_size:
                    raise ValueError(
                        "a vector pool's preloaded prefix must be whole batches"
                    )
                if count:
                    self._append_rows(preloaded_rows)
                    self._samples = [None] * count
            elif self._samples:
                if len(self._samples) % batch_size:
                    raise ValueError(
                        "a vector pool's preloaded prefix must be whole batches"
                    )
                self._append_rows(
                    vectorized_plane.pack_masks(self._samples, plane.words)
                )

    @property
    def interned(self) -> bool:
        """Whether samples are stored as id bitmasks over an instance index."""
        return self._index is not None

    @property
    def index(self) -> InstanceIndex | None:
        """The interning the masks refer to (``None`` for plain pools)."""
        return self._index

    @property
    def backend(self) -> str:
        """``"vector"`` for plane-backed pools, ``"scalar"`` otherwise."""
        return "scalar" if self._plane is None else "vector"

    @property
    def plane(self):
        """The vector plane drawing this pool (``None`` for scalar pools)."""
        return self._plane

    @property
    def batch_size(self) -> int:
        """Samples per materialization step (1-at-a-time for scalar pools)."""
        return self._batch_size if self._plane is not None else 1

    def __len__(self) -> int:
        """Number of samples materialized so far (not a limit)."""
        return len(self._samples)

    def _materialize(self, index: int) -> None:
        if self._plane is None:
            while len(self._samples) <= index:
                self._samples.append(self._draw())
            return
        while len(self._samples) <= index:
            batch_index = len(self._samples) // self._batch_size
            _, rows = self._plane.draw_batch(batch_index, self._batch_size)
            self._append_rows(rows)
            # Masks are decoded from the packed rows lazily (the batched
            # hot path never needs them): placeholders keep positions.
            self._samples.extend([None] * self._batch_size)

    def _append_rows(self, rows) -> None:
        """Grow the packed matrix amortized-linearly (capacity doubling).

        Shared pools grow by allocating a fresh
        :class:`~repro.sampling.vectorized.SharedSampleSegment`, copying
        the valid prefix, and releasing the outgrown segment (which
        unlinks its OS object — only the current capacity ever lives in
        ``/dev/shm``).
        """
        numpy = vectorized_plane.np
        count = rows.shape[0]
        needed = self._rows_length + count
        if self._rows is None or needed > self._rows.shape[0]:
            capacity = max(needed, 2 * (self._rows.shape[0] if self._rows is not None else 0))
            if self._shared:
                segment = vectorized_plane.SharedSampleSegment.create(
                    capacity, self._plane.words
                )
                grown = segment.rows()
            else:
                segment = None
                grown = numpy.empty((capacity, self._plane.words), dtype="<u8")
            if self._rows_length:
                grown[: self._rows_length] = self._rows[: self._rows_length]
            self._rows = grown
            if self._segment is not None:
                self._segment.release()
            self._segment = segment
        self._rows[self._rows_length : needed] = rows
        self._rows_length = needed

    @property
    def shared_segment(self):
        """The live shared-memory segment backing this pool (or ``None``)."""
        return self._segment

    def release_shared(self) -> str | None:
        """Detach from shared memory, keeping the pool fully usable.

        The valid prefix is copied into a private heap matrix *before*
        the segment is released, so holders that keep using the pool
        after eviction (the registry's documented contract) see identical
        samples — only the shared backing goes away.  Returns the name of
        the released segment, or ``None`` if the pool was not shared.
        """
        if self._segment is None:
            self._shared = False
            return None
        name = self._segment.name
        if self._rows is not None:
            self._rows = self._rows[: self._rows_length].copy()
        segment, self._segment = self._segment, None
        self._shared = False
        segment.release()
        return name

    def _mask(self, position: int) -> int:
        """The ``position``-th mask, decoding a packed row on first touch."""
        value = self._samples[position]
        if value is None:
            row = self.packed_prefix(position + 1)[position]
            value = int.from_bytes(row.tobytes(), "little")
            self._samples[position] = value
        return value

    def _decode_region(self, start: int, stop: int) -> None:
        """Bulk-decode ``[start, stop)`` placeholder masks from packed rows."""
        if self._plane is None or all(
            value is not None for value in self._samples[start:stop]
        ):
            return
        rows = self.packed_prefix(stop)[start:stop]
        self._samples[start:stop] = vectorized_plane.unpack_rows(rows)

    def ensure(self, length: int) -> None:
        """Materialize the first ``length`` samples (chunk-wise on vector
        pools) — the batch planner pre-draws a group's longest fixed
        prefix through this in one pass."""
        if length > 0:
            self._materialize(length - 1)

    def mask_at(self, index: int) -> int:
        """The ``index``-th sample as an id bitmask (interned pools only)."""
        if self._index is None:
            raise TypeError("mask_at() requires a pool built over an InstanceIndex")
        self._materialize(index)
        return self._mask(index)

    def mask_prefix(self, length: int) -> Sequence[int]:
        """The first ``length`` samples as bitmasks (interned pools only).

        The bulk accessor for fixed-length evaluation loops.  The returned
        view is an immutable tuple, cached across calls: asking for the
        same (or a shorter) prefix again re-materializes nothing and
        copies nothing new — only genuine growth appends to the cache.
        """
        if self._index is None:
            raise TypeError("mask_prefix() requires a pool built over an InstanceIndex")
        cached_length, cached = self._mask_prefix_cache
        if cached_length == length:
            return cached
        if length < cached_length:
            return cached[:length]
        self.ensure(length)
        self._decode_region(cached_length, length)
        cached = cached + tuple(self._samples[cached_length:length])
        self._mask_prefix_cache = (length, cached)
        return cached

    def packed_prefix(self, length: int):
        """The first ``length`` samples as packed ``uint64`` rows.

        Vector pools only (``None`` otherwise): the zero-copy view the
        batched witness evaluation reduces over.  Rows beyond ``length``
        from the final batch are drawn but not returned.
        """
        if self._plane is None:
            return None
        self.ensure(length)
        if self._rows is None:
            return vectorized_plane.np.zeros((0, self._plane.words), dtype="<u8")
        view = self._rows[:length]
        # Read-only like every other prefix view: a caller mutating the
        # backing matrix would silently corrupt samples, hit counts, and
        # the persisted cache.
        view.flags.writeable = False
        return view

    def sample_at(self, index: int) -> frozenset[Fact]:
        """The ``index``-th sample of the stream as a fact set, drawing as
        needed (on interned pools the facts are reconstructed on demand)."""
        self._materialize(index)
        if self._index is not None:
            return self._index.facts_of_mask(self._mask(index))
        return self._samples[index]

    def prefix(self, length: int) -> Sequence[frozenset[Fact]]:
        """The first ``length`` samples as fact sets (materializing them).

        Cached like :meth:`mask_prefix`: repeated calls for a prefix that
        has not grown return the same immutable view instead of
        re-reconstructing every fact set.
        """
        cached_length, cached = self._facts_prefix_cache
        if cached_length == length:
            return cached
        if length < cached_length:
            return cached[:length]
        self.ensure(length)
        self._decode_region(cached_length, length)
        fresh = self._samples[cached_length:length]
        if self._index is not None:
            facts_of = self._index.facts_of_mask
            cached = cached + tuple(facts_of(mask) for mask in fresh)
        else:
            cached = cached + tuple(fresh)
        self._facts_prefix_cache = (length, cached)
        return cached

    def materialized_samples(self) -> Sequence[frozenset[Fact] | int]:
        """Every sample drawn so far, in storage form (masks on interned
        pools, fact sets otherwise) — used by the cache store to persist."""
        self._decode_region(0, len(self._samples))
        return self._samples


class EstimationSession:
    """Shared-state estimator for one ``(database, constraints, generator)``.

    All public entry points mirror the per-call FPRAS API; see the module
    docstring for the caching and determinism guarantees.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        generator: MarkovChainGenerator,
        cache: "CacheEntry | None" = None,
        use_kernel: bool = True,
        backend: str = "auto",
    ):
        if backend not in ("auto", "vector", "scalar"):
            raise ValueError(
                f"unknown backend {backend!r} (use 'auto', 'vector' or 'scalar')"
            )
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.cache = cache
        #: ``False`` forces object-path draws (Operation/Database per
        #: sample).  Results are bit-for-bit identical either way — the
        #: interned kernel is a pure speedup, and the flag exists so the
        #: parity tests and benches can prove exactly that.
        self.use_kernel = use_kernel
        #: Which sample plane seed-driven pools use (``"auto"``/``"vector"``/
        #: ``"scalar"``); see :meth:`resolved_backend`.  ``random.Random``-
        #: driven pools (:meth:`pool`) always stay on the scalar plane —
        #: that is the bit-for-bit per-call parity contract.
        self.backend = backend
        self._decomposition: BlockDecomposition | None = None
        self._index: InstanceIndex | None = None
        self._witnesses: dict[
            tuple[ConjunctiveQuery, tuple], tuple[frozenset[Fact], ...]
        ] = {}
        self._witness_masks: dict[tuple[ConjunctiveQuery, tuple], tuple[int, ...]] = {}
        self._witness_plans: dict[
            tuple[ConjunctiveQuery, tuple], tuple[int, tuple[int, ...], bool]
        ] = {}
        self._possible: dict[tuple[ConjunctiveQuery, tuple], bool] = {}
        self._bounds: dict[ConjunctiveQuery, float] = {}

    # -- structural caches ---------------------------------------------------------

    def decomposition(self) -> BlockDecomposition:
        """The block decomposition of ``(D, Σ)``, computed once (primary keys).

        With a cache entry attached, a persisted decomposition is decoded
        instead of recomputed (and a fresh one is recorded for next time).
        """
        if self._decomposition is None:
            if self.cache is not None:
                self._decomposition = self.cache.get_decomposition()
            if self._decomposition is None:
                self._decomposition = block_decomposition(
                    self.database, self.constraints
                )
                if self.cache is not None:
                    self.cache.set_decomposition(self._decomposition)
        return self._decomposition

    def index(self) -> InstanceIndex:
        """The session's fact interning, built once per ``(D, Σ)``.

        For primary keys the index also carries the conflicting blocks as
        id-tuples (sharing :meth:`decomposition`); for the arbitrary-FD
        generators it interns facts and masks only.
        """
        if self._index is None:
            if self.constraints.is_primary_keys():
                self._index = InstanceIndex.of(
                    self.database, decomposition=self.decomposition()
                )
            else:
                self._index = InstanceIndex.of(self.database)
        return self._index

    def ensure_supported(self) -> None:
        """Raise :class:`FPRASUnavailable` outside the paper's positive results.

        The checks and messages match :func:`repro.approx.fpras.fpras_ocqa`
        exactly (Theorems 5.1(2), 6.1(2), 7.1(2), 7.5, E.1(2), E.8(2)).
        """
        generator = self.generator
        if isinstance(generator, UniformRepairs):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_ur beyond primary keys: no FPRAS for FDs unless RP = NP "
                    "(Theorem 5.1(3)); keys are open (Prop 5.5 rules out repair "
                    "counting)."
                )
        elif isinstance(generator, UniformSequences):
            if not self.constraints.is_primary_keys():
                raise _unavailable(
                    "M_us beyond primary keys is open; the paper conjectures no "
                    "FPRAS even for keys (Section 6)."
                )
        elif isinstance(generator, UniformOperations):
            if not generator.singleton_only and not self.constraints.all_keys():
                raise _unavailable(
                    "M_uo with non-key FDs: the target probability can be "
                    "exponentially small (Prop D.6), so Monte Carlo cannot give "
                    "an FPRAS; use M_uo,1 (Theorem 7.5) instead."
                )
        else:
            raise _unavailable(
                f"no FPRAS dispatch for generator {generator.name!r}"
            )

    def sampler(self, rng: random.Random | None = None):
        """A sampler for the session's generator, reusing cached structure."""
        self.ensure_supported()
        rng = resolve_rng(rng)
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            return RepairSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
                index=self.index(),
            )
        if isinstance(self.generator, UniformSequences):
            return SequenceSampler(
                self.database,
                self.constraints,
                singleton,
                rng,
                decomposition=self.decomposition(),
                index=self.index(),
            )
        return UniformOperationsSampler(self.database, self.constraints, singleton, rng)

    def _draw_facts(self, rng: random.Random | None) -> Callable[[], frozenset[Fact]]:
        """A thunk drawing one sampled repair as a fact set (object path)."""
        sampler = self.sampler(rng)
        if isinstance(sampler, SequenceSampler):
            return lambda: sampler.sample_result().facts
        return lambda: sampler.sample().facts

    def _draw_mask(self, rng: random.Random | None) -> Callable[[], int]:
        """A thunk drawing one sampled repair as an id bitmask.

        With the kernel on, the block-structured samplers draw masks
        natively (no ``Operation``/``Database`` objects per draw); the
        ``M_uo`` walk — and every sampler when ``use_kernel=False`` — draws
        objects and interns the result, which consumes the RNG identically
        and therefore yields the *same* stream, just slower.
        """
        sampler = self.sampler(rng)
        if self.use_kernel and isinstance(sampler, (RepairSampler, SequenceSampler)):
            return sampler.sample_mask
        index = self.index()
        if isinstance(sampler, SequenceSampler):
            return lambda: index.mask_of(sampler.sample_result().facts)
        return lambda: index.mask_of(sampler.sample().facts)

    def pool(self, rng: random.Random | None = None) -> SamplePool:
        """One shared, lazily grown sample stream for this session.

        The pool stores compact id bitmasks (one ``int`` per sample) over
        the session's :meth:`index`; fact-set views are reconstructed on
        demand by :meth:`SamplePool.sample_at`.  ``random.Random``-driven
        pools always run on the *scalar* plane — they carry the
        bit-for-bit per-call parity contract; seed-driven callers wanting
        the vector plane go through :meth:`pool_for_seed` or
        :meth:`vector_pool`.
        """
        return SamplePool(self._draw_mask(resolve_rng(rng)), index=self.index())

    def resolved_backend(self) -> str:
        """The plane (``"vector"``/``"scalar"``) seed-driven pools will use.

        ``backend="auto"`` resolves to the vector plane when numpy is
        importable, the interned kernel is on, and the generator is
        block-structured (the ``M_ur``/``M_us`` families — the ``M_uo``
        walk has no vector plane); anything else falls back to
        ``"scalar"``.  An explicit ``backend="vector"`` raises instead of
        silently degrading when those prerequisites are missing.
        """
        if self.backend == "scalar":
            return "scalar"
        vectorizable = (
            HAVE_NUMPY
            and self.use_kernel
            and isinstance(self.generator, (UniformRepairs, UniformSequences))
        )
        if self.backend == "vector":
            if not HAVE_NUMPY:
                raise ValueError(
                    "backend='vector' requires numpy — install the "
                    "'repro-uocqa[fast]' extra or use backend='scalar'"
                )
            if not vectorizable:
                raise ValueError(
                    f"backend='vector' is unavailable here (generator "
                    f"{self.generator.name!r} with use_kernel={self.use_kernel}); "
                    "the vector plane covers the kernel-backed M_ur/M_us families"
                )
            return "vector"
        return "vector" if vectorizable else "scalar"

    def vector_plane(self, seed: int | None = None):
        """A vectorized sample plane for this session's generator.

        One :class:`~repro.sampling.vectorized.VectorRepairPlane` /
        :class:`~repro.sampling.vectorized.VectorSequencePlane` over the
        session's interning, seeded per the plane's substream contract.
        Also the handle the decode-parity harness uses: a fresh plane with
        the same seed re-draws any pool batch exactly.
        """
        self.ensure_supported()
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            return vectorized_plane.VectorRepairPlane(self.index(), singleton, seed)
        if isinstance(self.generator, UniformSequences):
            return vectorized_plane.VectorSequencePlane(self.index(), singleton, seed)
        raise ValueError(
            f"no vector plane for generator {self.generator.name!r}"
        )

    def vector_pool(
        self,
        seed: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        shared: bool = False,
    ) -> SamplePool:
        """A vector-plane pool drawing in packed batches (requires numpy).

        ``shared=True`` backs the packed matrix with a
        :class:`~repro.sampling.vectorized.SharedSampleSegment` so other
        processes (and the cache store) can read the rows zero-copy.
        """
        return SamplePool(
            plane=self.vector_plane(seed),
            index=self.index(),
            batch_size=batch_size,
            shared=shared,
        )

    def pool_for_seed(self, seed: int | None, shared: bool = False) -> SamplePool:
        """A pool for an integer seed, on the session's resolved backend.

        The entry point :func:`~repro.engine.batch.batch_estimate` uses:
        the vector plane when :meth:`resolved_backend` says so, otherwise
        a scalar pool seeded ``random.Random(seed)`` (the exact PR-3
        stream).  ``shared=`` applies to vector pools only — scalar pools
        have no packed matrix to share and silently ignore it.
        """
        if self.resolved_backend() == "vector":
            return self.vector_pool(seed, shared=shared)
        return self.pool(random.Random(seed) if seed is not None else None)

    def cached_pool(self, seed: int | None, shared: bool = False) -> SamplePool:
        """A pool warm-started from the session's cache entry (if possible).

        Persisted samples preload the stream and drawing resumes where the
        cold run stopped — scalar pools restore the recorded
        ``random.Random`` state, vector pools resume by batch index (their
        substreams need no state) — so warm draws continue the cold run's
        stream bit-for-bit.  Without a cache entry or a seed this degrades
        to a plain :meth:`pool_for_seed` (an unseeded stream is not
        reproducible, so persisting it would be meaningless).

        A persisted prefix from the *other* plane cannot be extended: with
        ``backend="auto"`` a warm scalar prefix (e.g. a transparently
        upgraded v2 entry) keeps the entry on the scalar plane; under an
        explicitly requested plane a mismatched prefix is discarded and
        redrawn instead.
        """
        if self.cache is None or seed is None:
            return self.pool_for_seed(seed, shared=shared)
        backend = self.resolved_backend()
        if (
            self.backend == "auto"
            and backend == "vector"
            and self.cache.sample_backend() == "scalar"
        ):
            backend = "scalar"
        if backend == "vector":
            return self._cached_vector_pool(seed, shared=shared)
        return self._cached_scalar_pool(seed)

    def _cached_scalar_pool(self, seed: int) -> SamplePool:
        rng = random.Random(seed)
        if self.cache.sample_backend() == "vector":
            # A vector-plane prefix cannot be extended by random.Random
            # draws; drop it so the entry is rewritten on this plane.
            self.cache.discard_samples()
        preloaded = self.cache.preload_sample_masks()
        state = self.cache.rng_state() if preloaded else None
        if state is not None:
            try:
                rng.setstate(state)
            except (TypeError, ValueError, OverflowError):
                # Shape-valid but meaningless state vectors (tampering)
                # raise any of these from the C implementation.
                state = None
                rng = random.Random(seed)
        if preloaded and state is None:
            # Samples without a usable post-draw RNG state cannot be
            # extended consistently: drop them so the entry is rewritten.
            self.cache.discard_samples()
            preloaded = []
        shared = SamplePool(
            self._draw_mask(rng), preloaded=preloaded, index=self.index()
        )
        self.cache.attach_pool(shared, rng)
        return shared

    def _cached_vector_pool(self, seed: int, shared: bool = False) -> SamplePool:
        rows = self.cache.sample_word_rows()
        if rows:
            if (
                self.cache.sample_backend() != "vector"
                or self.cache.sample_batch() != DEFAULT_BATCH_SIZE
                or len(rows) % DEFAULT_BATCH_SIZE
            ):
                # A scalar prefix, a foreign batch size, or a torn batch:
                # none of them resume a substream — redraw cleanly.
                self.cache.discard_samples()
                rows = []
        preloaded_rows = None
        if rows:
            # The on-disk word row IS the matrix row: load it without any
            # bignum round trip (masks decode lazily if ever needed).
            preloaded_rows = vectorized_plane.np.array(rows, dtype="<u8")
        pool = SamplePool(
            plane=self.vector_plane(seed),
            preloaded_rows=preloaded_rows,
            index=self.index(),
            batch_size=DEFAULT_BATCH_SIZE,
            shared=shared,
        )
        self.cache.attach_pool(pool, None)
        return pool

    # -- per-(query, answer) caches --------------------------------------------------

    def positivity_bound(self, query: ConjunctiveQuery) -> float:
        """The paper's positivity lower bound for this generator and query.

        Mirrors the per-call dispatch: Lemmas 5.3 / 6.3 for ``M_ur`` /
        ``M_us``, Lemmas E.3 / E.10 for their singleton variants, Lemma D.8
        for ``M_uo,1``; for plain ``M_uo`` the pragmatic ``rrfreq`` floor
        stands in for Prop 7.3's astronomically small polynomial.
        """
        cached = self._bounds.get(query)
        if cached is not None:
            return cached
        self.ensure_supported()
        if self.cache is not None:
            persisted = self.cache.get_bound(query)
            if persisted is not None:
                self._bounds[query] = persisted
                return persisted
        singleton = self.generator.singleton_only
        if isinstance(self.generator, UniformRepairs):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else rrfreq_lower_bound(self.database, query)
            )
        elif isinstance(self.generator, UniformSequences):
            bound = (
                singleton_frequency_lower_bound(self.database, query)
                if singleton
                else srfreq_lower_bound(self.database, query)
            )
        elif singleton:
            bound = uo_singleton_fd_lower_bound(self.database, query)
        else:
            bound = rrfreq_lower_bound(self.database, query)
        value = float(bound)
        self._bounds[query] = value
        if self.cache is not None:
            self.cache.set_bound(query, value)
        return value

    def witnesses(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> tuple[frozenset[Fact], ...]:
        """Inclusion-minimal homomorphism images ``h(Q)`` with ``h(x̄) = c̄``.

        Every sampled repair is a subset of ``D``, so a sample ``S`` entails
        the answer iff ``w ⊆ S`` for some witness ``w`` — evaluated once per
        sample with subset tests instead of a backtracking join.  An empty
        tuple means no homomorphism exists (probability zero everywhere).
        """
        key = (query, answer)
        cached = self._witnesses.get(key)
        if cached is None:
            cached = self._compute_witnesses(query, answer)
            self._witnesses[key] = cached
        return cached

    def _compute_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        if len(answer) != len(query.answer_variables):
            return ()
        # The same binding ``entails`` uses, so the witness semantics can
        # never drift from direct query evaluation.
        fixed = _bind_answer(query.answer_variables, answer)
        if fixed is None:
            return ()
        images = set()
        for homomorphism in query.homomorphisms(self.database, fixed=fixed):
            images.add(query.image(homomorphism))
        minimal = [
            image for image in images if not any(other < image for other in images)
        ]
        minimal.sort(key=lambda image: (len(image), sorted(map(str, image))))
        return tuple(minimal)

    def witness_masks(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> tuple[int, ...]:
        """The :meth:`witnesses` images as id bitmasks over :meth:`index`.

        A sample mask ``s`` entails the answer iff ``w & s == w`` for some
        witness mask ``w`` — the integer form of the subset test, cached per
        ``(query, answer)`` like the object witnesses themselves.
        """
        key = (query, answer)
        cached = self._witness_masks.get(key)
        if cached is None:
            index = self.index()
            cached = tuple(
                index.mask_of(witness) for witness in self.witnesses(query, answer)
            )
            self._witness_masks[key] = cached
        return cached

    def is_possible(self, query: ConjunctiveQuery, answer: tuple = ()) -> bool:
        """Cached polynomial zero-test (see :mod:`repro.exact.possibility`).

        ``P > 0`` under every uniform generator iff some witness image is
        conflict-free; pairwise consistency is closed under subsets, so
        checking the inclusion-minimal witnesses is equivalent.
        """
        key = (query, answer)
        cached = self._possible.get(key)
        if cached is None:
            if self.cache is not None:
                cached = self.cache.get_possible(query, answer)
            if cached is None:
                cached = any(
                    image_is_consistent(witness, self.constraints)
                    for witness in self.witnesses(query, answer)
                )
                if self.cache is not None:
                    self.cache.set_possible(query, answer, cached)
            self._possible[key] = cached
        return cached

    @staticmethod
    def _entails_sample(
        witnesses: tuple[frozenset[Fact], ...], facts: frozenset[Fact]
    ) -> bool:
        return any(witness <= facts for witness in witnesses)

    @staticmethod
    def _entails_mask(witness_masks: tuple[int, ...], sample_mask: int) -> bool:
        return any(witness & sample_mask == witness for witness in witness_masks)

    def _witness_eval(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[int, tuple[int, ...], bool]:
        """The witness masks classified for the hot loop (cached).

        Returns ``(singles, complexes, always)``: the OR-union of all
        single-fact witness masks (a sample hits one iff ``mask & singles``
        is non-zero — one AND for the whole group, the overwhelmingly
        common case for per-fact survival workloads), the remaining
        multi-fact witness masks (each needing its own subset test), and
        whether an *empty* witness exists (the query is entailed by every
        sample).  Both the scalar per-position tests and the batched
        column reductions consume this one classification.
        """
        key = (query, answer)
        plan = self._witness_plans.get(key)
        if plan is None:
            singles = 0
            complexes = []
            always = False
            for witness in self.witness_masks(query, answer):
                if witness == 0:
                    always = True
                elif witness & (witness - 1) == 0:
                    singles |= witness
                else:
                    complexes.append(witness)
            plan = (singles, tuple(complexes), always)
            self._witness_plans[key] = plan
        return plan

    def _evaluator(
        self, pool: SamplePool, query: ConjunctiveQuery, answer: tuple
    ) -> "_PoolEvaluator":
        """Hit evaluation of one request against one pool, plane-aware."""
        return _PoolEvaluator(self, pool, query, answer)

    # -- estimation ------------------------------------------------------------------

    def estimate(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fpras_ocqa`.

        Draws a fresh sample stream from ``rng``; the result is bit-for-bit
        identical to the per-call API under the same seed, the caches only
        make it cheaper.
        """
        rng = resolve_rng(rng)
        draw_mask = self._draw_mask(rng)  # raises FPRASUnavailable first
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        masks = self.witness_masks(query, answer)

        def draw() -> float:
            return 1.0 if self._entails_mask(masks, draw_mask()) else 0.0

        return self._run(draw, query, epsilon, delta, method, p_lower, max_samples)

    def estimate_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        p_lower: float | None = None,
        max_samples: int | None = None,
    ) -> EstimateResult:
        """Like :meth:`estimate`, but drawing from a shared :class:`SamplePool`.

        Each request reads the pool from position zero, so ``N`` pooled
        requests share one sampling pass instead of performing ``N``.  For
        a *scalar* pool built from a ``random.Random`` (:meth:`pool`) the
        result equals ``estimate(..., rng=random.Random(seed))`` under the
        same seed; vector pools are equally deterministic but follow their
        own substream contract (module docstring), so their results replay
        vector runs, not ``random.Random`` ones.
        """
        self.ensure_supported()
        if not self.is_possible(query, answer):
            return self._certified_zero(epsilon, delta)
        evaluator = self._evaluator(pool, query, answer)
        resolved, budget, bound = self._resolve_method(
            query, epsilon, delta, method, p_lower
        )
        if resolved == "fixed" and pool.backend == "vector":
            # The batched fixed path: one packed-prefix reduction instead
            # of ``budget`` per-position tests.  The hit count is the
            # exact float total ``fixed_sample_estimate`` would accumulate
            # from the same indicator stream, built into a result by the
            # same constructor.
            return fixed_estimate_from_total(
                evaluator.count(budget), budget, epsilon, delta
            )
        position = 0

        def draw() -> float:
            nonlocal position
            entailed = evaluator.flag(position)
            position += 1
            return 1.0 if entailed else 0.0

        if resolved == "fixed":
            return fixed_sample_estimate(draw, epsilon, delta, bound)
        return stopping_rule_estimate(draw, epsilon, delta, max_samples=max_samples)

    def estimate_many(
        self,
        requests: Iterable[tuple[ConjunctiveQuery, tuple]],
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        method: str = "auto",
        rng: random.Random | None = None,
        max_samples: int | None = None,
        pool: SamplePool | None = None,
        mode: str = "fixed",
    ) -> list[EstimateResult | AdaptiveResult]:
        """Score many ``(query, answer)`` pairs against one shared pool.

        ``mode="fixed"`` (default) runs each request's classical estimator
        against the pool; ``mode="adaptive"`` instead runs all requests as
        concurrent sequential estimators scheduled in doubling rounds (see
        :meth:`estimate_adaptive_many`), ignoring ``method``.
        """
        if pool is None:
            pool = self.pool(rng)
        if mode == "adaptive":
            specs = [
                (query, answer, epsilon, delta, max_samples)
                for query, answer in requests
            ]
            return self.estimate_adaptive_many(pool, specs)
        if mode != "fixed":
            raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
        return [
            self.estimate_pooled(
                pool,
                query,
                answer,
                epsilon=epsilon,
                delta=delta,
                method=method,
                max_samples=max_samples,
            )
            for query, answer in requests
        ]

    # -- adaptive estimation -----------------------------------------------------------

    def estimate_adaptive(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: random.Random | None = None,
        pool: SamplePool | None = None,
        max_samples: int | None = None,
    ) -> AdaptiveResult:
        """Sequential early-stopping estimate of ``P_{M_Σ,Q}(D, c̄)``.

        Runs a :class:`~repro.approx.adaptive.SequentialEstimator` over the
        pool's prefix (a fresh ``rng``-seeded pool when none is given).  The
        (ε, δ) contract matches the fixed path — the estimator's fallback
        cap *is* the fixed Chernoff budget — but easy answers stop after a
        small fraction of it.  Reading the pool from position zero keeps
        adaptive runs replayable against fixed runs on the same seed.
        """
        if pool is None:
            pool = self.pool(rng)
        else:
            self.ensure_supported()
        (result,) = self.estimate_adaptive_many(
            pool, [(query, answer, epsilon, delta, max_samples)]
        )
        return result

    def adaptive_estimator(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        max_samples: int | None = None,
    ) -> SequentialEstimator:
        """A sequential estimator for one request, with this query's bound.

        The single construction point for adaptive estimators — the batch
        planner rehearses through it for per-request error isolation, and
        :meth:`estimate_adaptive_many` builds the real ones through it, so
        the validated parameters can never drift apart.
        """
        return SequentialEstimator(
            epsilon,
            delta,
            p_lower=self.positivity_bound(query),
            max_samples=max_samples,
        )

    def estimate_adaptive_many(
        self,
        pool: SamplePool,
        specs: Sequence[tuple[ConjunctiveQuery, tuple, float, float, int | None]],
        *,
        initial_round: int = 64,
    ) -> list[AdaptiveResult]:
        """Run many sequential estimators against one pool in doubling rounds.

        ``specs`` rows are ``(query, answer, epsilon, delta, max_samples)``.
        Rounds double a shared position target (capped by the largest
        surviving estimator's own sample cap); every pending estimator
        consumes the same pool prefix up to the round target, with samples
        drawn on demand — so ``N`` concurrent adaptive requests cost one
        sampling pass whose length is the *maximum* (not the sum) of their
        stopping times, and nothing is drawn past the slowest stop.
        Certified-impossible answers never touch the pool, and results are
        identical to running :meth:`estimate_adaptive` per request against
        the same pool.
        """
        self.ensure_supported()
        results: list[AdaptiveResult | None] = [None] * len(specs)
        pending: list[list] = []  # [index, hit, estimator, position]
        for index, (query, answer, epsilon, delta, max_samples) in enumerate(specs):
            if not self.is_possible(query, answer):
                results[index] = self._certified_zero_adaptive(epsilon, delta)
                continue
            estimator = self.adaptive_estimator(query, epsilon, delta, max_samples)
            pending.append(
                [index, self._evaluator(pool, query, answer), estimator, 0]
            )
        target = initial_round
        while pending:
            goal = min(target, max(state[2].sample_cap for state in pending))
            still_pending = []
            for state in pending:
                index, evaluator, estimator, position = state
                while position < goal and not estimator.decided:
                    entailed = evaluator.flag(position)
                    position += 1
                    estimator.offer(1.0 if entailed else 0.0)
                state[3] = position
                if estimator.decided:
                    results[index] = estimator.result()
                else:
                    still_pending.append(state)
            pending = still_pending
            target *= 2
        return results  # type: ignore[return-value]  # every slot is filled above

    @staticmethod
    def _certified_zero_adaptive(epsilon: float, delta: float) -> AdaptiveResult:
        return AdaptiveResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            interval=ConfidenceInterval(
                lower=0.0, upper=0.0, confidence=1.0, method="possibility-zero"
            ),
            certified_zero=True,
        )

    def fixed_budget(
        self,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
        rng: random.Random | None = None,
    ) -> EstimateResult:
        """Per-call twin of :func:`~repro.approx.fpras.fixed_budget_estimate`."""
        rng = resolve_rng(rng)
        draw_mask = self._draw_mask(rng)
        self._budget_witnesses(query, answer)
        masks = self.witness_masks(query, answer)
        hits = sum(
            1 for _ in range(samples) if self._entails_mask(masks, draw_mask())
        )
        return self._budget_result(hits, samples)

    def fixed_budget_pooled(
        self,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple = (),
        *,
        samples: int = 10_000,
    ) -> EstimateResult:
        """Fixed-budget estimate over a shared pool's first ``samples`` draws."""
        self.ensure_supported()
        self._budget_witnesses(query, answer)
        hits = self._evaluator(pool, query, answer).count(samples)
        return self._budget_result(hits, samples)

    def _budget_witnesses(
        self, query: ConjunctiveQuery, answer: tuple
    ) -> tuple[frozenset[Fact], ...]:
        # The budget estimators keep entails()'s arity error, which the
        # (ε, δ) path never reaches (its zero-test returns first).
        if len(answer) != len(query.answer_variables):
            raise QueryError(
                f"answer arity {len(answer)} does not match "
                f"|x̄| = {len(query.answer_variables)}"
            )
        return self.witnesses(query, answer)

    @staticmethod
    def _budget_result(hits: int, samples: int) -> EstimateResult:
        return EstimateResult(
            estimate=hits / samples,
            samples_used=samples,
            epsilon=float("nan"),
            delta=float("nan"),
            method="fixed-budget",
            certified_zero=(hits == 0),
        )

    @staticmethod
    def _certified_zero(epsilon: float, delta: float) -> EstimateResult:
        # The polynomial zero-test: no conflict-free image of the query
        # exists, so the probability is exactly 0 under every generator —
        # certify without spending a single sample.
        return EstimateResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            certified_zero=True,
        )

    def _resolve_method(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        method: str,
        p_lower: float | None,
    ) -> tuple[str, int | None, float]:
        """``(resolved method, fixed budget or None, positivity bound)``.

        The one implementation of the ``auto`` dispatch — the estimate
        paths and the batch planner's chunked pre-draw both read it, so
        "which estimator will run, over how many samples" can never drift
        between them.
        """
        from ..approx.fpras import AUTO_FIXED_BUDGET

        bound = p_lower if p_lower is not None else self.positivity_bound(query)
        if method == "auto":
            budget = chernoff_sample_size(epsilon, delta, bound)
            method = "fixed" if budget <= AUTO_FIXED_BUDGET else "dklr"
        if method == "fixed":
            return "fixed", chernoff_sample_size(epsilon, delta, bound), bound
        if method == "dklr":
            return "dklr", None, bound
        raise ValueError(f"unknown method {method!r}")

    def _run(
        self,
        draw: Callable[[], float],
        query: ConjunctiveQuery,
        epsilon: float,
        delta: float,
        method: str,
        p_lower: float | None,
        max_samples: int | None,
    ) -> EstimateResult:
        resolved, _, bound = self._resolve_method(
            query, epsilon, delta, method, p_lower
        )
        if resolved == "fixed":
            return fixed_sample_estimate(draw, epsilon, delta, bound)
        return stopping_rule_estimate(draw, epsilon, delta, max_samples=max_samples)


class _PoolEvaluator:
    """Hit evaluation of one ``(query, answer)`` against one pool's prefix.

    The plane-aware replacement for the old per-position hit closures:

    * **vector pools** — hits are computed in whole batches with packed
      column reductions (:func:`repro.sampling.vectorized.batch_hit_flags`)
      and cached; :meth:`flag` serves positions out of the evaluated
      prefix, growing it one pool batch at a time, and :meth:`count` folds
      a known-length prefix in one reduction.
    * **scalar pools** — every accessor reproduces the pre-vector code
      paths *exactly* (same tests, same pool materialization pattern), so
      scalar results and cache contents stay bit-for-bit what they were.
    """

    __slots__ = (
        "_pool",
        "_always",
        "_singles",
        "_complexes",
        "_witnesses",
        "_witness_rows",
        "_flags",
        "_evaluated",
    )

    def __init__(
        self,
        session: EstimationSession,
        pool: SamplePool,
        query: ConjunctiveQuery,
        answer: tuple,
    ):
        self._pool = pool
        self._flags = None
        self._witness_rows = None
        self._evaluated = 0
        if pool.interned:
            self._singles, self._complexes, self._always = session._witness_eval(
                query, answer
            )
            self._witnesses = None
        else:
            self._witnesses = session.witnesses(query, answer)
            self._singles, self._complexes, self._always = 0, (), False

    # -- batched path (vector pools) ---------------------------------------------------

    def _ensure_flags(self, length: int) -> None:
        if self._evaluated >= length:
            return
        numpy = vectorized_plane.np
        rows = self._pool.packed_prefix(length)
        if self._witness_rows is None:
            # Packed once per evaluator: the witness rows are fixed for
            # its lifetime, so chunked growth pays only the reductions.
            self._witness_rows = vectorized_plane.pack_witnesses(
                self._singles, self._complexes, rows.shape[1]
            )
        fresh = vectorized_plane.batch_hit_flags(
            rows[self._evaluated :],
            self._singles,
            self._complexes,
            self._always,
            packed=self._witness_rows,
        )
        if self._flags is None or length > self._flags.shape[0]:
            # Capacity doubling: chunked dklr/adaptive growth stays
            # amortized-linear instead of re-concatenating per chunk.
            capacity = max(
                length, 2 * (self._flags.shape[0] if self._flags is not None else 0)
            )
            grown = numpy.zeros(capacity, dtype=bool)
            if self._evaluated:
                grown[: self._evaluated] = self._flags[: self._evaluated]
            self._flags = grown
        self._flags[self._evaluated : length] = fresh
        self._evaluated = length

    # -- scalar path (bit-for-bit the pre-vector behaviour) ----------------------------

    def _scalar_flag(self, position: int) -> bool:
        pool = self._pool
        if self._witnesses is not None:
            return EstimationSession._entails_sample(
                self._witnesses, pool.sample_at(position)
            )
        if self._always:
            return True
        mask = pool.mask_at(position)
        if mask & self._singles:
            return True
        return EstimationSession._entails_mask(self._complexes, mask)

    # -- public accessors --------------------------------------------------------------

    def flag(self, position: int) -> bool:
        """Whether sample ``position`` entails the answer."""
        if self._witnesses is None and self._always:
            # Mirrors the scalar closures: an empty witness answers
            # without touching the pool on either plane.
            return True
        if self._pool.backend == "vector":
            if position >= self._evaluated:
                chunk = self._pool.batch_size
                self._ensure_flags(((position // chunk) + 1) * chunk)
            return bool(self._flags[position])
        return self._scalar_flag(position)

    def count(self, length: int) -> int:
        """Hits among the first ``length`` samples (batched when possible)."""
        if self._witnesses is None and self._always:
            # Empty witness: every sample hits, so nothing needs drawing.
            # The scalar plane still materializes (the PR 3 fixed-budget
            # path always did — preserved bit-for-bit); the vector plane
            # has no such history and skips the wasted batches.
            if self._pool.backend != "vector":
                self._pool.ensure(length)
            return length
        if self._pool.backend == "vector":
            self._ensure_flags(length)
            return int(self._flags[:length].sum())
        if self._witnesses is not None:
            return sum(1 for position in range(length) if self._scalar_flag(position))
        prefix = self._pool.mask_prefix(length)
        singles = self._singles
        complexes = self._complexes
        if not complexes:
            return sum(1 for mask in prefix if mask & singles)
        return sum(
            1
            for mask in prefix
            if mask & singles or EstimationSession._entails_mask(complexes, mask)
        )
