"""Seeded, injectable filesystem faults for the durability plane.

:class:`~repro.engine.store.CacheEntry` routes every commit-path
filesystem call — the temp-file write, both fsyncs, the ``os.replace``,
and entry reads — through the process-wide :class:`FsOps` shim this
module owns.  In production the shim is a transparent passthrough; the
durability tests, the crash-torture harness and the load-test disk-fault
beat swap in a :class:`FaultyOps` carrying a deterministic
:class:`FaultPlan`:

* ``enospc_at_byte=k`` — writes persist exactly ``k`` bytes in total,
  then raise ``ENOSPC`` (the partial write stays on disk, like a full
  filesystem would leave it);
* ``torn_write_at=n`` — the *n*-th write persists only half its payload
  and the process "crashes" (a torn page);
* ``crash_after_replace=True`` — the rename lands but the process dies
  before the directory fsync (the classic fsync-gap crash);
* ``kill_at=n`` — the process dies immediately before mutating
  filesystem operation *n* (the crash-torture harness sweeps ``n`` over
  the whole save sequence);
* ``write_enospc=True`` / ``read_error="eio"`` / ``bitflip_seed=s`` —
  persistent modes for the service's ``POST /_fault`` disk faults:
  every write fails, or reads fail / return one seeded flipped bit.

"Crashing" is real by default — ``SIGKILL`` to our own pid, so no
``finally`` blocks soften the cut — and :class:`CrashPoint` (a
``BaseException``) with ``crash="raise"`` for single-process tests:
``CacheEntry.save``'s cleanup handlers catch ``Exception`` only, so a
raised crash point leaves the same on-disk wreckage a kill would.

Subprocess writers self-arm from the :data:`SPEC_ENV` environment
variable (e.g. ``REPRO_FSFAULT_SPEC=kill:7``) on their first shim call,
so the torture harness needs no code changes in the system under test.
Running ``python -m repro.engine.fsfault --cache-dir D --draws N`` is
the harness's standard writer: it grows the Figure-2 torture entry's
sample prefix to ``N`` draws through the real session/cache machinery
and reports the shim's operation count (the dry run that sizes the kill
sweep).
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import random
import signal
from dataclasses import dataclass

__all__ = [
    "SPEC_ENV",
    "CrashPoint",
    "FaultPlan",
    "FsOps",
    "FaultyOps",
    "active",
    "install",
    "reset",
    "injected",
    "plan_from_spec",
    "torture_writer",
]

#: Environment variable carrying a fault-plan spec (see
#: :func:`plan_from_spec`); picked up by :func:`active` on first use so
#: subprocess writers arm themselves without code changes.
SPEC_ENV = "REPRO_FSFAULT_SPEC"


class CrashPoint(BaseException):
    """A simulated process death inside an in-process fault plan.

    Deliberately a ``BaseException``: crash points must sail through the
    ``except Exception`` cleanup handlers on the save path exactly like
    a real ``SIGKILL`` would, leaving the torn state on disk.
    """


@dataclass
class FaultPlan:
    """One deterministic filesystem fault scenario (see module docs)."""

    #: Die immediately *before* mutating filesystem operation number
    #: ``kill_at`` (1-based over write/fsync/replace/dir-fsync calls).
    kill_at: int | None = None
    #: ``"kill"`` SIGKILLs the process; ``"raise"`` raises
    #: :class:`CrashPoint` instead (for single-process tests).
    crash: str = "kill"
    #: Total byte budget across all writes; the write that would exceed
    #: it persists the remaining allowance and raises ``ENOSPC``.
    enospc_at_byte: int | None = None
    #: The 1-based write call that persists only half its bytes and then
    #: crashes.
    torn_write_at: int | None = None
    #: Crash at the directory fsync that follows a rename (the rename
    #: itself lands).
    crash_after_replace: bool = False
    #: Persistent mode: every write fails with ``ENOSPC`` immediately.
    write_enospc: bool = False
    #: Persistent read mode: ``"eio"`` makes reads raise ``EIO``.
    read_error: str | None = None
    #: Persistent read mode: flip one seeded bit per read (bitrot).
    bitflip_seed: int | None = None


class FsOps:
    """Passthrough filesystem operations (the production shim).

    The store calls these instead of the ``os`` functions directly so a
    fault plan can interpose; each method is the obvious one-liner.
    """

    def write(self, descriptor: int, data: bytes) -> int:
        return os.write(descriptor, data)

    def fsync(self, descriptor: int) -> None:
        os.fsync(descriptor)

    def fsync_dir(self, descriptor: int) -> None:
        # Separate from :meth:`fsync` so plans can target the
        # rename-then-dirsync gap specifically.
        os.fsync(descriptor)

    def replace(self, source: str, destination: str) -> None:
        os.replace(source, destination)

    def unlink(self, path: str) -> None:
        # Deliberately NOT a counted mutating op in :class:`FaultyOps`:
        # unlinks happen only on failure-cleanup and temp-sweep paths,
        # never in the commit sequence, so counting them would renumber
        # every ``kill_at`` sweep for no extra crash coverage.
        os.unlink(path)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()


class FaultyOps(FsOps):
    """An :class:`FsOps` executing one :class:`FaultPlan`.

    ``ops`` counts mutating calls (write/fsync/dir-fsync/replace) so a
    fault-free dry run measures the kill-point space; ``writes`` and
    ``bytes_written`` track the write-specific plans.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.ops = 0
        self.writes = 0
        self.bytes_written = 0
        self._rng = random.Random(plan.bitflip_seed)

    def _crash(self, where: str) -> None:
        if self.plan.crash == "raise":
            raise CrashPoint(where)
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here

    def _tick(self) -> None:
        """Count one mutating op; die first if it is the kill point."""
        self.ops += 1
        if self.plan.kill_at is not None and self.ops >= self.plan.kill_at:
            self._crash(f"kill_at op {self.ops}")

    def write(self, descriptor: int, data: bytes) -> int:
        self._tick()
        self.writes += 1
        if self.plan.write_enospc:
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if self.plan.torn_write_at is not None and self.writes == self.plan.torn_write_at:
            os.write(descriptor, data[: len(data) // 2])
            self._crash(f"torn write at write {self.writes}")
        if self.plan.enospc_at_byte is not None:
            allowance = self.plan.enospc_at_byte - self.bytes_written
            if len(data) > allowance:
                if allowance > 0:
                    os.write(descriptor, data[:allowance])
                    self.bytes_written += allowance
                raise OSError(errno.ENOSPC, "injected: no space left on device")
        written = os.write(descriptor, data)
        self.bytes_written += written
        return written

    def fsync(self, descriptor: int) -> None:
        self._tick()
        os.fsync(descriptor)

    def fsync_dir(self, descriptor: int) -> None:
        self._tick()
        if self.plan.crash_after_replace:
            self._crash("crash after replace, before directory fsync")
        os.fsync(descriptor)

    def replace(self, source: str, destination: str) -> None:
        self._tick()
        os.replace(source, destination)

    def read_bytes(self, path: str) -> bytes:
        if self.plan.read_error == "eio":
            raise OSError(errno.EIO, f"injected: input/output error reading {path}")
        data = super().read_bytes(path)
        if self.plan.bitflip_seed is not None and data:
            position = self._rng.randrange(len(data) * 8)
            flipped = bytearray(data)
            flipped[position // 8] ^= 1 << (position % 8)
            return bytes(flipped)
        return data


_PASSTHROUGH = FsOps()
_active: FsOps = _PASSTHROUGH
_armed_from_env = False


def active() -> FsOps:
    """The currently installed shim (arming from :data:`SPEC_ENV` once)."""
    global _active, _armed_from_env
    if not _armed_from_env:
        _armed_from_env = True
        spec = os.environ.get(SPEC_ENV)
        if spec:
            _active = FaultyOps(plan_from_spec(spec))
    return _active


def install(ops: FsOps) -> FsOps:
    """Install ``ops`` as the process-wide shim (returns it)."""
    global _active, _armed_from_env
    _armed_from_env = True  # an explicit install overrides the env spec
    _active = ops
    return ops


def reset() -> None:
    """Restore the passthrough shim (clears any installed fault plan)."""
    install(_PASSTHROUGH)


@contextlib.contextmanager
def injected(plan: FaultPlan | FsOps):
    """Temporarily install a plan (or a prebuilt shim) around a block."""
    previous = active()
    ops = install(plan if isinstance(plan, FsOps) else FaultyOps(plan))
    try:
        yield ops
    finally:
        install(previous)


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse a comma-joined spec string into a :class:`FaultPlan`.

    Directives: ``kill:N``, ``enospc:BYTES``, ``torn:N``,
    ``dirsync-crash``, ``write-enospc``, ``eio``, ``bitflip:SEED``, and
    ``raise`` (crash by exception instead of SIGKILL).
    """
    plan = FaultPlan()
    for directive in spec.split(","):
        directive = directive.strip()
        if not directive:
            continue
        name, _, argument = directive.partition(":")
        if name == "kill":
            plan.kill_at = int(argument)
        elif name == "enospc":
            plan.enospc_at_byte = int(argument)
        elif name == "torn":
            plan.torn_write_at = int(argument)
        elif name == "dirsync-crash":
            plan.crash_after_replace = True
        elif name == "write-enospc":
            plan.write_enospc = True
        elif name == "eio":
            plan.read_error = "eio"
        elif name == "bitflip":
            plan.bitflip_seed = int(argument)
        elif name == "raise":
            plan.crash = "raise"
        else:
            raise ValueError(f"unknown fault directive {directive!r}")
    return plan


# -- the torture writer ------------------------------------------------------------------


def torture_writer(cache_dir: str, seed: int, draws: int) -> dict:
    """Grow the Figure-2 torture entry's sample prefix to ``draws``.

    The standard crash-torture writer body: warm-start the entry from
    ``cache_dir`` through the real session machinery, extend the shared
    pool, and save.  Returns the shim's mutating-operation count (the
    dry run sizes the kill sweep with it) and the persisted prefix
    length.  Faults arrive via :data:`SPEC_ENV`.
    """
    # Imported here: the engine must not depend on workloads at import
    # time (the writer is a harness entry point, not an engine layer).
    from ..chains import M_UR
    from ..workloads import figure2_database
    from .session import EstimationSession
    from .store import CacheStore

    database, constraints = figure2_database()
    entry = CacheStore(cache_dir).entry(database, constraints, M_UR.name, seed)
    session = EstimationSession(database, constraints, M_UR, cache=entry)
    pool = session.cached_pool(seed)
    pool.ensure(draws)
    entry.save()
    return {
        "ops": getattr(active(), "ops", 0),
        "samples": len(entry.sample_word_rows()),
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.fsfault",
        description="crash-torture writer: extend the torture cache entry",
    )
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--draws", type=int, required=True)
    arguments = parser.parse_args(argv)
    report = torture_writer(arguments.cache_dir, arguments.seed, arguments.draws)
    print(json.dumps(report))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    import sys

    # ``python -m`` executes this file as a *second* module instance
    # (``__main__``) while the store talks to the canonical
    # ``repro.engine.fsfault`` — delegate so the shim the writer reports
    # on is the one the store actually used.
    from repro.engine.fsfault import _main as _canonical_main

    sys.exit(_canonical_main())
