"""Workload planning: group estimation requests and share sample pools.

:func:`batch_estimate` takes a mixed workload of ``P_{M_Σ,Q}(D, c̄)``
requests — possibly over several databases, constraint sets and generators —
groups them by ``(database, constraints, generator)``, runs one
:class:`~repro.engine.session.EstimationSession` with a shared
:class:`~repro.engine.session.SamplePool` per group, and optionally fans the
groups out over a ``multiprocessing`` worker pool.

Seeding is per group and *content-derived*: :func:`group_seed_for` hashes
``(database, Σ, generator, workload seed)`` through
:func:`~repro.engine.store.instance_cache_key`, so a group's seed — and
hence its sample stream and estimates — is independent of the worker
count, of how requests interleave across groups, and of which *other*
groups share the run.  The long-running service plane
(:mod:`repro.service`) relies on exactly this: a request served from a
warm session is bit-identical to the same request inside any offline
``batch_estimate(seed=...)`` run, no matter the arrival order.  A request
outside the paper's FPRAS scope is reported as :attr:`BatchResult.error`
instead of aborting the rest of the batch (the per-call API keeps
raising, as before).

Two orthogonal switches extend the planner:

* ``mode="adaptive"`` — run each group's requests as concurrent sequential
  early-stopping estimators (:mod:`repro.approx.adaptive`), scheduled in
  doubling rounds over one shared pool (its length is the slowest stopping
  time, not the sum); per-request ``method`` is ignored in this mode.
* ``cache_dir=...`` — persist decompositions, possibility verdicts, bounds
  and pool sample batches per ``(database, Σ, generator, seed)`` key in a
  :class:`~repro.engine.store.CacheStore`, so reruns of the same workload
  warm-start (requires a workload ``seed``; unseeded runs are not
  reproducible and bypass the cache).
* ``backend="auto"|"vector"|"scalar"`` — the sample plane per group:
  ``auto`` (default) draws pools on the vectorized numpy plane when
  available (whole ``uint64``-packed batches, fixed-mode prefixes
  pre-drawn in one chunked pass) and falls back to the scalar interned
  kernel otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..approx.adaptive import AdaptiveResult
from ..approx.montecarlo import EstimateResult
from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from .session import EstimationSession
from .store import (
    STORE_ERRORS,
    CacheSerializationError,
    CacheStore,
    instance_cache_key,
)

#: Environment override for the multiprocessing start method used by
#: ``batch_estimate(workers=...)`` (same values as the ``start_method``
#: argument: ``fork`` / ``spawn`` / ``forkserver``).
START_METHOD_ENV = "REPRO_UOCQA_START_METHOD"


@dataclass(frozen=True)
class BatchRequest:
    """One estimation request of a batch workload.

    ``label`` is carried through untouched (the CLI uses it for the instance
    name); it does not participate in grouping.
    """

    database: Database
    constraints: FDSet
    generator: MarkovChainGenerator
    query: ConjunctiveQuery
    answer: tuple = ()
    epsilon: float = 0.2
    delta: float = 0.05
    method: str = "auto"
    max_samples: int | None = None
    label: str = ""

    def group_key(self) -> tuple[Database, FDSet, MarkovChainGenerator]:
        """Requests with equal keys share a session and a sample pool."""
        return (self.database, self.constraints, self.generator)


@dataclass(frozen=True)
class BatchResult:
    """The outcome of one request: an estimate, or a scope/usage error.

    ``result`` is an :class:`EstimateResult` in fixed mode and an
    :class:`~repro.approx.adaptive.AdaptiveResult` (which additionally
    carries the stopping confidence interval) in adaptive mode.
    """

    request: BatchRequest
    result: EstimateResult | AdaptiveResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def batch_estimate(
    requests: Iterable[BatchRequest],
    *,
    seed: int | None = None,
    workers: int | None = None,
    mode: str = "fixed",
    cache_dir: str | None = None,
    use_kernel: bool = True,
    backend: str = "auto",
    start_method: str | None = None,
) -> list[BatchResult]:
    """Estimate every request, sharing one sample pool per instance group.

    Results come back in input order.  With ``workers`` > 1 and more than
    one group, groups run in separate processes; estimates are identical to
    the serial run because each group owns a deterministic derived seed
    (``seed`` of ``None`` means fresh entropy per group, useful only when
    reproducibility does not matter).

    ``mode="adaptive"`` switches every group to the early-stopping
    scheduler; ``cache_dir`` persists per-group state across processes and
    runs (see the module docstring).  ``use_kernel=False`` forces the
    object-path samplers instead of the interned id kernel — results are
    bit-for-bit identical either way (the parity tests assert it); the
    switch exists for benchmarking and as a safety valve.

    ``backend`` picks the sample plane per group (see
    :meth:`~repro.engine.session.EstimationSession.resolved_backend`):
    ``"auto"`` (default) draws each group's pool on the vectorized numpy
    plane when available — workers then draw in whole batches, and fixed
    mode pre-draws a group's longest fixed prefix in one chunked pass —
    falling back to the scalar kernel otherwise.  Runs are reproducible
    per ``(seed, backend)``: both planes are deterministic, but they are
    *different* deterministic streams, so pin ``backend`` explicitly when
    comparing runs across machines with and without numpy.

    ``start_method`` pins the ``multiprocessing`` start method for the
    worker fan-out (``"fork"`` / ``"spawn"`` / ``"forkserver"``); the
    ``REPRO_UOCQA_START_METHOD`` environment variable is the deployment-
    level equivalent.  Left unset, ``fork`` is used only when the calling
    process is single-threaded — forking a process with live threads can
    deadlock the children (and is deprecated on Python 3.12+) — and
    ``spawn`` otherwise.  Estimates never depend on the start method.
    """
    if mode not in ("fixed", "adaptive"):
        raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
    if backend not in ("auto", "vector", "scalar"):
        raise ValueError(
            f"unknown backend {backend!r} (use 'auto', 'vector' or 'scalar')"
        )
    if (
        start_method is not None
        and start_method not in multiprocessing.get_all_start_methods()
    ):
        # Validated eagerly (not only when the fan-out actually runs) so a
        # typo fails the same way with one group as with many.
        raise ValueError(
            f"unknown start method {start_method!r}; this platform supports "
            f"{multiprocessing.get_all_start_methods()}"
        )
    indexed = list(enumerate(requests))
    groups: dict[tuple, list[tuple[int, BatchRequest]]] = {}
    for position, request in indexed:
        groups.setdefault(request.group_key(), []).append((position, request))
    payloads = [
        (
            members,
            group_seed_for(seed, *group_key),
            mode,
            cache_dir,
            use_kernel,
            backend,
        )
        for group_key, members in groups.items()
    ]
    if workers and workers > 1 and len(payloads) > 1:
        context = _pool_context(start_method)
        with context.Pool(min(workers, len(payloads))) as pool:
            chunks = pool.map(_estimate_group, payloads)
    else:
        chunks = [_estimate_group(payload) for payload in payloads]
    results: list[BatchResult | None] = [None] * len(indexed)
    for chunk in chunks:
        for position, outcome in chunk:
            results[position] = outcome
    return results  # type: ignore[return-value]  # every slot is filled above


def group_seed_for(
    seed: int | None,
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
) -> int | None:
    """The derived seed for one ``(database, Σ, generator)`` group.

    A pure function of the group *content* and the workload seed (the
    first 64 bits of :func:`~repro.engine.store.instance_cache_key`), so
    two runs — or a run and a long-lived service — that score the same
    group under the same workload seed draw the same stream even when the
    surrounding workloads differ.  ``None`` stays ``None`` (fresh entropy).
    """
    if seed is None:
        return None
    return int(instance_cache_key(database, constraints, generator.name, seed)[:16], 16)


def _pool_context(start_method: str | None = None):
    """The multiprocessing context for the worker fan-out.

    Precedence: the explicit ``start_method`` argument, then the
    ``REPRO_UOCQA_START_METHOD`` environment variable, then a safe
    default — ``fork`` (cheap, no import re-execution) only while the
    calling process is single-threaded, ``spawn`` otherwise.  A forked
    child inherits a snapshot of the parent's locks; with live threads
    (exactly the service case) a lock captured mid-acquire deadlocks the
    child, and CPython 3.12+ warns about the combination.
    """
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    if method is not None:
        if method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {method!r}; this platform supports "
                f"{multiprocessing.get_all_start_methods()}"
            )
        return multiprocessing.get_context(method)
    if (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    ):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _estimate_group(
    payload: tuple[
        Sequence[tuple[int, BatchRequest]], int | None, str, str | None, bool, str
    ],
) -> list[tuple[int, BatchResult]]:
    """Run one group's requests against a shared session + pool (picklable)."""
    from ..approx.fpras import FPRASUnavailable

    members, group_seed, mode, cache_dir, use_kernel, backend = payload
    first = members[0][1]
    cache = None
    if cache_dir is not None and group_seed is not None:
        cache = CacheStore(cache_dir).entry(
            first.database, first.constraints, first.generator.name, group_seed
        )
    session = EstimationSession(
        first.database,
        first.constraints,
        first.generator,
        cache=cache,
        use_kernel=use_kernel,
        backend=backend,
    )
    try:
        if cache is not None:
            pool = session.cached_pool(group_seed)
        else:
            pool = session.pool_for_seed(group_seed)
    except (FPRASUnavailable, ValueError) as error:
        return [
            (position, BatchResult(request, error=str(error)))
            for position, request in members
        ]
    outcomes = run_group(session, pool, members, mode)
    if cache is not None:
        try:
            cache.save()
        except (OSError, CacheSerializationError) as error:
            # The cache is an accelerator, never an authority: an
            # unwritable cache_dir — or an instance whose constants are
            # not JSON-serializable — must not discard computed results.
            # Absorbed, but *accounted* (and narrowly: a plain TypeError
            # or ValueError is a store bug and propagates).
            STORE_ERRORS.record("save", error)
    return outcomes


def run_group(
    session: EstimationSession,
    pool,
    members: Sequence[tuple[int, BatchRequest]],
    mode: str = "fixed",
) -> list[tuple[int, BatchResult]]:
    """Execute one group's requests against a warm session + shared pool.

    The single per-group execution path: both the offline planner above
    and the long-running service plane (:mod:`repro.service`) route every
    request through here, so a served estimate can never drift from its
    ``batch_estimate`` twin.  ``members`` rows are ``(position, request)``;
    the returned rows carry the positions back unchanged (fixed mode
    preserves member order, adaptive mode reports invalid requests first).
    Because every request evaluates the pool from position zero, results
    are independent of how ``members`` is partitioned across calls — the
    micro-batching server coalesces concurrent requests through this
    exact property.
    """
    if mode == "adaptive":
        return _run_adaptive_group(session, pool, members)
    if mode != "fixed":
        raise ValueError(f"unknown mode {mode!r} (use 'fixed' or 'adaptive')")
    return _run_fixed_group(session, pool, members)


def _prefetch_fixed_prefix(
    session: EstimationSession,
    pool,
    members: Sequence[tuple[int, BatchRequest]],
) -> None:
    """Pre-draw the group's longest fixed-method prefix in one chunked pass.

    Every fixed-method request reads its full Chernoff budget from
    position zero, so the longest such budget is materialized eventually
    anyway; drawing it up front lets vector pools fill whole batches
    back-to-back (and leaves the final pool length — hence the persisted
    cache entry — exactly what the per-request loop would produce).
    Requests that will error, are certified impossible, carry an empty
    witness (entailed by every sample — evaluated without touching the
    pool), or resolve to the stopping rule contribute nothing.
    """
    from ..approx.fpras import FPRASUnavailable

    longest = 0
    for _, request in members:
        try:
            if not session.is_possible(request.query, request.answer):
                continue
            if session._witness_eval(request.query, request.answer)[2]:
                # Empty witness: hits are known without evaluating, so
                # this request adds nothing a prefetch should pre-draw.
                continue
            resolved, budget, _ = session._resolve_method(
                request.query, request.epsilon, request.delta, request.method, None
            )
        except (FPRASUnavailable, ValueError):
            continue
        if resolved == "fixed":
            longest = max(longest, budget)
    if longest:
        pool.ensure(longest)


def _run_fixed_group(
    session: EstimationSession,
    pool,
    members: Sequence[tuple[int, BatchRequest]],
) -> list[tuple[int, BatchResult]]:
    from ..approx.fpras import FPRASUnavailable

    _prefetch_fixed_prefix(session, pool, members)
    outcomes: list[tuple[int, BatchResult]] = []
    for position, request in members:
        try:
            result = session.estimate_pooled(
                pool,
                request.query,
                request.answer,
                epsilon=request.epsilon,
                delta=request.delta,
                method=request.method,
                max_samples=request.max_samples,
            )
        except (FPRASUnavailable, ValueError) as error:
            outcomes.append((position, BatchResult(request, error=str(error))))
        else:
            outcomes.append((position, BatchResult(request, result=result)))
    return outcomes


def _run_adaptive_group(
    session: EstimationSession,
    pool,
    members: Sequence[tuple[int, BatchRequest]],
) -> list[tuple[int, BatchResult]]:
    """All requests of one group as concurrent early-stopping estimators.

    The whole group is scheduled in one :meth:`estimate_adaptive_many`
    call, so pool growth happens in shared doubling rounds; a request with
    invalid parameters is reported individually without sinking the group.
    """
    from ..approx.fpras import FPRASUnavailable

    specs = []
    spec_positions = []
    outcomes: list[tuple[int, BatchResult]] = []
    for position, request in members:
        try:
            # Eagerly rehearse estimator construction — (ε, δ), max_samples
            # *and* this query's positivity bound (which can underflow to
            # 0.0 on extreme instances) — so one bad request is reported
            # alone instead of aborting the whole group.  Certified
            # impossibilities skip the rehearsal: like the fixed path, the
            # zero-test resolves them before any estimator exists.  The
            # shared construction point guarantees the rehearsal validates
            # exactly what the scheduler will build.
            if session.is_possible(request.query, request.answer):
                session.adaptive_estimator(
                    request.query,
                    request.epsilon,
                    request.delta,
                    request.max_samples,
                )
        except (FPRASUnavailable, ValueError) as error:
            outcomes.append((position, BatchResult(request, error=str(error))))
            continue
        specs.append(
            (
                request.query,
                request.answer,
                request.epsilon,
                request.delta,
                request.max_samples,
            )
        )
        spec_positions.append((position, request))
    try:
        results = session.estimate_adaptive_many(pool, specs)
    except (FPRASUnavailable, ValueError) as error:
        outcomes.extend(
            (position, BatchResult(request, error=str(error)))
            for position, request in spec_positions
        )
        return outcomes
    for (position, request), result in zip(spec_positions, results):
        outcomes.append((position, BatchResult(request, result=result)))
    return outcomes
