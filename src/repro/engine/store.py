"""Persistent cross-run cache for estimation sessions.

Every process so far started cold: block decompositions, possibility
verdicts, positivity bounds and — most expensively — the sampled-repair
streams were recomputed on each CLI rerun, bench iteration or CI job.
:class:`CacheStore` persists them on disk so a repeated workload
warm-starts for free.

Layout: one JSON file per cache entry under the store directory, named by
the entry key — the SHA-256 content hash of the canonical serialization of
``(database, Σ, generator, seed)``.  Anything that could change a result
changes the key, so a hit can never replay stale state.  (The seed is part
of the key because the sample stream depends on it; the seed-independent
structural fields are deliberately duplicated across seeds — one key must
cover everything any persisted field could depend on.)  Each entry holds:

* ``version`` — the store format version; a mismatch invalidates the entry
  (except the documented v2 upgrade below);
* ``decomposition`` — the block decomposition (Lemma 5.2), as
  ``[{relation, group, facts}]`` rows;
* ``possibility`` — the cached polynomial zero-test verdicts, keyed by
  ``"<query>|<answer JSON>"``;
* ``bounds`` — positivity lower bounds, keyed by the query text;
* ``samples`` + ``backend`` + ``batch`` + ``rng_state`` — the materialized
  prefix of the shared :class:`~repro.engine.session.SamplePool` as
  **packed word rows**: each sample is a list of
  ``ceil(n_facts / 64)`` unsigned 64-bit words, word ``w`` holding fact
  ids ``64w .. 64w + 63`` of the sample's id bitmask (the vector plane's
  on-disk row *is* its in-memory ``uint64`` matrix row, and a scalar
  mask packs to the same words).  ``backend`` records which plane drew
  the prefix: ``"scalar"`` rows resume through the persisted
  ``random.Random`` state *after* the last draw; ``"vector"`` rows
  resume by batch index (``batch`` is the plane's batch size — part of
  its substream contract — and ``rng_state`` is ``null``).  Replayed
  estimates are identical to cold-run estimates on the same plane.

Version 4 adds the durability envelope: ``digest`` is the SHA-256 hex
digest of the entry's canonical serialization (sorted keys, compact
separators, the ``digest`` field itself excluded) — covering the packed
word rows, not just the key — and ``words`` records the packed row
width so :func:`fsck_store` can validate shapes without the database.
The digest is verified on every load, so a torn write, a truncation, or
a single flipped bit anywhere in the file is *detected* and the entry
degrades to recomputation instead of replaying damaged samples.

Entries written at older versions are **transparently upgraded** on
load: v3 entries (packed words, no digest) load warm as-is and the next
save rewrites them at v4 with a digest; v2 entries (id-array rows + RNG
state) decode to the same masks and re-encode as packed words with
``backend: "scalar"``.  A v2/v3 cache keeps its warm stream.  Version 1
entries (and any other mismatch) are recomputed.

Failure policy: the cache is an accelerator, never an authority.  Any
read problem — missing file, truncated/corrupt JSON, digest mismatch,
version mismatch, decoded facts that disagree with the live database —
silently degrades to recomputation (``tests/test_store.py`` exercises
each path), with the failure kind reported on
:attr:`CacheEntry.load_error` so callers can account it (the service
plane feeds these into ``repro_store_errors_total``).  Writes are
crash-consistent: the document is written to a temp file, fsynced,
renamed over the entry with ``os.replace``, and the directory is
fsynced — so after a crash at *any* point a reader sees exactly the old
entry or exactly the new one, never a mix (the crash-torture harness in
``tests/test_crash_torture.py`` SIGKILLs writers at every operation in
that sequence and asserts it).  All commit-path filesystem calls route
through :mod:`repro.engine.fsfault`, the injectable fault shim the
harness drives.  Failed writers may leave ``*.tmp`` files behind;
:class:`CacheStore` sweeps temp files older than a grace period when it
opens a directory.

Concurrent writers: two processes sharing a ``cache_dir`` for the same
key both load, compute, and save — a blind write would silently drop
whatever the other process appended in between (last writer wins).
:meth:`CacheEntry.save` therefore **reloads and merges** the on-disk
document before writing: structural fields union (both writers computed
them from the same instance, so values agree), and of two sample
prefixes on the same plane the *longer* wins — both are prefixes of the
same deterministic stream, so the longer one extends the shorter.  On
platforms with ``fcntl`` the reload-merge-write runs under an advisory
``flock`` on the store directory, making it atomic against other
writers; elsewhere it degrades to best-effort (the merge still closes
almost all of the window).
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import tempfile
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

try:  # pragma: no cover - platform probe (Linux/macOS have it, Windows not)
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..core.blocks import Block, BlockDecomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import mask_ids
from ..core.queries import ConjunctiveQuery
from . import fsfault as _fsfault

# The packed-word geometry is owned by the vector plane: the v3 format's
# core invariant is "the on-disk word row IS the plane's uint64 matrix
# row", so the store reads the constants from the one place that defines
# them (the module imports cleanly without numpy).
from ..sampling.vectorized import WORD_BITS as _WORD_BITS
from ..sampling.vectorized import words_for as _words_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session imports store)
    from .session import SamplePool

#: Bump when the on-disk schema changes; old entries are then recomputed.
#: v2: sample rows are the interned kernel's id arrays (ids into the
#: canonical fact order — byte-compatible with v1's index rows, but the
#: decode contract is now "ids of the session's InstanceIndex", and warm
#: pools preload them as bitmasks without reconstructing facts).
#: v3: sample rows are packed uint64 word lists (the vector plane's
#: bitset-matrix rows) plus ``backend``/``batch`` metadata; v2 entries
#: upgrade in place on load instead of being recomputed.
#: v4: the durability envelope — ``digest`` (SHA-256 over the canonical
#: serialization, verified on every load) and ``words`` (packed row
#: width, for database-free fsck); v2/v3 entries upgrade in place.
STORE_VERSION = 4

#: Orphaned ``*.tmp`` files older than this are swept when a
#: :class:`CacheStore` opens a directory (long enough that a live
#: writer's temp file — written, fsynced and renamed within one save —
#: is never collected out from under it).
TMP_SWEEP_GRACE_SECONDS = 300.0


def _freeze(value: Any) -> Any:
    """JSON arrays decode to lists; fact/group values need tuples back."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _encode_fact(fact: Fact) -> list:
    return [fact.relation, *fact.values]


def _decode_fact(row: Any) -> Fact:
    if not isinstance(row, list) or len(row) < 2:
        raise CacheFormatError(f"malformed fact row {row!r}")
    relation, *values = row
    return Fact(str(relation), tuple(_freeze(v) for v in values))


def _mask_to_words(mask: int, words: int) -> list[int]:
    """An id bitmask as its packed word row (little-endian word order)."""
    return [
        (mask >> (_WORD_BITS * position)) & ((1 << _WORD_BITS) - 1)
        for position in range(words)
    ]


class CacheFormatError(ValueError):
    """Raised internally for undecodable entry payloads (never escapes reads)."""


class CacheSerializationError(ValueError):
    """Raised by :meth:`CacheEntry.save` when the document cannot be
    serialized to JSON (e.g. an instance whose constants are not
    JSON-native).

    A distinct type so callers can treat "this instance is not
    cacheable" as the benign, accountable condition it is — catching
    ``(OSError, CacheSerializationError)`` — while genuine
    ``TypeError``/``ValueError`` bugs in the store keep propagating.
    """


def classify_store_error(error: BaseException) -> str:
    """A bounded-cardinality kind label for one store failure.

    The label set (``enospc`` / ``readonly`` / ``eio`` / ``os`` /
    ``serialize`` / ``unknown``, plus the read-side ``corrupt``) is what
    the service exports as the ``kind`` label of
    ``repro_store_errors_total`` — coarse on purpose, so callers cannot
    mint metric series.
    """
    if isinstance(error, CacheSerializationError):
        return "serialize"
    if isinstance(error, OSError):
        if error.errno == errno.ENOSPC:
            return "enospc"
        if error.errno in (errno.EROFS, errno.EACCES, errno.EPERM):
            return "readonly"
        if error.errno == errno.EIO:
            return "eio"
        return "os"
    return "unknown"


class StoreErrorLog:
    """Thread-safe ``(op, kind)`` store-failure counters + a degraded flag.

    The accounting spine of degraded mode: every absorbed store failure
    is recorded here instead of being silently squelched.  ``degraded``
    is level-triggered — set by :meth:`record`, cleared by
    :meth:`mark_ok` on the next successful store interaction — which is
    what the service's ``repro_degraded_mode`` gauge exports.  An
    optional ``listener`` callable ``(op, kind)`` fires outside the lock
    on every record (the server bridges it to a labeled counter).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self.last_error: str | None = None
        self.degraded = False
        self.listener: Callable[[str, str], None] | None = None

    def record(self, op: str, error: BaseException | str) -> str:
        """Count one failure of ``op`` and enter degraded mode.

        ``error`` is an exception (classified via
        :func:`classify_store_error`) or an already-classified kind
        string such as ``"corrupt"``.  Returns the kind.
        """
        kind = error if isinstance(error, str) else classify_store_error(error)
        with self._lock:
            self._counts[(op, kind)] = self._counts.get((op, kind), 0) + 1
            self.degraded = True
            self.last_error = f"{op}: {error}"
        listener = self.listener
        if listener is not None:
            listener(op, kind)
        return kind

    def mark_ok(self) -> None:
        """A store interaction succeeded: leave degraded mode."""
        with self._lock:
            self.degraded = False

    def total(self) -> int:
        """All failures recorded so far."""
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> dict:
        """JSON-native view: counts keyed ``"op:kind"``, flag, last error."""
        with self._lock:
            return {
                "degraded": self.degraded,
                "total": sum(self._counts.values()),
                "errors": {
                    f"{op}:{kind}": count
                    for (op, kind), count in sorted(self._counts.items())
                },
                "last_error": self.last_error,
            }


#: The process-wide log offline paths (``batch_estimate``) record into;
#: the service plane uses one :class:`StoreErrorLog` per registry instead.
STORE_ERRORS = StoreErrorLog()


def _document_digest(document: dict[str, Any]) -> str:
    """SHA-256 hex digest of a document's canonical serialization.

    Canonical = sorted keys, compact separators, the ``digest`` field
    itself excluded.  Computed over the parsed values (not the file
    bytes), so the verification is byte-layout independent — and because
    v4 files are *written* in this same compact form, every byte of the
    file is semantic: any single-bit flip either breaks the JSON parse
    or changes a value the digest covers.
    """
    body = {key: value for key, value in document.items() if key != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@contextlib.contextmanager
def _directory_lock(directory: str):
    """Advisory exclusive lock on a store directory (no-op without fcntl).

    Locking the directory *fd* itself leaves no stray lock files in the
    store and survives the temp-file + ``os.replace`` dance (a lock on the
    entry file would be held on a dead inode after the first replace).
    Coarser than per-entry locking, but saves are rare and short.
    """
    if fcntl is None:
        yield
        return
    descriptor = os.open(directory, os.O_RDONLY)
    try:
        fcntl.flock(descriptor, fcntl.LOCK_EX)
        yield
    finally:
        os.close(descriptor)  # closing releases the flock


def _fsync_directory(directory: str, ops: "_fsfault.FsOps") -> None:
    """Make a completed rename durable (best-effort where unsupported).

    A failure here never loses data that was not already at risk: the
    replace has landed, so the new entry is visible; the directory fsync
    only narrows the power-loss window.  Platforms/filesystems that
    cannot open or fsync directories degrade silently — the rename is
    still atomic.  (A :class:`~repro.engine.fsfault.CrashPoint` is a
    ``BaseException`` and sails through, like the real crash it models.)
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        ops.fsync_dir(descriptor)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(descriptor)


def instance_cache_key(
    database: Database,
    constraints: FDSet,
    generator_name: str,
    seed: int | None,
) -> str:
    """SHA-256 content hash of ``(database, Σ, generator, seed)``.

    The serialization is canonical (sorted facts, sorted FD attribute
    lists, sorted JSON keys), so equal instances hash equally regardless
    of construction order.  Non-JSON-native constants serialize via
    ``repr`` — which carries the type (``Decimal('1')`` vs ``'1'``) — so
    type-distinct values that merely *stringify* equally cannot collide
    onto one key.
    """
    schema = constraints.schema
    payload = {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "facts": [_encode_fact(f) for f in database.sorted_facts()],
        "fds": [
            [d.relation, sorted(map(str, d.lhs)), sorted(map(str, d.rhs))]
            for d in sorted(constraints, key=str)
        ],
        "generator": generator_name,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheEntry:
    """One persisted ``(database, Σ, generator, seed)`` bundle.

    Obtained from :meth:`CacheStore.entry`.  Getters return ``None`` on any
    miss *or* decode problem; setters mark the entry dirty; :meth:`save`
    writes atomically (and is a no-op when nothing changed).
    """

    def __init__(self, path: str, database: Database, constraints: FDSet):
        self.path = path
        self._database = database
        self._constraints = constraints
        self._dirty = False
        #: Why the on-disk entry was unusable, when it was: ``"corrupt"``
        #: (damage the digest/structure checks caught) or an OSError kind
        #: from :func:`classify_store_error`.  ``None`` for a clean load
        #: *and* for a plain miss — absence is not an error.
        self.load_error: str | None = None
        self._document = self._load()
        self._pool: "SamplePool | None" = None
        self._rng = None

    # -- load / save -----------------------------------------------------------------

    def _load(self) -> dict[str, Any]:
        empty = {
            "version": STORE_VERSION,
            "decomposition": None,
            "possibility": {},
            "bounds": {},
            "samples": [],
            "rng_state": None,
            "backend": None,
            "batch": None,
        }
        try:
            raw = _fsfault.active().read_bytes(self.path)
        except FileNotFoundError:
            return empty
        except OSError as error:
            self.load_error = classify_store_error(error)
            return empty
        try:
            document = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            self.load_error = "corrupt"
            return empty
        if not isinstance(document, dict):
            self.load_error = "corrupt"
            return empty
        version = document.get("version")
        if version not in (2, 3, STORE_VERSION):
            return empty  # a legitimately old/new format, not damage
        for field, kind in (("possibility", dict), ("bounds", dict), ("samples", list)):
            if not isinstance(document.get(field), kind):
                self.load_error = "corrupt"
                return empty
        if version == 2:
            return self._upgrade_v2(document, empty)
        if document.get("backend") not in (None, "scalar", "vector"):
            self.load_error = "corrupt"
            return empty
        batch = document.get("batch")
        if batch is not None and (
            isinstance(batch, bool) or not isinstance(batch, int) or batch < 1
        ):
            self.load_error = "corrupt"
            return empty
        if version == 3:
            # Digestless v3 entries load warm as-is; the dirty mark makes
            # the next save rewrite them inside the v4 envelope.
            document["version"] = STORE_VERSION
            document["words"] = self._sample_words()
            self._dirty = True
            return document
        if document.get("words") != self._sample_words():
            self.load_error = "corrupt"
            return empty
        digest = document.get("digest")
        if not isinstance(digest, str) or digest != _document_digest(document):
            self.load_error = "corrupt"
            return empty
        return document

    def _upgrade_v2(self, document: dict[str, Any], empty: dict[str, Any]) -> dict[str, Any]:
        """Re-encode a v2 entry in place (id rows → packed words, scalar plane).

        The structural fields carry over unchanged; sample rows decode
        with the v2 validation rules and re-encode as packed words, so the
        warm stream survives the format bump.  Undecodable rows degrade to
        an empty stream (never to a wrong one).  The entry is marked dirty
        so the next save rewrites it at the current version.
        """
        masks = self._decode_v2_rows(document["samples"])
        upgraded = dict(empty)
        upgraded["decomposition"] = document.get("decomposition")
        upgraded["possibility"] = document["possibility"]
        upgraded["bounds"] = document["bounds"]
        if masks:
            words = self._sample_words()
            upgraded["samples"] = [_mask_to_words(mask, words) for mask in masks]
            upgraded["rng_state"] = document.get("rng_state")
            upgraded["backend"] = "scalar"
        self._dirty = True
        return upgraded

    def _decode_v2_rows(self, rows: Any) -> list[int]:
        """v2 id rows → masks, with the v2 validation rules (empty on damage)."""
        size = len(self._fact_order())
        decoded: list[int] = []
        try:
            for row in rows:
                mask = 0
                for identifier in row:
                    if (
                        # bool is an int subclass: true/false would silently
                        # decode as fact 1/0, altering the replayed stream.
                        isinstance(identifier, bool)
                        or not isinstance(identifier, int)
                        or not 0 <= identifier < size
                    ):
                        raise CacheFormatError("malformed sample id row")
                    bit = 1 << identifier
                    if mask & bit:
                        raise CacheFormatError("duplicate sample ids")
                    mask |= bit
                decoded.append(mask)
        except (CacheFormatError, TypeError):
            return []
        return decoded

    def save(self) -> bool:
        """Crash-consistently persist the entry if anything changed.

        Returns ``True`` when a commit actually reached the filesystem,
        ``False`` for the clean no-op (nothing dirty) — callers that
        account store health (degraded mode) must not treat a no-op as
        evidence the disk works.

        Never a blind write: under an advisory lock on the store
        directory (where the platform has one) the on-disk document is
        reloaded and merged first, so a concurrent run that appended its
        own sample batches or verdicts between our load and our save
        keeps them — see :meth:`_merge_from_disk`.

        The commit sequence is write → fsync(temp) → ``os.replace`` →
        fsync(directory): a crash before the replace leaves the old
        entry untouched, a crash after it leaves the new entry complete
        (the temp file's contents are durable *before* the rename makes
        them visible), and the directory fsync makes the rename itself
        durable.  The v4 envelope (``digest`` over the canonical
        serialization, ``words``) is stamped here.  Raises
        :class:`CacheSerializationError` when the document holds
        non-JSON-native values, ``OSError`` on filesystem failure.
        """
        if self._pool is not None:
            self._sync_pool()
        if not self._dirty:
            return False
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        ops = _fsfault.active()
        with _directory_lock(directory):
            self._merge_from_disk()
            payload = dict(self._document)
            payload["version"] = STORE_VERSION
            payload["words"] = self._sample_words()
            payload.pop("digest", None)
            try:
                payload["digest"] = _document_digest(payload)
                # Written in the same canonical form the digest is
                # computed over: every byte of the file is semantic.
                encoded = json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            except (TypeError, ValueError) as error:
                raise CacheSerializationError(
                    f"cache entry is not JSON-serializable: {error}"
                ) from error
            descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                try:
                    ops.write(descriptor, encoded)
                    ops.fsync(descriptor)
                finally:
                    os.close(descriptor)
                ops.replace(temp_path, self.path)
            except Exception:
                # Clean the temp file up on failure before re-raising.
                # (CrashPoint is a BaseException and deliberately skips
                # this — a simulated crash must leave its wreckage.)
                try:
                    ops.unlink(temp_path)
                except OSError:
                    pass
                raise
            _fsync_directory(directory, ops)
        self._document = payload
        self._dirty = False
        return True

    def _merge_from_disk(self) -> None:
        """Fold a concurrent writer's on-disk progress into this document.

        Both writers hold the same ``(database, Σ, generator, seed)`` key,
        so their computed values agree wherever they overlap; merging is
        about *union*, not reconciliation:

        * possibility verdicts and bounds: union, ours on (equal-valued)
          overlap;
        * decomposition: ours, theirs only when we never computed one;
        * samples: prefixes of the same seeded stream extend each other,
          so of two same-plane prefixes the longer survives together with
          its resume state (RNG state / batch size).  A prefix from the
          *other* plane is a different stream — ours wins outright.

        A missing, corrupt, or stale-version file contributes nothing
        (the load path already validates and degrades to empty).
        """
        disk = CacheEntry(self.path, self._database, self._constraints)
        theirs = disk._document
        document = self._document
        for field in ("possibility", "bounds"):
            merged = dict(theirs[field])
            merged.update(document[field])
            document[field] = merged
        if document.get("decomposition") is None:
            document["decomposition"] = theirs.get("decomposition")
        ours_backend = document.get("backend")
        theirs_backend = disk.sample_backend()
        if theirs_backend is not None and disk.sample_word_rows():
            same_plane = ours_backend == theirs_backend and (
                theirs_backend != "vector"
                or document.get("batch") == theirs.get("batch")
            )
            adopt = ours_backend is None or (
                same_plane and len(theirs["samples"]) > len(document["samples"])
            )
            if adopt:
                # .get(): a minimally valid v3 file may omit the resume
                # fields entirely — absent must merge like null, never
                # crash the save (the accelerator-not-authority policy).
                for field in ("samples", "rng_state", "backend", "batch"):
                    document[field] = theirs.get(field)

    # -- decomposition ---------------------------------------------------------------

    def get_decomposition(self) -> BlockDecomposition | None:
        """The persisted block decomposition, validated against ``(D, Σ)``.

        Validation is structural, not just set-level: the fact union must
        equal the database, every block must be a genuine key-group of its
        relation (per Σ), groups must be unique, and blocks are re-sorted
        into the canonical order :func:`block_decomposition` produces — so
        a tampered regrouping or reordering is rejected/neutralized rather
        than silently changing sampler behaviour.
        """
        rows = self._document.get("decomposition")
        if not isinstance(rows, list):
            return None
        try:
            blocks = []
            for row in rows:
                facts = frozenset(_decode_fact(r) for r in row["facts"])
                blocks.append(Block(str(row["relation"]), _freeze(row["group"]), facts))
        except (CacheFormatError, KeyError, TypeError, ValueError):
            return None
        decoded = frozenset(f for block in blocks for f in block.facts)
        if decoded != self._database.facts:
            return None  # key collision or corruption: recompute, never trust
        if not self._blocks_match_constraints(blocks):
            return None
        blocks.sort(key=lambda block: (block.relation, repr(block.group)))
        return BlockDecomposition(tuple(blocks))

    def _blocks_match_constraints(self, blocks: list[Block]) -> bool:
        """Whether every decoded block is a real key-group under ``Σ``."""
        key_by_relation = {d.relation: d for d in self._constraints}
        schema = self._constraints.schema
        seen: set[tuple] = set()
        try:
            for block in blocks:
                if any(f.relation != block.relation for f in block.facts):
                    return False
                dependency = key_by_relation.get(block.relation)
                if dependency is None:
                    # Relations without a key contribute singleton blocks.
                    (only,) = block.facts
                    if block.group != (str(only),):
                        return False
                else:
                    positions = schema.relation(block.relation).positions_of(
                        sorted(dependency.lhs)
                    )
                    groups = {
                        tuple(f.values[i] for i in positions) for f in block.facts
                    }
                    if groups != {block.group}:
                        return False
                identity = (block.relation, block.group)
                if identity in seen:
                    return False  # a split block: groups must be maximal
                seen.add(identity)
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def set_decomposition(self, decomposition: BlockDecomposition) -> None:
        """Persist a freshly computed decomposition."""
        self._document["decomposition"] = [
            {
                "relation": block.relation,
                "group": list(block.group),
                "facts": [_encode_fact(f) for f in block.sorted_facts()],
            }
            for block in decomposition
        ]
        self._dirty = True

    # -- possibility verdicts and positivity bounds ------------------------------------

    @staticmethod
    def _request_key(query: ConjunctiveQuery, answer: tuple) -> str:
        # default=repr, not str: repr carries the type, so type-distinct
        # constants that stringify equally (Decimal('1') vs '1') cannot
        # collide onto one verdict key.
        return f"{query}|{json.dumps(list(answer), default=repr)}"

    def get_possible(self, query: ConjunctiveQuery, answer: tuple) -> bool | None:
        """The cached zero-test verdict for ``(query, answer)``, if any."""
        value = self._document["possibility"].get(self._request_key(query, answer))
        return value if isinstance(value, bool) else None

    def set_possible(self, query: ConjunctiveQuery, answer: tuple, value: bool) -> None:
        """Persist one zero-test verdict."""
        self._document["possibility"][self._request_key(query, answer)] = bool(value)
        self._dirty = True

    def get_bound(self, query: ConjunctiveQuery) -> float | None:
        """The cached positivity lower bound for ``query``, if any.

        A bound outside ``(0, 1]`` (tampering, or a serialization accident)
        is treated as a miss — estimators reject such values, and the cache
        must degrade to recomputation rather than propagate the error.
        """
        value = self._document["bounds"].get(str(query))
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value) if 0 < value <= 1 else None

    def set_bound(self, query: ConjunctiveQuery, value: float) -> None:
        """Persist one positivity bound."""
        self._document["bounds"][str(query)] = float(value)
        self._dirty = True

    # -- sample batches ---------------------------------------------------------------

    def _fact_order(self) -> list[Fact]:
        if not hasattr(self, "_sorted_facts"):
            self._sorted_facts = self._database.sorted_facts()
        return self._sorted_facts

    def _sample_words(self) -> int:
        """Packed words per sample row for this entry's database."""
        return _words_for(len(self._fact_order()))

    def sample_backend(self) -> str | None:
        """Which plane drew the persisted prefix (``None`` when unknown/empty)."""
        value = self._document.get("backend")
        return value if value in ("scalar", "vector") else None

    def sample_batch(self) -> int | None:
        """The vector plane's batch size the prefix was drawn with, if any."""
        value = self._document.get("batch")
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            return None
        return value

    def sample_word_rows(self) -> list[list[int]]:
        """The persisted sample prefix as validated packed word rows.

        The zero-conversion view for vector pools (their in-memory matrix
        row is the on-disk row).  A row of the wrong width, a non-integer
        or out-of-range word, or set bits beyond the instance's fact
        count marks the entry corrupt and the whole batch is
        **discarded** (resume state would be meaningless for a different
        stream), so the next :meth:`save` rewrites a clean entry instead
        of preserving the damage.
        """
        size = len(self._fact_order())
        words = self._sample_words()
        rows: list[list[int]] = []
        try:
            for row in self._document["samples"]:
                if not isinstance(row, list) or len(row) != words:
                    raise CacheFormatError("malformed sample word row")
                for word in row:
                    if (
                        # bool is an int subclass: reject it here like the
                        # v2 id decoder always did.
                        isinstance(word, bool)
                        or not isinstance(word, int)
                        or not 0 <= word < (1 << _WORD_BITS)
                    ):
                        raise CacheFormatError("malformed sample word")
                if words and row[-1] >> (size - _WORD_BITS * (words - 1)):
                    raise CacheFormatError("sample bits beyond the instance")
                rows.append(row)
        except (CacheFormatError, TypeError):
            self.discard_samples()
            return []
        return rows

    def preload_sample_masks(self) -> list[int]:
        """The persisted sample prefix as id bitmasks (empty on any decode
        problem) — :meth:`sample_word_rows` shift-OR'ed together, pure
        integer work with no fact reconstruction."""
        return [
            sum(word << (_WORD_BITS * position) for position, word in enumerate(row))
            for row in self.sample_word_rows()
        ]

    def preload_samples(self) -> list[frozenset[Fact]]:
        """The persisted sample prefix as fact sets (compatibility view)."""
        order = self._fact_order()
        return [
            frozenset(order[identifier] for identifier in mask_ids(mask))
            for mask in self.preload_sample_masks()
        ]

    def discard_samples(self) -> None:
        """Drop the persisted sample prefix (and its resume metadata)."""
        if (
            self._document["samples"]
            or self._document.get("rng_state") is not None
            or self._document.get("backend") is not None
            or self._document.get("batch") is not None
        ):
            self._document["samples"] = []
            self._document["rng_state"] = None
            self._document["backend"] = None
            self._document["batch"] = None
            self._dirty = True

    def rng_state(self) -> tuple | None:
        """The persisted ``random.Random`` state, decoded for ``setstate``."""
        raw = self._document.get("rng_state")
        if not isinstance(raw, list) or len(raw) != 3 or not isinstance(raw[1], list):
            return None
        try:
            return (raw[0], tuple(raw[1]), raw[2])
        except TypeError:
            return None

    def attach_pool(self, pool: "SamplePool", rng=None) -> None:
        """Track a live pool (+ RNG for scalar pools) so :meth:`save`
        persists newly drawn samples.

        Scalar pools must come with the RNG that draws them — persisting
        their prefix without its post-draw state would be unreplayable —
        so the omission fails here, not deep inside :meth:`save`.
        """
        if rng is None and getattr(pool, "backend", "scalar") != "vector":
            raise ValueError("attach_pool() needs the drawing RNG for scalar pools")
        self._pool = pool
        self._rng = rng

    def pool_segment_name(self) -> str | None:
        """The shared-memory segment backing the attached pool, if any.

        Sharded workers back their vector pools with
        :class:`~repro.sampling.vectorized.SharedSampleSegment` matrices;
        the store's v3 word row is that very matrix row, so
        :meth:`_sync_pool` already reads the shared bytes zero-copy.
        This accessor exposes the segment name for cross-process
        attachment and for eviction tests; ``None`` for private pools.
        """
        segment = getattr(self._pool, "shared_segment", None) if self._pool else None
        return segment.name if segment is not None else None

    def _sync_pool(self) -> None:
        drawn = len(self._pool)
        if drawn <= len(self._document["samples"]):
            return
        backend = getattr(self._pool, "backend", "scalar")
        if backend == "vector":
            # The on-disk row IS the pool's packed uint64 matrix row:
            # serialize it directly, never round-tripping through the
            # pool's (lazily decoded) arbitrary-precision masks.  Vector
            # prefixes resume by batch index — the substream contract
            # replaces the RNG state (the batch size is part of it).
            self._document["samples"] = self._pool.packed_prefix(drawn).tolist()
            self._document["batch"] = self._pool.batch_size
            self._document["rng_state"] = None
        else:
            words = self._sample_words()
            materialized = self._pool.materialized_samples()
            if getattr(self._pool, "interned", False):
                # Interned pools hold id bitmasks (the index order equals
                # the canonical fact order): encoding never touches a Fact.
                masks = materialized
            else:
                index_of = {
                    fact: index for index, fact in enumerate(self._fact_order())
                }
                masks = [
                    sum(1 << index_of[f] for f in sample) for sample in materialized
                ]
            self._document["samples"] = [
                _mask_to_words(mask, words) for mask in masks
            ]
            self._document["batch"] = None
            state = self._rng.getstate()
            self._document["rng_state"] = [state[0], list(state[1]), state[2]]
        self._document["backend"] = backend
        self._dirty = True


class CacheStore:
    """A directory of :class:`CacheEntry` files, one per instance key.

    Opening a store sweeps orphaned ``*.tmp`` files — the wreckage of
    crashed or failed writers — that are older than
    ``tmp_grace_seconds`` (default :data:`TMP_SWEEP_GRACE_SECONDS`),
    under the same advisory directory lock saves take, so a live
    writer's in-flight temp file is never collected.
    """

    def __init__(
        self,
        directory: str,
        *,
        tmp_grace_seconds: float = TMP_SWEEP_GRACE_SECONDS,
    ):
        self.directory = str(directory)
        self.tmp_grace_seconds = tmp_grace_seconds
        self.swept_temps = self.sweep_temps()

    def sweep_temps(self) -> int:
        """Unlink stale orphaned temp files; returns how many went.

        Best-effort on every path: a missing directory, an unlistable
        directory, or a temp file that vanishes mid-sweep (a concurrent
        sweeper, or the writer completing) is simply skipped.
        """
        try:
            names = [n for n in os.listdir(self.directory) if n.endswith(".tmp")]
        except OSError:
            return 0
        if not names:
            return 0
        removed = 0
        # The grace cutoff compares against on-disk mtimes, which are
        # wall-clock by nature; monotonic time has no relation to them.
        cutoff = time.time() - self.tmp_grace_seconds  # repro-lint: disable=RL002
        with _directory_lock(self.directory):
            for name in names:
                path = os.path.join(self.directory, name)
                try:
                    if os.stat(path).st_mtime <= cutoff:
                        _fsfault.active().unlink(path)
                        removed += 1
                except OSError:
                    continue
        return removed

    def entry(
        self,
        database: Database,
        constraints: FDSet,
        generator_name: str,
        seed: int | None,
    ) -> CacheEntry:
        """Load (or initialize empty) the entry for this instance key."""
        key = instance_cache_key(database, constraints, generator_name, seed)
        path = os.path.join(self.directory, f"{key}.json")
        return CacheEntry(path, database, constraints)


# -- fsck ------------------------------------------------------------------------------


class FsckReport:
    """What :func:`fsck_store` found in one cache directory.

    ``entries`` rows are ``{"file", "status", "detail"}`` with status
    ``"ok"`` / ``"damaged"`` / ``"quarantined"`` (damaged + repaired) /
    ``"orphan-tmp"`` / ``"removed-tmp"``.  ``ok`` is ``False`` exactly
    when damage was found — repaired or not — so a CI leg can assert
    "fsck fails, repair, fsck passes".  Orphan temp files are reported
    but are *not* damage (every crashed writer leaves one).
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.entries: list[dict] = []
        self.scanned = 0
        self.damaged = 0
        self.quarantined = 0
        self.orphan_temps = 0

    @property
    def ok(self) -> bool:
        return self.damaged == 0

    def to_dict(self) -> dict:
        """The report as one JSON-native document."""
        return {
            "directory": self.directory,
            "ok": self.ok,
            "scanned": self.scanned,
            "damaged": self.damaged,
            "quarantined": self.quarantined,
            "orphan_temps": self.orphan_temps,
            "entries": list(self.entries),
        }

    def render(self) -> str:
        """The human-readable summary the ``fsck`` CLI prints."""
        lines = [
            f"fsck {self.directory}: {self.scanned} entries scanned, "
            f"{self.damaged} damaged"
            + (f" ({self.quarantined} quarantined)" if self.quarantined else "")
            + (
                f", {self.orphan_temps} orphan temp files"
                if self.orphan_temps
                else ""
            )
        ]
        for row in self.entries:
            if row["status"] != "ok":
                lines.append(f"  {row['file']}: {row['status']} — {row['detail']}")
        lines.append("fsck " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _fsck_document(document: Any) -> str | None:
    """Damage detail for one parsed entry document (``None`` = clean)."""
    if not isinstance(document, dict):
        return "not a JSON object"
    version = document.get("version")
    if version not in (2, 3, STORE_VERSION):
        return f"unknown store version {version!r}"
    for field, kind in (("possibility", dict), ("bounds", dict), ("samples", list)):
        if not isinstance(document.get(field), kind):
            return f"malformed {field!r} field"
    if version == 2:
        return None  # digestless legacy; loads upgrade or recompute it
    if document.get("backend") not in (None, "scalar", "vector"):
        return f"unknown sample backend {document.get('backend')!r}"
    widths = set()
    for row in document["samples"]:
        if not isinstance(row, list):
            return "non-list sample row"
        widths.add(len(row))
        for word in row:
            if (
                isinstance(word, bool)
                or not isinstance(word, int)
                or not 0 <= word < (1 << _WORD_BITS)
            ):
                return f"sample word {word!r} outside uint64"
    if len(widths) > 1:
        return f"inconsistent sample row widths {sorted(widths)}"
    if version == 3:
        return None  # digestless; structural checks are all we have
    words = document.get("words")
    if isinstance(words, bool) or not isinstance(words, int) or words < 0:
        return f"malformed 'words' field {words!r}"
    if widths and widths != {words}:
        return f"sample rows are {sorted(widths)} words wide, header says {words}"
    digest = document.get("digest")
    if not isinstance(digest, str):
        return "missing content digest"
    expected = _document_digest(document)
    if digest != expected:
        return f"content digest mismatch (stored {digest[:12]}…, computed {expected[:12]}…)"
    return None


def fsck_store(directory: str, *, repair: bool = False) -> FsckReport:
    """Scan a cache directory; verify every entry's digest and structure.

    Checks each ``*.json`` entry for valid JSON, a known store version,
    field structure, packed-row shape, and — for v4 entries — the
    SHA-256 content digest (which catches any torn write, truncation or
    bit flip).  Orphaned ``*.tmp`` files are reported informationally.
    With ``repair=True``, damaged entries are **quarantined** (renamed
    to ``<name>.quarantined``, preserving the bytes for forensics) so
    the next warm run recomputes cleanly, and orphan temp files are
    removed regardless of age.  The scan needs no database: v4 entries
    carry their row width in ``words``.
    """
    report = FsckReport(str(directory))
    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        report.entries.append(
            {"file": "", "status": "damaged", "detail": f"unlistable: {error}"}
        )
        report.damaged += 1
        return report
    for name in names:
        path = os.path.join(directory, name)
        if name.endswith(".tmp"):
            status = "orphan-tmp"
            detail = "leftover writer temp file"
            report.orphan_temps += 1
            if repair:
                try:
                    # fsck repair stays off the shim on purpose: the
                    # offline doctor must keep working under an armed
                    # fault plan (reads go through it to *see* injected
                    # damage; repairs must land regardless).
                    os.unlink(path)  # repro-lint: disable=RL004
                    status = "removed-tmp"
                except OSError as error:
                    detail = f"could not remove: {error}"
            report.entries.append({"file": name, "status": status, "detail": detail})
            continue
        if not name.endswith(".json"):
            continue
        report.scanned += 1
        detail = None
        try:
            raw = _fsfault.active().read_bytes(path)
        except OSError as error:
            detail = f"unreadable: {error}"
        if detail is None:
            try:
                detail = _fsck_document(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as error:
                detail = f"invalid JSON: {error}"
        if detail is None:
            report.entries.append({"file": name, "status": "ok", "detail": ""})
            continue
        report.damaged += 1
        status = "damaged"
        if repair:
            try:
                # Off the shim for the same reason as the tmp removal
                # above: quarantine must succeed under an armed plan.
                os.replace(path, path + ".quarantined")  # repro-lint: disable=RL004
                status = "quarantined"
                report.quarantined += 1
            except OSError as error:
                detail = f"{detail}; quarantine failed: {error}"
        report.entries.append({"file": name, "status": status, "detail": detail})
    return report
