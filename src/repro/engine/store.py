"""Persistent cross-run cache for estimation sessions.

Every process so far started cold: block decompositions, possibility
verdicts, positivity bounds and — most expensively — the sampled-repair
streams were recomputed on each CLI rerun, bench iteration or CI job.
:class:`CacheStore` persists them on disk so a repeated workload
warm-starts for free.

Layout: one JSON file per cache entry under the store directory, named by
the entry key — the SHA-256 content hash of the canonical serialization of
``(database, Σ, generator, seed)``.  Anything that could change a result
changes the key, so a hit can never replay stale state.  (The seed is part
of the key because the sample stream depends on it; the seed-independent
structural fields are deliberately duplicated across seeds — one key must
cover everything any persisted field could depend on.)  Each entry holds:

* ``version`` — the store format version; a mismatch invalidates the entry
  (except the documented v2 upgrade below);
* ``decomposition`` — the block decomposition (Lemma 5.2), as
  ``[{relation, group, facts}]`` rows;
* ``possibility`` — the cached polynomial zero-test verdicts, keyed by
  ``"<query>|<answer JSON>"``;
* ``bounds`` — positivity lower bounds, keyed by the query text;
* ``samples`` + ``backend`` + ``batch`` + ``rng_state`` — the materialized
  prefix of the shared :class:`~repro.engine.session.SamplePool` as
  **packed word rows**: each sample is a list of
  ``ceil(n_facts / 64)`` unsigned 64-bit words, word ``w`` holding fact
  ids ``64w .. 64w + 63`` of the sample's id bitmask (the vector plane's
  on-disk row *is* its in-memory ``uint64`` matrix row, and a scalar
  mask packs to the same words).  ``backend`` records which plane drew
  the prefix: ``"scalar"`` rows resume through the persisted
  ``random.Random`` state *after* the last draw; ``"vector"`` rows
  resume by batch index (``batch`` is the plane's batch size — part of
  its substream contract — and ``rng_state`` is ``null``).  Replayed
  estimates are identical to cold-run estimates on the same plane.

Entries written at version 2 (id-array rows + RNG state) are
**transparently upgraded** on load: the id rows decode to the same masks,
re-encode as packed words with ``backend: "scalar"``, and the next save
rewrites the entry at version 3 — a v2 cache keeps its warm stream.
Version 1 entries (and any other mismatch) are recomputed.

Failure policy: the cache is an accelerator, never an authority.  Any
read problem — missing file, truncated/corrupt JSON, version mismatch,
decoded facts that disagree with the live database — silently degrades to
recomputation (``tests/test_store.py`` exercises each path).  Writes go
through a temp file + ``os.replace`` so readers never observe a partially
written entry.

Concurrent writers: two processes sharing a ``cache_dir`` for the same
key both load, compute, and save — a blind write would silently drop
whatever the other process appended in between (last writer wins).
:meth:`CacheEntry.save` therefore **reloads and merges** the on-disk
document before writing: structural fields union (both writers computed
them from the same instance, so values agree), and of two sample
prefixes on the same plane the *longer* wins — both are prefixes of the
same deterministic stream, so the longer one extends the shorter.  On
platforms with ``fcntl`` the reload-merge-write runs under an advisory
``flock`` on the store directory, making it atomic against other
writers; elsewhere it degrades to best-effort (the merge still closes
almost all of the window).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from typing import TYPE_CHECKING, Any

try:  # pragma: no cover - platform probe (Linux/macOS have it, Windows not)
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..core.blocks import Block, BlockDecomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import mask_ids
from ..core.queries import ConjunctiveQuery

# The packed-word geometry is owned by the vector plane: the v3 format's
# core invariant is "the on-disk word row IS the plane's uint64 matrix
# row", so the store reads the constants from the one place that defines
# them (the module imports cleanly without numpy).
from ..sampling.vectorized import WORD_BITS as _WORD_BITS
from ..sampling.vectorized import words_for as _words_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session imports store)
    from .session import SamplePool

#: Bump when the on-disk schema changes; old entries are then recomputed.
#: v2: sample rows are the interned kernel's id arrays (ids into the
#: canonical fact order — byte-compatible with v1's index rows, but the
#: decode contract is now "ids of the session's InstanceIndex", and warm
#: pools preload them as bitmasks without reconstructing facts).
#: v3: sample rows are packed uint64 word lists (the vector plane's
#: bitset-matrix rows) plus ``backend``/``batch`` metadata; v2 entries
#: upgrade in place on load instead of being recomputed.
STORE_VERSION = 3


def _freeze(value: Any) -> Any:
    """JSON arrays decode to lists; fact/group values need tuples back."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _encode_fact(fact: Fact) -> list:
    return [fact.relation, *fact.values]


def _decode_fact(row: Any) -> Fact:
    if not isinstance(row, list) or len(row) < 2:
        raise CacheFormatError(f"malformed fact row {row!r}")
    relation, *values = row
    return Fact(str(relation), tuple(_freeze(v) for v in values))


def _mask_to_words(mask: int, words: int) -> list[int]:
    """An id bitmask as its packed word row (little-endian word order)."""
    return [
        (mask >> (_WORD_BITS * position)) & ((1 << _WORD_BITS) - 1)
        for position in range(words)
    ]


class CacheFormatError(ValueError):
    """Raised internally for undecodable entry payloads (never escapes reads)."""


@contextlib.contextmanager
def _directory_lock(directory: str):
    """Advisory exclusive lock on a store directory (no-op without fcntl).

    Locking the directory *fd* itself leaves no stray lock files in the
    store and survives the temp-file + ``os.replace`` dance (a lock on the
    entry file would be held on a dead inode after the first replace).
    Coarser than per-entry locking, but saves are rare and short.
    """
    if fcntl is None:
        yield
        return
    descriptor = os.open(directory, os.O_RDONLY)
    try:
        fcntl.flock(descriptor, fcntl.LOCK_EX)
        yield
    finally:
        os.close(descriptor)  # closing releases the flock


def instance_cache_key(
    database: Database,
    constraints: FDSet,
    generator_name: str,
    seed: int | None,
) -> str:
    """SHA-256 content hash of ``(database, Σ, generator, seed)``.

    The serialization is canonical (sorted facts, sorted FD attribute
    lists, sorted JSON keys), so equal instances hash equally regardless
    of construction order.  Non-JSON-native constants serialize via
    ``repr`` — which carries the type (``Decimal('1')`` vs ``'1'``) — so
    type-distinct values that merely *stringify* equally cannot collide
    onto one key.
    """
    schema = constraints.schema
    payload = {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "facts": [_encode_fact(f) for f in database.sorted_facts()],
        "fds": [
            [d.relation, sorted(map(str, d.lhs)), sorted(map(str, d.rhs))]
            for d in sorted(constraints, key=str)
        ],
        "generator": generator_name,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheEntry:
    """One persisted ``(database, Σ, generator, seed)`` bundle.

    Obtained from :meth:`CacheStore.entry`.  Getters return ``None`` on any
    miss *or* decode problem; setters mark the entry dirty; :meth:`save`
    writes atomically (and is a no-op when nothing changed).
    """

    def __init__(self, path: str, database: Database, constraints: FDSet):
        self.path = path
        self._database = database
        self._constraints = constraints
        self._dirty = False
        self._document = self._load()
        self._pool: "SamplePool | None" = None
        self._rng = None

    # -- load / save -----------------------------------------------------------------

    def _load(self) -> dict[str, Any]:
        empty = {
            "version": STORE_VERSION,
            "decomposition": None,
            "possibility": {},
            "bounds": {},
            "samples": [],
            "rng_state": None,
            "backend": None,
            "batch": None,
        }
        try:
            with open(self.path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return empty
        if not isinstance(document, dict):
            return empty
        version = document.get("version")
        if version not in (2, STORE_VERSION):
            return empty
        for field, kind in (("possibility", dict), ("bounds", dict), ("samples", list)):
            if not isinstance(document.get(field), kind):
                return empty
        if version == 2:
            return self._upgrade_v2(document, empty)
        if document.get("backend") not in (None, "scalar", "vector"):
            return empty
        batch = document.get("batch")
        if batch is not None and (
            isinstance(batch, bool) or not isinstance(batch, int) or batch < 1
        ):
            return empty
        return document

    def _upgrade_v2(self, document: dict[str, Any], empty: dict[str, Any]) -> dict[str, Any]:
        """Re-encode a v2 entry in place (id rows → packed words, scalar plane).

        The structural fields carry over unchanged; sample rows decode
        with the v2 validation rules and re-encode as packed words, so the
        warm stream survives the format bump.  Undecodable rows degrade to
        an empty stream (never to a wrong one).  The entry is marked dirty
        so the next save rewrites it at the current version.
        """
        masks = self._decode_v2_rows(document["samples"])
        upgraded = dict(empty)
        upgraded["decomposition"] = document.get("decomposition")
        upgraded["possibility"] = document["possibility"]
        upgraded["bounds"] = document["bounds"]
        if masks:
            words = self._sample_words()
            upgraded["samples"] = [_mask_to_words(mask, words) for mask in masks]
            upgraded["rng_state"] = document.get("rng_state")
            upgraded["backend"] = "scalar"
        self._dirty = True
        return upgraded

    def _decode_v2_rows(self, rows: Any) -> list[int]:
        """v2 id rows → masks, with the v2 validation rules (empty on damage)."""
        size = len(self._fact_order())
        decoded: list[int] = []
        try:
            for row in rows:
                mask = 0
                for identifier in row:
                    if (
                        # bool is an int subclass: true/false would silently
                        # decode as fact 1/0, altering the replayed stream.
                        isinstance(identifier, bool)
                        or not isinstance(identifier, int)
                        or not 0 <= identifier < size
                    ):
                        raise CacheFormatError("malformed sample id row")
                    bit = 1 << identifier
                    if mask & bit:
                        raise CacheFormatError("duplicate sample ids")
                    mask |= bit
                decoded.append(mask)
        except (CacheFormatError, TypeError):
            return []
        return decoded

    def save(self) -> None:
        """Atomically persist the entry if anything changed since loading.

        Never a blind write: under an advisory lock on the store
        directory (where the platform has one) the on-disk document is
        reloaded and merged first, so a concurrent run that appended its
        own sample batches or verdicts between our load and our save
        keeps them — see :meth:`_merge_from_disk`.
        """
        if self._pool is not None:
            self._sync_pool()
        if not self._dirty:
            return
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        with _directory_lock(directory):
            self._merge_from_disk()
            descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(self._document, handle)
                os.replace(temp_path, self.path)
            except Exception:
                # Clean the temp file up on *any* failure — e.g. TypeError
                # from facts whose constants are not JSON-native — before
                # re-raising.
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        self._dirty = False

    def _merge_from_disk(self) -> None:
        """Fold a concurrent writer's on-disk progress into this document.

        Both writers hold the same ``(database, Σ, generator, seed)`` key,
        so their computed values agree wherever they overlap; merging is
        about *union*, not reconciliation:

        * possibility verdicts and bounds: union, ours on (equal-valued)
          overlap;
        * decomposition: ours, theirs only when we never computed one;
        * samples: prefixes of the same seeded stream extend each other,
          so of two same-plane prefixes the longer survives together with
          its resume state (RNG state / batch size).  A prefix from the
          *other* plane is a different stream — ours wins outright.

        A missing, corrupt, or stale-version file contributes nothing
        (the load path already validates and degrades to empty).
        """
        disk = CacheEntry(self.path, self._database, self._constraints)
        theirs = disk._document
        document = self._document
        for field in ("possibility", "bounds"):
            merged = dict(theirs[field])
            merged.update(document[field])
            document[field] = merged
        if document.get("decomposition") is None:
            document["decomposition"] = theirs.get("decomposition")
        ours_backend = document.get("backend")
        theirs_backend = disk.sample_backend()
        if theirs_backend is not None and disk.sample_word_rows():
            same_plane = ours_backend == theirs_backend and (
                theirs_backend != "vector"
                or document.get("batch") == theirs.get("batch")
            )
            adopt = ours_backend is None or (
                same_plane and len(theirs["samples"]) > len(document["samples"])
            )
            if adopt:
                # .get(): a minimally valid v3 file may omit the resume
                # fields entirely — absent must merge like null, never
                # crash the save (the accelerator-not-authority policy).
                for field in ("samples", "rng_state", "backend", "batch"):
                    document[field] = theirs.get(field)

    # -- decomposition ---------------------------------------------------------------

    def get_decomposition(self) -> BlockDecomposition | None:
        """The persisted block decomposition, validated against ``(D, Σ)``.

        Validation is structural, not just set-level: the fact union must
        equal the database, every block must be a genuine key-group of its
        relation (per Σ), groups must be unique, and blocks are re-sorted
        into the canonical order :func:`block_decomposition` produces — so
        a tampered regrouping or reordering is rejected/neutralized rather
        than silently changing sampler behaviour.
        """
        rows = self._document.get("decomposition")
        if not isinstance(rows, list):
            return None
        try:
            blocks = []
            for row in rows:
                facts = frozenset(_decode_fact(r) for r in row["facts"])
                blocks.append(Block(str(row["relation"]), _freeze(row["group"]), facts))
        except (CacheFormatError, KeyError, TypeError, ValueError):
            return None
        decoded = frozenset(f for block in blocks for f in block.facts)
        if decoded != self._database.facts:
            return None  # key collision or corruption: recompute, never trust
        if not self._blocks_match_constraints(blocks):
            return None
        blocks.sort(key=lambda block: (block.relation, repr(block.group)))
        return BlockDecomposition(tuple(blocks))

    def _blocks_match_constraints(self, blocks: list[Block]) -> bool:
        """Whether every decoded block is a real key-group under ``Σ``."""
        key_by_relation = {d.relation: d for d in self._constraints}
        schema = self._constraints.schema
        seen: set[tuple] = set()
        try:
            for block in blocks:
                if any(f.relation != block.relation for f in block.facts):
                    return False
                dependency = key_by_relation.get(block.relation)
                if dependency is None:
                    # Relations without a key contribute singleton blocks.
                    (only,) = block.facts
                    if block.group != (str(only),):
                        return False
                else:
                    positions = schema.relation(block.relation).positions_of(
                        sorted(dependency.lhs)
                    )
                    groups = {
                        tuple(f.values[i] for i in positions) for f in block.facts
                    }
                    if groups != {block.group}:
                        return False
                identity = (block.relation, block.group)
                if identity in seen:
                    return False  # a split block: groups must be maximal
                seen.add(identity)
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def set_decomposition(self, decomposition: BlockDecomposition) -> None:
        """Persist a freshly computed decomposition."""
        self._document["decomposition"] = [
            {
                "relation": block.relation,
                "group": list(block.group),
                "facts": [_encode_fact(f) for f in block.sorted_facts()],
            }
            for block in decomposition
        ]
        self._dirty = True

    # -- possibility verdicts and positivity bounds ------------------------------------

    @staticmethod
    def _request_key(query: ConjunctiveQuery, answer: tuple) -> str:
        # default=repr, not str: repr carries the type, so type-distinct
        # constants that stringify equally (Decimal('1') vs '1') cannot
        # collide onto one verdict key.
        return f"{query}|{json.dumps(list(answer), default=repr)}"

    def get_possible(self, query: ConjunctiveQuery, answer: tuple) -> bool | None:
        """The cached zero-test verdict for ``(query, answer)``, if any."""
        value = self._document["possibility"].get(self._request_key(query, answer))
        return value if isinstance(value, bool) else None

    def set_possible(self, query: ConjunctiveQuery, answer: tuple, value: bool) -> None:
        """Persist one zero-test verdict."""
        self._document["possibility"][self._request_key(query, answer)] = bool(value)
        self._dirty = True

    def get_bound(self, query: ConjunctiveQuery) -> float | None:
        """The cached positivity lower bound for ``query``, if any.

        A bound outside ``(0, 1]`` (tampering, or a serialization accident)
        is treated as a miss — estimators reject such values, and the cache
        must degrade to recomputation rather than propagate the error.
        """
        value = self._document["bounds"].get(str(query))
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value) if 0 < value <= 1 else None

    def set_bound(self, query: ConjunctiveQuery, value: float) -> None:
        """Persist one positivity bound."""
        self._document["bounds"][str(query)] = float(value)
        self._dirty = True

    # -- sample batches ---------------------------------------------------------------

    def _fact_order(self) -> list[Fact]:
        if not hasattr(self, "_sorted_facts"):
            self._sorted_facts = self._database.sorted_facts()
        return self._sorted_facts

    def _sample_words(self) -> int:
        """Packed words per sample row for this entry's database."""
        return _words_for(len(self._fact_order()))

    def sample_backend(self) -> str | None:
        """Which plane drew the persisted prefix (``None`` when unknown/empty)."""
        value = self._document.get("backend")
        return value if value in ("scalar", "vector") else None

    def sample_batch(self) -> int | None:
        """The vector plane's batch size the prefix was drawn with, if any."""
        value = self._document.get("batch")
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            return None
        return value

    def sample_word_rows(self) -> list[list[int]]:
        """The persisted sample prefix as validated packed word rows.

        The zero-conversion view for vector pools (their in-memory matrix
        row is the on-disk row).  A row of the wrong width, a non-integer
        or out-of-range word, or set bits beyond the instance's fact
        count marks the entry corrupt and the whole batch is
        **discarded** (resume state would be meaningless for a different
        stream), so the next :meth:`save` rewrites a clean entry instead
        of preserving the damage.
        """
        size = len(self._fact_order())
        words = self._sample_words()
        rows: list[list[int]] = []
        try:
            for row in self._document["samples"]:
                if not isinstance(row, list) or len(row) != words:
                    raise CacheFormatError("malformed sample word row")
                for word in row:
                    if (
                        # bool is an int subclass: reject it here like the
                        # v2 id decoder always did.
                        isinstance(word, bool)
                        or not isinstance(word, int)
                        or not 0 <= word < (1 << _WORD_BITS)
                    ):
                        raise CacheFormatError("malformed sample word")
                if words and row[-1] >> (size - _WORD_BITS * (words - 1)):
                    raise CacheFormatError("sample bits beyond the instance")
                rows.append(row)
        except (CacheFormatError, TypeError):
            self.discard_samples()
            return []
        return rows

    def preload_sample_masks(self) -> list[int]:
        """The persisted sample prefix as id bitmasks (empty on any decode
        problem) — :meth:`sample_word_rows` shift-OR'ed together, pure
        integer work with no fact reconstruction."""
        return [
            sum(word << (_WORD_BITS * position) for position, word in enumerate(row))
            for row in self.sample_word_rows()
        ]

    def preload_samples(self) -> list[frozenset[Fact]]:
        """The persisted sample prefix as fact sets (compatibility view)."""
        order = self._fact_order()
        return [
            frozenset(order[identifier] for identifier in mask_ids(mask))
            for mask in self.preload_sample_masks()
        ]

    def discard_samples(self) -> None:
        """Drop the persisted sample prefix (and its resume metadata)."""
        if (
            self._document["samples"]
            or self._document.get("rng_state") is not None
            or self._document.get("backend") is not None
            or self._document.get("batch") is not None
        ):
            self._document["samples"] = []
            self._document["rng_state"] = None
            self._document["backend"] = None
            self._document["batch"] = None
            self._dirty = True

    def rng_state(self) -> tuple | None:
        """The persisted ``random.Random`` state, decoded for ``setstate``."""
        raw = self._document.get("rng_state")
        if not isinstance(raw, list) or len(raw) != 3 or not isinstance(raw[1], list):
            return None
        try:
            return (raw[0], tuple(raw[1]), raw[2])
        except TypeError:
            return None

    def attach_pool(self, pool: "SamplePool", rng=None) -> None:
        """Track a live pool (+ RNG for scalar pools) so :meth:`save`
        persists newly drawn samples.

        Scalar pools must come with the RNG that draws them — persisting
        their prefix without its post-draw state would be unreplayable —
        so the omission fails here, not deep inside :meth:`save`.
        """
        if rng is None and getattr(pool, "backend", "scalar") != "vector":
            raise ValueError("attach_pool() needs the drawing RNG for scalar pools")
        self._pool = pool
        self._rng = rng

    def pool_segment_name(self) -> str | None:
        """The shared-memory segment backing the attached pool, if any.

        Sharded workers back their vector pools with
        :class:`~repro.sampling.vectorized.SharedSampleSegment` matrices;
        the store's v3 word row is that very matrix row, so
        :meth:`_sync_pool` already reads the shared bytes zero-copy.
        This accessor exposes the segment name for cross-process
        attachment and for eviction tests; ``None`` for private pools.
        """
        segment = getattr(self._pool, "shared_segment", None) if self._pool else None
        return segment.name if segment is not None else None

    def _sync_pool(self) -> None:
        drawn = len(self._pool)
        if drawn <= len(self._document["samples"]):
            return
        backend = getattr(self._pool, "backend", "scalar")
        if backend == "vector":
            # The on-disk row IS the pool's packed uint64 matrix row:
            # serialize it directly, never round-tripping through the
            # pool's (lazily decoded) arbitrary-precision masks.  Vector
            # prefixes resume by batch index — the substream contract
            # replaces the RNG state (the batch size is part of it).
            self._document["samples"] = self._pool.packed_prefix(drawn).tolist()
            self._document["batch"] = self._pool.batch_size
            self._document["rng_state"] = None
        else:
            words = self._sample_words()
            materialized = self._pool.materialized_samples()
            if getattr(self._pool, "interned", False):
                # Interned pools hold id bitmasks (the index order equals
                # the canonical fact order): encoding never touches a Fact.
                masks = materialized
            else:
                index_of = {
                    fact: index for index, fact in enumerate(self._fact_order())
                }
                masks = [
                    sum(1 << index_of[f] for f in sample) for sample in materialized
                ]
            self._document["samples"] = [
                _mask_to_words(mask, words) for mask in masks
            ]
            self._document["batch"] = None
            state = self._rng.getstate()
            self._document["rng_state"] = [state[0], list(state[1]), state[2]]
        self._document["backend"] = backend
        self._dirty = True


class CacheStore:
    """A directory of :class:`CacheEntry` files, one per instance key."""

    def __init__(self, directory: str):
        self.directory = str(directory)

    def entry(
        self,
        database: Database,
        constraints: FDSet,
        generator_name: str,
        seed: int | None,
    ) -> CacheEntry:
        """Load (or initialize empty) the entry for this instance key."""
        key = instance_cache_key(database, constraints, generator_name, seed)
        path = os.path.join(self.directory, f"{key}.json")
        return CacheEntry(path, database, constraints)
