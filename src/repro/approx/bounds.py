"""Positivity lower bounds on the target probabilities.

Monte-Carlo FPRASes need the estimated quantity to be either zero or at
least ``1/poly(||D||)``; each positive result in the paper is paired with
such a bound:

* Lemma 5.3  — ``rrfreq  >= 1 / (2|D|)^{|Q|}``     (primary keys);
* Lemma 6.3  — ``srfreq  >= 1 / (2|D|)^{|Q|}``     (primary keys);
* Lemma E.3  — ``rrfreq¹ >= 1 / |D|^{|Q|}``        (primary keys);
* Lemma E.10 — ``srfreq¹ >= 1 / |D|^{|Q|}``        (primary keys);
* Lemma D.8  — ``P_{M_uo,1} >= 1 / (e|D|)^{|Q|}``  (arbitrary FDs);
* Prop. 7.3  — ``P_{M_uo} >= 1 / pol(|D|)``        (arbitrary keys), with the
  explicit (astronomically large, but polynomial) ``pol`` assembled in the
  proof of Lemma 7.4 / Appendix D.2.

All bounds are returned as exact :class:`~fractions.Fraction` values; ``|D|``
is the number of facts and ``|Q|`` the number of body atoms, matching the
proofs' final inequalities (the ``||·||`` encoding-size forms are weaker).
Proposition D.6's *upper* bound — the reason ``M_uo`` + FDs has no
Monte-Carlo FPRAS — is also provided.
"""

from __future__ import annotations

from fractions import Fraction
from math import factorial, isqrt

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery

#: A rational upper bound on Euler's number; dividing by it keeps the
#: resulting expression a valid *lower* bound.
E_UPPER = Fraction(2718281829, 1_000_000_000)


def rrfreq_lower_bound(database: Database, query: ConjunctiveQuery) -> Fraction:
    """Lemma 5.3: ``1 / (2|D|)^{|Q|}`` (when ``rrfreq > 0``)."""
    return Fraction(1, (2 * max(len(database), 1)) ** query.atom_count())


def srfreq_lower_bound(database: Database, query: ConjunctiveQuery) -> Fraction:
    """Lemma 6.3: ``1 / (2|D|)^{|Q|}`` (when ``srfreq > 0``)."""
    return rrfreq_lower_bound(database, query)


def singleton_frequency_lower_bound(
    database: Database, query: ConjunctiveQuery
) -> Fraction:
    """Lemmas E.3 / E.10: ``1 / |D|^{|Q|}`` for ``rrfreq¹`` and ``srfreq¹``."""
    return Fraction(1, max(len(database), 1) ** query.atom_count())


def uo_singleton_fd_lower_bound(
    database: Database, query: ConjunctiveQuery
) -> Fraction:
    """Lemma D.8: ``P_{M_uo,1,Q} >= (1/e)^{|Q|} / |D|^{|Q|}`` for any FDs."""
    atoms = query.atom_count()
    size = max(len(database), 1)
    return (1 / E_UPPER) ** atoms * Fraction(1, size**atoms)


def uo_keys_lower_bound(
    database: Database, constraints: FDSet, query: ConjunctiveQuery
) -> Fraction:
    """Proposition 7.3's explicit polynomial bound for ``M_uo`` over keys.

    Assembled from the Appendix D.2 proof:

    ``pol''(|D|) = ((q·k + q + 1)^2)! · e^{5qk} · (√|D| + 5qk)^{5qk}``
    ``pol'(|D|)  = (e·q)^{q+2} · (e(|D|+q-1))^q · (e(|D|-1))^q``
    ``P >= 1 / (1 + pol''·pol')``

    with ``q = |Q|`` and ``k = |Σ|``.  The value is polynomial in ``|D|`` but
    far too small to size a sample; it exists to state the theorem faithfully
    and to be sanity-checked against exact probabilities on small inputs.
    """
    q = query.atom_count()
    k = max(len(constraints), 1)
    size = max(len(database), 2)
    sqrt_upper = isqrt(size) + 1  # integer upper bound on sqrt(|D|)
    pol_double_prime = (
        factorial((q * k + q + 1) ** 2)
        * (E_UPPER ** (5 * q * k))
        * Fraction(sqrt_upper + 5 * q * k) ** (5 * q * k)
    )
    pol_prime = (
        (E_UPPER * q) ** (q + 2)
        * (E_UPPER * (size + q - 1)) ** q
        * (E_UPPER * max(size - 1, 1)) ** q
    )
    return 1 / (1 + pol_double_prime * pol_prime)


def pathological_upper_bound(n: int) -> Fraction:
    """Proposition D.6: ``P_{M_uo,Q}(D_n) <= 1 / 2^{n-1}`` for the bad family."""
    if n < 1:
        raise ValueError("the family D_n is defined for n >= 1")
    return Fraction(1, 2 ** (n - 1))


def bound_for(
    generator_name: str,
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
) -> Fraction:
    """The applicable positivity bound for a generator name (e.g. ``M_ur``).

    Raises :class:`KeyError` for combinations without a proven bound
    (``M_uo`` over non-key FDs, ``M_ur``/``M_us`` over non-primary keys).
    """
    if generator_name in ("M_ur", "M_us"):
        if not constraints.is_primary_keys():
            raise KeyError(f"no positivity bound for {generator_name} beyond primary keys")
        return rrfreq_lower_bound(database, query)
    if generator_name in ("M_ur,1", "M_us,1"):
        if not constraints.is_primary_keys():
            raise KeyError(f"no positivity bound for {generator_name} beyond primary keys")
        return singleton_frequency_lower_bound(database, query)
    if generator_name == "M_uo":
        if not constraints.all_keys():
            raise KeyError("Prop 7.3's bound needs keys; see Prop D.6 for FDs")
        return uo_keys_lower_bound(database, constraints, query)
    if generator_name == "M_uo,1":
        return uo_singleton_fd_lower_bound(database, query)
    raise KeyError(f"unknown generator {generator_name!r}")
