"""Monte-Carlo estimation primitives.

Two estimators over i.i.d. ``[0, 1]`` draws (here: Bernoulli indicators of
"the sampled repair entails the answer"):

* :func:`fixed_sample_estimate` — sample a precomputed ``N`` and average.
  With ``N = ⌈3 ln(2/δ) / (ε² p_min)⌉`` (multiplicative Chernoff) the mean
  is an ``(ε, δ)`` relative approximation whenever the true mean is either 0
  or at least ``p_min`` — exactly the situation the paper's lower-bound
  lemmas establish.
* :func:`stopping_rule_estimate` — the Dagum–Karp–Luby–Ross optimal
  stopping rule (the paper's reference [8]): sample until the running sum
  reaches ``Υ₁ = 1 + (1+ε)·4(e−2)ln(2/δ)/ε²`` and return ``Υ₁/N``.  Its
  expected cost adapts to the (unknown) true mean instead of the worst-case
  lower bound.

Zero detection: if the true mean is 0 or ``>= p_min``, then after
``⌈ln(1/δ)/p_min⌉`` all-zero samples the value is 0 with confidence
``1 − δ``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from ..sampling.rng import resolve_rng


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of a Monte-Carlo estimation run."""

    estimate: float
    samples_used: int
    epsilon: float
    delta: float
    method: str
    certified_zero: bool = False


def chernoff_sample_size(epsilon: float, delta: float, p_lower: float) -> int:
    """``N`` making the sample mean an (ε, δ) relative approximation.

    The standard multiplicative-Chernoff count ``3 ln(2/δ) / (ε² p_lower)``
    for means known to be at least ``p_lower`` when non-zero.
    """
    if not 0 < epsilon:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if not 0 < p_lower <= 1:
        raise ValueError("p_lower must lie in (0, 1]")
    # ln(2/δ) as a difference: 2/δ overflows to inf for subnormal δ, and
    # ceil(inf) is an OverflowError rather than a (huge) budget.
    log_term = math.log(2.0) - math.log(delta)
    return max(1, math.ceil(3.0 * log_term / (epsilon**2 * p_lower)))


def zero_detection_sample_size(delta: float, p_lower: float) -> int:
    """All-zero runs of this length certify a zero mean with confidence 1-δ."""
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if not 0 < p_lower <= 1:
        raise ValueError("p_lower must lie in (0, 1]")
    return max(1, math.ceil(-math.log(delta) / p_lower))


def fixed_estimate_from_total(
    total: float, n: int, epsilon: float, delta: float
) -> EstimateResult:
    """The fixed-Chernoff result for a known sample total.

    The one constructor of ``"fixed-chernoff"`` results: the streaming
    loop below and the engine's batched vector plane (which counts hits
    with one array reduction) both build through it, so the method label,
    the estimate formula, and the zero-certificate semantics can never
    drift between planes.
    """
    return EstimateResult(
        estimate=total / n,
        samples_used=n,
        epsilon=epsilon,
        delta=delta,
        method="fixed-chernoff",
        certified_zero=(total == 0),
    )


def fixed_sample_estimate(
    draw: Callable[[], float],
    epsilon: float,
    delta: float,
    p_lower: float,
) -> EstimateResult:
    """Average ``chernoff_sample_size`` draws of ``draw()``."""
    n = chernoff_sample_size(epsilon, delta, p_lower)
    total = 0.0
    for _ in range(n):
        total += draw()
    return fixed_estimate_from_total(total, n, epsilon, delta)


def stopping_rule_estimate(
    draw: Callable[[], float],
    epsilon: float,
    delta: float,
    max_samples: int | None = None,
) -> EstimateResult:
    """Dagum–Karp–Luby–Ross stopping rule (their Stopping Rule Algorithm).

    Terminates once the running sum reaches ``Υ₁``; with ``max_samples`` set,
    an all-zero truncated run returns 0 (flagged ``certified_zero``) and a
    non-zero truncated run returns the plain sample mean (the caller chose
    the truncation, so the (ε, δ) guarantee is theirs to interpret).
    """
    if not 0 < epsilon < 1:
        raise ValueError("the stopping rule requires 0 < epsilon < 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    upsilon = 4.0 * (math.e - 2.0) * (math.log(2.0) - math.log(delta)) / (epsilon**2)
    threshold = 1.0 + (1.0 + epsilon) * upsilon
    total = 0.0
    n = 0
    while total < threshold:
        if max_samples is not None and n >= max_samples:
            estimate = total / n if n else 0.0
            return EstimateResult(
                estimate=estimate,
                samples_used=n,
                epsilon=epsilon,
                delta=delta,
                method="dklr-truncated",
                certified_zero=(total == 0.0),
            )
        total += draw()
        n += 1
    return EstimateResult(
        estimate=threshold / n,
        samples_used=n,
        epsilon=epsilon,
        delta=delta,
        method="dklr",
    )


def bernoulli_stream(
    predicate: Callable[[], bool],
) -> Callable[[], float]:
    """Adapt a boolean sampler to the ``draw() -> float`` interface."""

    def draw() -> float:
        return 1.0 if predicate() else 0.0

    return draw


def empirical_mean(values: Iterator[float] | list[float]) -> float:
    """Plain average (used by benches comparing fixed sample budgets)."""
    materialized = list(values)
    if not materialized:
        raise ValueError("cannot average zero samples")
    return sum(materialized) / len(materialized)


def hoeffding_sample_size(epsilon_additive: float, delta: float) -> int:
    """Samples for an *additive* ε guarantee (the first step in B.2's proof)."""
    if not 0 < epsilon_additive:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    log_term = math.log(2.0) - math.log(delta)
    return max(1, math.ceil(log_term / (2.0 * epsilon_additive**2)))


def additive_estimate(
    draw: Callable[[], float],
    epsilon_additive: float,
    delta: float,
) -> EstimateResult:
    """Monte-Carlo mean with additive error (the weaker guarantee of B.2)."""
    n = hoeffding_sample_size(epsilon_additive, delta)
    total = sum(draw() for _ in range(n))
    return EstimateResult(
        estimate=total / n,
        samples_used=n,
        epsilon=epsilon_additive,
        delta=delta,
        method="additive-hoeffding",
        certified_zero=(total == 0.0),
    )


def seeded(seed: int | None) -> random.Random:
    """A seeded RNG (thin re-export so approx callers avoid two imports)."""
    return resolve_rng(random.Random(seed) if seed is not None else None)
