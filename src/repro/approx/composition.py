"""Component-wise FPRAS composition (Lemma B.5).

Lemma B.5 strengthens the independent-set inapproximability of [22] from
arbitrary to non-trivially connected graphs by the contrapositive of a
composition argument: if each connected component's count can be
(ε', δ')-approximated with ``ε' = ε/2n`` and ``δ' = δ/2n``, then the product
of the per-component estimates is an (ε, δ)-approximation of the total,
because ``(1 - ε/2n)^n >= 1 - ε`` and ``(1 + ε/2n)^n <= 1 + ε`` for
``0 <= ε <= 1`` (the inequalities the proof cites from [14]).

The same argument applies verbatim to counting operational repairs of a
database whose conflict graph is disconnected — per-component counts
multiply (Lemma 5.4's component-wise form).  This module implements the
composition generically and for both uses.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from ..core.conflict_graph import ConflictGraph
from ..core.database import Database
from ..core.dependencies import FDSet
from ..reductions.graphs import UndirectedGraph

Component = TypeVar("Component")

#: An estimator taking (component, epsilon, delta) and returning an estimate.
ComponentEstimator = Callable[[Component, float, float], float]


def per_component_budget(epsilon: float, delta: float, n_components: int) -> tuple[float, float]:
    """The (ε/2n, δ/2n) schedule of Lemma B.5."""
    if n_components < 1:
        raise ValueError("need at least one component")
    if not 0 < epsilon <= 1:
        raise ValueError("the composition inequalities need 0 < epsilon <= 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return epsilon / (2 * n_components), delta / (2 * n_components)


def composed_estimate(
    components: Sequence[Component],
    estimator: ComponentEstimator,
    epsilon: float,
    delta: float,
    trivial_factor: float = 1.0,
) -> float:
    """Multiply per-component estimates under the Lemma B.5 schedule.

    ``trivial_factor`` accounts for components handled exactly (Lemma B.5
    multiplies by ``2^ℓ`` for the ``ℓ`` isolated nodes, each contributing
    two independent sets).
    """
    if not components:
        return trivial_factor
    epsilon_prime, delta_prime = per_component_budget(epsilon, delta, len(components))
    product = trivial_factor
    for component in components:
        product *= estimator(component, epsilon_prime, delta_prime)
    return product


def count_independent_sets_composed(
    graph: UndirectedGraph,
    component_counter: ComponentEstimator,
    epsilon: float,
    delta: float,
) -> float:
    """``|IS(G)|`` via per-connected-component estimation (Lemma B.5's A').

    Isolated nodes contribute an exact factor of 2 each; every non-trivial
    component goes through ``component_counter`` with the tightened budget.
    """
    components = graph.connected_components()
    nontrivial = []
    isolated = 0
    for nodes in components:
        if len(nodes) == 1:
            isolated += 1
        else:
            subgraph = UndirectedGraph(
                tuple(sorted(nodes, key=repr)),
                frozenset(edge for edge in graph.edges if edge <= nodes),
            )
            nontrivial.append(subgraph)
    return composed_estimate(
        nontrivial,
        component_counter,
        epsilon,
        delta,
        trivial_factor=float(2**isolated),
    )


def count_repairs_composed(
    database: Database,
    constraints: FDSet,
    component_counter: ComponentEstimator,
    epsilon: float,
    delta: float,
    singleton_only: bool = False,
) -> float:
    """``|CORep(D, Σ)|`` via per-conflict-component estimation.

    Components are passed to ``component_counter`` as sub-databases;
    conflict-free facts contribute factor 1 (they survive every repair).
    """
    graph = ConflictGraph.of(database, constraints)
    components = [
        Database(nodes, schema=database.schema)
        for nodes in graph.nontrivial_components()
    ]
    return composed_estimate(components, component_counter, epsilon, delta)
