"""Confidence intervals for Monte-Carlo probability estimates.

The FPRAS guarantee is a relative-error statement at a chosen (ε, δ); when
reporting estimates (answer tables, benches) it is often more useful to
attach a *confidence interval* to the observed hit count.  Implemented from
first principles (no SciPy dependency):

* Wilson score interval — good coverage at all sample sizes;
* Clopper–Pearson ("exact") interval — conservative, via binary search on
  binomial tails with exact big-integer arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from math import comb

from .montecarlo import EstimateResult


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval for an estimated probability."""

    lower: float
    upper: float
    confidence: float
    method: str

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


# Two-sided standard-normal quantiles for common confidence levels; the
# fallback computes the quantile by bisection on the error function.
_Z_TABLE = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def _normal_quantile(confidence: float) -> float:
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    target = 0.5 + confidence / 2.0
    low, high = 0.0, 10.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def wilson_interval(hits: int, samples: int, confidence: float = 0.95) -> ConfidenceInterval:
    """The Wilson score interval for ``hits`` successes in ``samples``."""
    _validate(hits, samples, confidence)
    z = _normal_quantile(confidence)
    p = hits / samples
    denominator = 1.0 + z * z / samples
    centre = (p + z * z / (2 * samples)) / denominator
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / samples + z * z / (4.0 * samples * samples))
        / denominator
    )
    return ConfidenceInterval(
        lower=max(0.0, centre - margin),
        upper=min(1.0, centre + margin),
        confidence=confidence,
        method="wilson",
    )


def _binomial_cdf(successes: int, samples: int, probability: Fraction) -> Fraction:
    """``P[X <= successes]`` for ``X ~ Bin(samples, probability)``, exact."""
    total = Fraction(0)
    for k in range(successes + 1):
        total += (
            comb(samples, k)
            * probability**k
            * (1 - probability) ** (samples - k)
        )
    return total


def clopper_pearson_interval(
    hits: int, samples: int, confidence: float = 0.95, precision: int = 40
) -> ConfidenceInterval:
    """The exact (conservative) Clopper–Pearson interval.

    Bounds are located by bisection on the binomial tail probabilities using
    exact rational arithmetic, so the interval is correct to ``2^-precision``.
    """
    _validate(hits, samples, confidence)
    alpha = Fraction(1) - Fraction(confidence).limit_denominator(10**6)
    half = alpha / 2

    def bisect(predicate, low: Fraction, high: Fraction) -> Fraction:
        for _ in range(precision):
            mid = (low + high) / 2
            if predicate(mid):
                low = mid
            else:
                high = mid
        return (low + high) / 2

    if hits == 0:
        lower = Fraction(0)
    else:
        # Largest p with P[X >= hits] <= alpha/2, i.e. 1 - CDF(hits-1) <= half.
        lower = bisect(
            lambda p: 1 - _binomial_cdf(hits - 1, samples, p) <= half,
            Fraction(0),
            Fraction(1),
        )
    if hits == samples:
        upper = Fraction(1)
    else:
        # Smallest p with P[X <= hits] <= alpha/2; below it the CDF is larger.
        upper = bisect(
            lambda p: _binomial_cdf(hits, samples, p) > half,
            Fraction(0),
            Fraction(1),
        )
    return ConfidenceInterval(
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        method="clopper-pearson",
    )


def interval_for(
    result: EstimateResult, hits: int | None = None, confidence: float = 0.95
) -> ConfidenceInterval:
    """A Wilson interval for an :class:`EstimateResult` built from Bernoulli draws.

    ``hits`` defaults to ``round(estimate * samples_used)``, which is exact
    for the fixed-budget and fixed-N estimators.
    """
    if result.samples_used <= 0:
        raise ValueError("the estimate used no samples; no interval exists")
    if hits is None:
        hits = round(result.estimate * result.samples_used)
    return wilson_interval(hits, result.samples_used, confidence)


def _validate(hits: int, samples: int, confidence: float) -> None:
    if samples <= 0:
        raise ValueError("samples must be positive")
    if not 0 <= hits <= samples:
        raise ValueError("hits must lie in [0, samples]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
