"""Approximation layer: Monte-Carlo estimators, positivity bounds, FPRASes."""

from .adaptive import (
    AdaptiveResult,
    SequentialEstimator,
    adaptive_estimate,
    confidence_sequence_radius,
    empirical_bernstein_radius,
    hoeffding_radius,
)
from .composition import (
    composed_estimate,
    count_independent_sets_composed,
    count_repairs_composed,
    per_component_budget,
)
from .bounds import (
    E_UPPER,
    bound_for,
    pathological_upper_bound,
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_keys_lower_bound,
    uo_singleton_fd_lower_bound,
)
from .fpras import AUTO_FIXED_BUDGET, FPRASUnavailable, fixed_budget_estimate, fpras_ocqa
from .intervals import (
    ConfidenceInterval,
    clopper_pearson_interval,
    interval_for,
    wilson_interval,
)
from .montecarlo import (
    EstimateResult,
    additive_estimate,
    bernoulli_stream,
    chernoff_sample_size,
    empirical_mean,
    fixed_estimate_from_total,
    fixed_sample_estimate,
    hoeffding_sample_size,
    stopping_rule_estimate,
    zero_detection_sample_size,
)

__all__ = [
    "AUTO_FIXED_BUDGET",
    "AdaptiveResult",
    "SequentialEstimator",
    "adaptive_estimate",
    "confidence_sequence_radius",
    "empirical_bernstein_radius",
    "hoeffding_radius",
    "composed_estimate",
    "count_independent_sets_composed",
    "count_repairs_composed",
    "per_component_budget",
    "ConfidenceInterval",
    "clopper_pearson_interval",
    "interval_for",
    "wilson_interval",
    "E_UPPER",
    "EstimateResult",
    "FPRASUnavailable",
    "additive_estimate",
    "bernoulli_stream",
    "bound_for",
    "chernoff_sample_size",
    "empirical_mean",
    "fixed_budget_estimate",
    "fixed_estimate_from_total",
    "fixed_sample_estimate",
    "fpras_ocqa",
    "hoeffding_sample_size",
    "pathological_upper_bound",
    "rrfreq_lower_bound",
    "singleton_frequency_lower_bound",
    "srfreq_lower_bound",
    "stopping_rule_estimate",
    "uo_keys_lower_bound",
    "uo_singleton_fd_lower_bound",
    "zero_detection_sample_size",
]
