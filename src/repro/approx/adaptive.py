"""Adaptive sequential estimation with early stopping.

The fixed-budget path sizes its sample count from the *worst-case*
positivity lower bound (Lemmas 5.3 / 6.3 / E.3 / E.10 / D.8), so every
``(query, answer)`` pays for the hardest imaginable instance.  The
estimators here instead watch the samples as they arrive and stop as soon
as a *time-uniform* confidence sequence certifies the requested relative
accuracy — easy answers (large probabilities, small empirical variance)
finish in a small fraction of the worst-case budget, while hard ones
degrade gracefully to it.

Two anytime deviation bounds are maintained side by side and the tighter
one wins at every step:

* **empirical Bernstein** (Audibert–Munos–Szepesvári style) —
  ``|mean − μ| <= sqrt(2 V ln(3/δ_n) / n) + 3 ln(3/δ_n) / n`` with the
  empirical variance ``V``; sharp when the indicator variance is small
  (probabilities near 0 or 1);
* **Hoeffding** — ``|mean − μ| <= sqrt(ln(2/δ_n) / (2n))``; sharp near
  ``μ = 1/2`` where the variance term saturates.

Time-uniformity comes from a per-``n`` confidence budget
``δ_n = δ_seq / (n (n+1))`` whose sum telescopes to ``δ_seq``, so the
confidence sequence is valid *at the random stopping time* — the union
bound is over every sample count, not a single pre-committed one.

Guarantee accounting (:class:`SequentialEstimator`): the overall failure
probability splits as ``δ = δ/2 (confidence sequence) + δ/4 (zero
certificate) + δ/4 (fixed-budget fallback)``:

* stop via the confidence sequence when the radius drops to
  ``ε·mean/(1+ε)`` — then ``|mean − μ| <= ε·μ`` (the standard
  multiplicative-stop algebra);
* stop with a **certified zero** after ``⌈ln(4/δ)/p_lower⌉`` all-zero
  samples, exactly like the fixed path's zero detection;
* stop at the **fallback cap** ``chernoff_sample_size(ε, δ/4, p_lower)``
  and return the plain mean under the fixed-budget Chernoff guarantee.

So an adaptive run is never worse than ~the fixed-budget path (the cap is
the same Chernoff count at ``δ/4`` instead of ``δ``), and carries the same
(ε, δ) contract: relative error ``ε`` with probability ``1 − δ`` whenever
the true mean is zero or at least ``p_lower``.

``benchmarks/bench_e24_adaptive_vs_fixed.py`` measures the sample savings
against the fixed-budget path on the E18/E21 workloads; the engine layer
(:meth:`repro.engine.session.EstimationSession.estimate_adaptive` and
``batch_estimate(mode="adaptive")``) feeds these estimators from shared
sample pools in doubling rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from .intervals import ConfidenceInterval
from .montecarlo import chernoff_sample_size


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of a sequential early-stopping estimation run.

    Field-compatible with :class:`~repro.approx.montecarlo.EstimateResult`
    (``estimate``, ``samples_used``, ``epsilon``, ``delta``, ``method``,
    ``certified_zero``) plus the anytime ``interval`` that justified
    stopping, so batch/CLI consumers can treat both result kinds uniformly.
    """

    estimate: float
    samples_used: int
    epsilon: float
    delta: float
    method: str
    interval: ConfidenceInterval
    certified_zero: bool = False


def _eb_from_log_term(
    n: int, variance: float, log_term: float, value_range: float = 1.0
) -> float:
    """Empirical-Bernstein radius from a precomputed ``ln(3/δ)`` value."""
    return (
        math.sqrt(2.0 * variance * log_term / n)
        + 3.0 * value_range * log_term / n
    )


def empirical_bernstein_radius(
    n: int, variance: float, delta: float, value_range: float = 1.0
) -> float:
    """Empirical-Bernstein deviation radius for ``n`` samples in ``[0, R]``.

    ``sqrt(2 V ln(3/δ) / n) + 3 R ln(3/δ) / n`` — a two-sided bound using
    the *empirical* variance ``V`` (Audibert, Munos & Szepesvári 2009).
    ``ln(3/δ)`` is computed as ``ln 3 − ln δ`` so subnormal δ (where
    ``3/δ`` overflows to ``inf``) still yields a finite radius.
    """
    if n <= 0:
        return float("inf")
    return _eb_from_log_term(
        n, variance, math.log(3.0) - math.log(delta), value_range
    )


def hoeffding_radius(n: int, delta: float, value_range: float = 1.0) -> float:
    """Two-sided Hoeffding deviation radius ``R·sqrt(ln(2/δ) / (2n))``.

    Like :func:`empirical_bernstein_radius`, the log term is a difference
    (``ln 2 − ln δ``) so it stays finite for subnormal δ.
    """
    if n <= 0:
        return float("inf")
    return value_range * math.sqrt(
        (math.log(2.0) - math.log(delta)) / (2.0 * n)
    )


def confidence_sequence_radius(
    n: int, variance: float, delta_sequence: float, value_range: float = 1.0
) -> float:
    """The anytime deviation radius at sample count ``n``.

    One formula shared by :meth:`SequentialEstimator.radius` and the
    calibration audit's optional-stopping replays
    (:mod:`repro.calibration`), so the audited arithmetic can never drift
    from the shipped estimator.  The per-``n`` budget is
    ``δ_n = δ_seq / (n (n+1))`` (telescoping to ``δ_seq``), split evenly
    between the empirical-Bernstein and Hoeffding bounds, whose minimum
    is returned.  ``ln(δ_n/2)`` is assembled additively in log space —
    ``δ_seq / (n (n+1))`` itself can underflow to an exact float zero for
    tiny δ (a ``ZeroDivisionError`` in the historical formulation) long
    before the *logarithm* of the budget leaves float range.
    """
    if n <= 0:
        return float("inf")
    log_delta_half = (
        math.log(delta_sequence) - math.log(n) - math.log(n + 1) - math.log(2.0)
    )
    return min(
        _eb_from_log_term(n, variance, math.log(3.0) - log_delta_half, value_range),
        value_range * math.sqrt((math.log(2.0) - log_delta_half) / (2.0 * n)),
    )


class SequentialEstimator:
    """Incremental (ε, δ) estimator over ``[0, 1]`` draws with early stopping.

    Feed samples one at a time with :meth:`offer`; once :attr:`decided` is
    true, :meth:`result` returns the :class:`AdaptiveResult`.  The consumer
    drives the sample stream — which is what lets the engine grow one shared
    :class:`~repro.engine.session.SamplePool` per *round* and feed many
    concurrent estimators from it (see the module docstring for the
    stopping rules and the δ-budget split).

    ``p_lower`` (the paper's positivity bound) enables the zero certificate
    and the fixed-budget fallback cap; without it the estimator can run
    until ``max_samples`` (or forever on a zero stream — pass one of the
    two whenever the true mean may be 0).
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        p_lower: float | Fraction | None = None,
        max_samples: int | None = None,
    ):
        if not 0 < epsilon < 1:
            raise ValueError("adaptive estimation requires 0 < epsilon < 1")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        if p_lower is not None and not 0 < p_lower <= 1:
            raise ValueError("p_lower must lie in (0, 1]")
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.epsilon = epsilon
        self.delta = delta
        self.p_lower = None if p_lower is None else float(p_lower)
        self._n = 0
        self._sum = 0.0
        self._sum_squares = 0.0
        self._decided = False
        self._method = ""
        self._certified_zero = False
        # δ-budget split: half to the anytime confidence sequence, a quarter
        # each to the zero certificate and the Chernoff fallback cap.
        self._delta_sequence = delta / 2.0
        if self.p_lower is not None:
            # ln(4/δ) as a difference: 4/δ overflows to inf for subnormal
            # δ, which used to turn the cap into an OverflowError.
            self._zero_cap = max(
                1, math.ceil((math.log(4.0) - math.log(delta)) / self.p_lower)
            )
            self._chernoff_cap = chernoff_sample_size(epsilon, delta / 4.0, self.p_lower)
        else:
            self._zero_cap = None
            self._chernoff_cap = None
        caps = [c for c in (self._chernoff_cap, max_samples) if c is not None]
        #: Hard ceiling on samples this estimator will ever consume (``None``
        #: only when neither ``p_lower`` nor ``max_samples`` was given).
        self.sample_cap = min(caps) if caps else None

    # -- stream state ----------------------------------------------------------------

    @property
    def samples_seen(self) -> int:
        """Number of samples consumed so far."""
        return self._n

    @property
    def decided(self) -> bool:
        """True once a stopping rule has fired; further offers are rejected."""
        return self._decided

    def mean(self) -> float:
        """The running sample mean (0.0 before any sample)."""
        return self._sum / self._n if self._n else 0.0

    def variance(self) -> float:
        """The running (biased) empirical variance."""
        if self._n == 0:
            return 0.0
        m = self.mean()
        return max(0.0, self._sum_squares / self._n - m * m)

    def radius(self) -> float:
        """Current anytime deviation radius: min(empirical-Bernstein, Hoeffding).

        Each bound gets half the per-``n`` budget ``δ_n = δ_seq / (n(n+1))``
        so their minimum is simultaneously valid for every ``n``; the
        arithmetic lives in :func:`confidence_sequence_radius` (shared
        with the calibration audit's optional-stopping replays).
        """
        return confidence_sequence_radius(
            self._n, self.variance(), self._delta_sequence
        )

    # -- the sequential test ---------------------------------------------------------

    def offer(self, value: float) -> bool:
        """Consume one ``[0, 1]`` draw; return :attr:`decided` afterwards."""
        if self._decided:
            raise RuntimeError("estimator already stopped; create a fresh one")
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"draws must lie in [0, 1], got {value!r}")
        self._n += 1
        self._sum += value
        self._sum_squares += value * value
        mean = self.mean()
        # 1. Confidence-sequence stop: radius small relative to the mean.
        #    r <= ε·mean/(1+ε) and |mean − μ| <= r imply |mean − μ| <= ε·μ.
        if self._sum > 0.0:
            if self.radius() <= self.epsilon * mean / (1.0 + self.epsilon):
                self._decided, self._method = True, "adaptive-eb"
                return True
        # 2. Zero certificate: an all-zero run long enough to rule out
        #    μ >= p_lower at confidence 1 − δ/4.
        elif self._zero_cap is not None and self._n >= self._zero_cap:
            self._decided, self._method = True, "adaptive-zero"
            self._certified_zero = True
            return True
        # 3. Fallback cap: the fixed-budget guarantee (or user truncation).
        if self.sample_cap is not None and self._n >= self.sample_cap:
            self._decided = True
            if self._chernoff_cap is not None and self._n >= self._chernoff_cap:
                self._method = "adaptive-chernoff-cap"
            else:
                self._method = "adaptive-truncated"
            self._certified_zero = self._sum == 0.0
            return True
        return False

    def result(self) -> AdaptiveResult:
        """The stopped estimate; raises if no stopping rule has fired yet."""
        if not self._decided:
            raise RuntimeError("estimator has not stopped yet")
        mean = self.mean()
        # Only the zero *certificate* justifies a point interval at zero; a
        # user-truncated all-zero run still carries the honest anytime
        # radius (its certified_zero flag mirrors the fixed path's
        # ``dklr-truncated`` precedent, nothing stronger).
        radius = 0.0 if self._method == "adaptive-zero" else self.radius()
        return AdaptiveResult(
            estimate=mean,
            samples_used=self._n,
            epsilon=self.epsilon,
            delta=self.delta,
            method=self._method,
            interval=ConfidenceInterval(
                lower=max(0.0, mean - radius),
                upper=min(1.0, mean + radius),
                confidence=1.0 - self.delta,
                method="anytime-eb-hoeffding",
            ),
            certified_zero=self._certified_zero,
        )


def adaptive_estimate(
    draw: Callable[[], float],
    epsilon: float,
    delta: float,
    p_lower: float | Fraction | None = None,
    max_samples: int | None = None,
) -> AdaptiveResult:
    """Run a :class:`SequentialEstimator` to completion over ``draw()`` calls.

    The standalone twin of the engine's pooled adaptive path: pulls one
    sample at a time until a stopping rule fires and returns the
    ``(estimate, interval, samples_used)`` bundle.
    """
    estimator = SequentialEstimator(
        epsilon, delta, p_lower=p_lower, max_samples=max_samples
    )
    if estimator.sample_cap is None:
        raise ValueError(
            "unbounded adaptive run: give p_lower (enables the Chernoff "
            "fallback cap) or max_samples"
        )
    while not estimator.offer(draw()):
        pass
    return estimator.result()
