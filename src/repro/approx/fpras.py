"""FPRAS wrappers for uniform operational CQA.

Each positive theorem in the paper pairs a polynomial-time sampler with a
positivity lower bound; :func:`fpras_ocqa` assembles the right pair for a
(generator, constraint-class) combination and runs a Monte-Carlo estimate:

=====================  ====================  ======================================
Generator              Constraint class      Paper result
=====================  ====================  ======================================
``M_ur`` / ``M_ur,1``  primary keys          Theorem 5.1(2) / Theorem E.1(2)
``M_us`` / ``M_us,1``  primary keys          Theorem 6.1(2) / Theorem E.8(2)
``M_uo``               arbitrary keys        Theorem 7.1(2)
``M_uo,1``             arbitrary FDs         Theorem 7.5
=====================  ====================  ======================================

Combinations outside the table raise :class:`FPRASUnavailable` with the
paper's negative/open status, rather than silently returning an estimate
with no guarantee.

Since the batched engine landed, each call is a thin per-call view over a
fresh :class:`~repro.engine.session.EstimationSession`; callers estimating
many answers over one instance should hold a session (or use
:func:`~repro.engine.batch.batch_estimate`) to share the sampling pass —
results are bit-for-bit identical either way under the same seed.  The
session runs on the interned-fact kernel
(:class:`~repro.core.interning.InstanceIndex`): draws are id bitmasks and
witness checks integer subset tests, with the same bit-for-bit guarantee
against the object path (``tests/test_interning.py``).
"""

from __future__ import annotations

import random

from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from .montecarlo import EstimateResult

__all__ = [
    "AUTO_FIXED_BUDGET",
    "FPRASUnavailable",
    "fixed_budget_estimate",
    "fpras_ocqa",
]

#: Above this fixed-N budget, ``method="auto"`` switches to the adaptive
#: stopping rule so the theoretical-but-huge bounds stay usable in practice.
AUTO_FIXED_BUDGET = 2_000_000


class FPRASUnavailable(RuntimeError):
    """No FPRAS is known (or one is ruled out) for the requested combination."""


def fpras_ocqa(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: random.Random | None = None,
    method: str = "auto",
    p_lower: float | None = None,
    max_samples: int | None = None,
) -> EstimateResult:
    """Approximate ``P_{M_Σ,Q}(D, c̄)`` with relative error ε, confidence 1-δ.

    ``method``:

    * ``"fixed"`` — Chernoff-sized sample using the positivity bound
      (``p_lower`` overrides the theoretical bound when given);
    * ``"dklr"`` — the Dagum–Karp–Luby–Ross stopping rule, whose cost adapts
      to the true probability (``max_samples`` truncates pathological runs);
    * ``"auto"`` — ``"fixed"`` when the implied budget is at most
      ``AUTO_FIXED_BUDGET``, else ``"dklr"``.
    """
    from ..engine.session import EstimationSession

    session = EstimationSession(database, constraints, generator)
    return session.estimate(
        query,
        answer,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        method=method,
        p_lower=p_lower,
        max_samples=max_samples,
    )


def fixed_budget_estimate(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    samples: int = 10_000,
    rng: random.Random | None = None,
) -> EstimateResult:
    """Plain sample-mean with an explicit budget (for benches and studies).

    No (ε, δ) guarantee is attached — benches use this to chart accuracy
    versus budget against exact values.
    """
    from ..engine.session import EstimationSession

    session = EstimationSession(database, constraints, generator)
    return session.fixed_budget(query, answer, samples=samples, rng=rng)
