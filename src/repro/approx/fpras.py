"""FPRAS wrappers for uniform operational CQA.

Each positive theorem in the paper pairs a polynomial-time sampler with a
positivity lower bound; :func:`fpras_ocqa` assembles the right pair for a
(generator, constraint-class) combination and runs a Monte-Carlo estimate:

=====================  ====================  ======================================
Generator              Constraint class      Paper result
=====================  ====================  ======================================
``M_ur`` / ``M_ur,1``  primary keys          Theorem 5.1(2) / Theorem E.1(2)
``M_us`` / ``M_us,1``  primary keys          Theorem 6.1(2) / Theorem E.8(2)
``M_uo``               arbitrary keys        Theorem 7.1(2)
``M_uo,1``             arbitrary FDs         Theorem 7.5
=====================  ====================  ======================================

Combinations outside the table raise :class:`FPRASUnavailable` with the
paper's negative/open status, rather than silently returning an estimate
with no guarantee.
"""

from __future__ import annotations

import random
from typing import Callable

from ..chains.generators import (
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from ..sampling.operations_sampler import UniformOperationsSampler
from ..sampling.repair_sampler import RepairSampler
from ..sampling.rng import resolve_rng
from ..sampling.sequence_sampler import SequenceSampler
from .bounds import (
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_singleton_fd_lower_bound,
)
from .montecarlo import (
    EstimateResult,
    bernoulli_stream,
    chernoff_sample_size,
    fixed_sample_estimate,
    stopping_rule_estimate,
)

#: Above this fixed-N budget, ``method="auto"`` switches to the adaptive
#: stopping rule so the theoretical-but-huge bounds stay usable in practice.
AUTO_FIXED_BUDGET = 2_000_000


class FPRASUnavailable(RuntimeError):
    """No FPRAS is known (or one is ruled out) for the requested combination."""


def _entailment_sampler(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple,
    rng: random.Random,
) -> tuple[Callable[[], bool], float]:
    """The Bernoulli sampler and positivity bound for a supported combination."""
    singleton = generator.singleton_only
    if isinstance(generator, UniformRepairs):
        if not constraints.is_primary_keys():
            raise FPRASUnavailable(
                "M_ur beyond primary keys: no FPRAS for FDs unless RP = NP "
                "(Theorem 5.1(3)); keys are open (Prop 5.5 rules out repair "
                "counting)."
            )
        sampler = RepairSampler(database, constraints, singleton, rng)
        bound = (
            singleton_frequency_lower_bound(database, query)
            if singleton
            else rrfreq_lower_bound(database, query)
        )
        return (lambda: query.entails(sampler.sample(), answer)), float(bound)
    if isinstance(generator, UniformSequences):
        if not constraints.is_primary_keys():
            raise FPRASUnavailable(
                "M_us beyond primary keys is open; the paper conjectures no "
                "FPRAS even for keys (Section 6)."
            )
        sampler = SequenceSampler(database, constraints, singleton, rng)
        bound = (
            singleton_frequency_lower_bound(database, query)
            if singleton
            else srfreq_lower_bound(database, query)
        )
        return (lambda: query.entails(sampler.sample_result(), answer)), float(bound)
    if isinstance(generator, UniformOperations):
        if singleton:
            walker = UniformOperationsSampler(database, constraints, True, rng)
            bound = uo_singleton_fd_lower_bound(database, query)
            return (lambda: query.entails(walker.sample(), answer)), float(bound)
        if not constraints.all_keys():
            raise FPRASUnavailable(
                "M_uo with non-key FDs: the target probability can be "
                "exponentially small (Prop D.6), so Monte Carlo cannot give "
                "an FPRAS; use M_uo,1 (Theorem 7.5) instead."
            )
        walker = UniformOperationsSampler(database, constraints, False, rng)
        # Prop 7.3's explicit polynomial bound is astronomically small; the
        # auto method therefore prefers the adaptive stopping rule.  A
        # pragmatic floor keeps fixed-N runs possible on small inputs.
        bound = rrfreq_lower_bound(database, query)
        return (lambda: query.entails(walker.sample(), answer)), float(bound)
    raise FPRASUnavailable(f"no FPRAS dispatch for generator {generator.name!r}")


def fpras_ocqa(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: random.Random | None = None,
    method: str = "auto",
    p_lower: float | None = None,
    max_samples: int | None = None,
) -> EstimateResult:
    """Approximate ``P_{M_Σ,Q}(D, c̄)`` with relative error ε, confidence 1-δ.

    ``method``:

    * ``"fixed"`` — Chernoff-sized sample using the positivity bound
      (``p_lower`` overrides the theoretical bound when given);
    * ``"dklr"`` — the Dagum–Karp–Luby–Ross stopping rule, whose cost adapts
      to the true probability (``max_samples`` truncates pathological runs);
    * ``"auto"`` — ``"fixed"`` when the implied budget is at most
      ``AUTO_FIXED_BUDGET``, else ``"dklr"``.
    """
    rng = resolve_rng(rng)
    predicate, theoretical_bound = _entailment_sampler(
        database, constraints, generator, query, answer, rng
    )
    from ..exact.possibility import answer_is_possible

    if not answer_is_possible(database, constraints, query, answer):
        # The polynomial zero-test: no conflict-free image of the query
        # exists, so the probability is exactly 0 under every generator —
        # certify without spending a single sample.
        return EstimateResult(
            estimate=0.0,
            samples_used=0,
            epsilon=epsilon,
            delta=delta,
            method="possibility-zero",
            certified_zero=True,
        )
    bound = p_lower if p_lower is not None else theoretical_bound
    draw = bernoulli_stream(predicate)
    if method == "auto":
        budget = chernoff_sample_size(epsilon, delta, bound)
        method = "fixed" if budget <= AUTO_FIXED_BUDGET else "dklr"
    if method == "fixed":
        return fixed_sample_estimate(draw, epsilon, delta, bound)
    if method == "dklr":
        return stopping_rule_estimate(draw, epsilon, delta, max_samples=max_samples)
    raise ValueError(f"unknown method {method!r}")


def fixed_budget_estimate(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    samples: int = 10_000,
    rng: random.Random | None = None,
) -> EstimateResult:
    """Plain sample-mean with an explicit budget (for benches and studies).

    No (ε, δ) guarantee is attached — benches use this to chart accuracy
    versus budget against exact values.
    """
    rng = resolve_rng(rng)
    predicate, _ = _entailment_sampler(database, constraints, generator, query, answer, rng)
    hits = sum(1 for _ in range(samples) if predicate())
    return EstimateResult(
        estimate=hits / samples,
        samples_used=samples,
        epsilon=float("nan"),
        delta=float("nan"),
        method="fixed-budget",
        certified_zero=(hits == 0),
    )
