"""Command-line interface: ``python -m repro <command>``.

Commands operate on JSON instance files (see :mod:`repro.io`):

* ``inspect FILE``                       — consistency, violations, conflict components
* ``answers FILE -q QUERY [options]``    — operational consistent answers
* ``probability FILE -q QUERY [options]``— one ``P_{M_Σ,Q}(D, c̄)`` value
* ``sample FILE [options]``              — draw repairs / sequences / walks
* ``count FILE [--what crs|repairs]``    — polynomial counts (primary keys)
* ``batch FILE [options]``               — batched estimation over a JSON workload
* ``serve [options]``                    — the long-running estimation HTTP service
* ``loadtest [options]``                 — fault-injecting saturation test of ``serve``
* ``example NAME``                       — dump a built-in instance as JSON
* ``audit [options]``                    — mass-replication (ε, δ) calibration audit
* ``fsck CACHE_DIR [--repair]``          — verify a cache store's digests offline
* ``lint [PATHS] [--json]``              — repo contract lint (see ``docs/LINT.md``)

Example::

    python -m repro example figure2 > fig2.json
    python -m repro answers fig2.json -q 'Ans(?x) :- R(?x, ?y)' -g M_ur

``batch`` reads a workload file (see ``docs/FORMATS.md``), groups requests
by (instance, generator), and scores each group against one shared sample
pool — optionally fanning groups out over worker processes.  With
``--mode adaptive`` every group runs sequential early-stopping estimators
instead of fixed budgets, ``--cache-dir DIR`` (with ``--seed``) persists
decompositions, bounds and sample batches across runs, ``--backend``
picks the sample plane (``auto`` prefers the vectorized numpy plane and
falls back to the scalar kernel), and ``--allow-errors`` exits 0 even
when some rows report out-of-scope errors (the rows still carry them).

``serve`` starts the estimation service (:mod:`repro.service`): a warm
session registry behind a micro-batching HTTP JSON API sharing the
workload JSON conventions, hardened with bounded admission queues
(``--max-queue`` / ``--max-pending`` → 429 + ``Retry-After``), a
server-wide deadline budget (``--default-budget`` → 504; clients may
send tighter ``budget_seconds`` → 408), a digest-verified answer cache
(``--answer-cache-size``), ``GET /metrics`` in Prometheus text format,
and — for the load-test harness only — ``--enable-fault-injection``.
``loadtest`` drives a real ``serve`` subprocess past saturation with a
closed-loop client swarm and injected faults, and exits nonzero unless
every graceful-degradation invariant held
(:mod:`repro.service.loadtest`).

**Adding a command** is one entry in the :data:`COMMANDS` registry: a
:class:`Command` bundles the handler, its help line, and a function
that declares its arguments — the parser is assembled from the table,
so subcommands never touch :func:`build_parser` itself.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from .chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from .core.conflict_graph import ConflictGraph
from .core.violations import violations
from .counting import count_crs, count_crs1
from .counting.repair_count import (
    count_candidate_repairs_primary_keys,
    count_singleton_repairs_primary_keys,
)
from .cqa.answers import ocqa_probability, operational_consistent_answers
from .engine.batch import batch_estimate
from .io import (
    batch_results_to_rows,
    instance_to_dict,
    load_instance,
    load_workload_spec,
    parse_query,
)
from .sampling.operations_sampler import UniformOperationsSampler
from .sampling.repair_sampler import RepairSampler
from .sampling.sequence_sampler import SequenceSampler

GENERATORS = {
    "M_ur": M_UR,
    "M_us": M_US,
    "M_uo": M_UO,
    "M_ur,1": M_UR1,
    "M_us,1": M_US1,
    "M_uo,1": M_UO1,
}


@dataclass(frozen=True)
class Command:
    """One CLI subcommand: handler + help + argument declaration."""

    func: Callable[[argparse.Namespace], int]
    help: str
    add_arguments: Callable[[argparse.ArgumentParser], None]


def build_parser() -> argparse.ArgumentParser:
    """Assemble the full parser from the :data:`COMMANDS` registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uniform operational consistent query answering (PODS 2022)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for name, command in COMMANDS.items():
        subparser = commands.add_parser(name, help=command.help)
        command.add_arguments(subparser)
    return parser


# -- shared argument groups ----------------------------------------------------------------


def _add_generator_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "-g", "--generator", choices=sorted(GENERATORS), default="M_ur"
    )
    subparser.add_argument(
        "--method", choices=("exact", "approx"), default="exact"
    )
    subparser.add_argument("--epsilon", type=float, default=0.2)
    subparser.add_argument("--delta", type=float, default=0.05)
    subparser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"RNG seed (default {DEFAULT_SEED}, so unseeded runs replay)",
    )


#: Seed used when a command is run without ``--seed``: an arbitrary but
#: *fixed* value (the paper's year), so even casual unseeded invocations
#: replay bit-for-bit — seed discipline (lint rule RL001) bans falling
#: back to entropy-seeded RNGs anywhere in the package.
DEFAULT_SEED = 2022


def _rng(seed: int | None) -> random.Random:
    return random.Random(DEFAULT_SEED if seed is None else seed)


def _parse_answer(raw: str) -> tuple:
    if not raw:
        return ()
    values = []
    for token in raw.split(","):
        token = token.strip()
        values.append(int(token) if token.lstrip("-").isdigit() else token)
    return tuple(values)


def _render_probability(value) -> str:
    if isinstance(value, Fraction):
        return f"{value} (= {float(value):.6f})"
    return f"{value.estimate:.6f} ({value.samples_used} samples, method {value.method})"


# -- inspect -------------------------------------------------------------------------------


def _arguments_inspect(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("instance", help="path to a JSON instance file")


def command_inspect(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    print(f"facts: {len(database)}")
    print(f"fds:   {constraints}")
    print(f"class: keys={constraints.all_keys()} "
          f"primary_keys={constraints.is_primary_keys()}")
    print(f"consistent: {constraints.satisfied_by(database)}")
    found = sorted(violations(database, constraints), key=str)
    print(f"violations: {len(found)}")
    for violation in found[:20]:
        print(f"  {violation}")
    if len(found) > 20:
        print(f"  ... and {len(found) - 20} more")
    graph = ConflictGraph.of(database, constraints)
    components = graph.nontrivial_components()
    print(f"conflict components: {len(components)} "
          f"(sizes {sorted(len(c) for c in components)})")
    print(f"conflict-free facts: {len(graph.isolated_nodes())}")
    return 0


# -- answers -------------------------------------------------------------------------------


def _arguments_answers(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("instance")
    subparser.add_argument(
        "-q", "--query", required=True, help="e.g. 'Ans(?x) :- R(?x, ?y)'"
    )
    _add_generator_options(subparser)


def command_answers(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    query = parse_query(args.query)
    rows = operational_consistent_answers(
        database,
        constraints,
        GENERATORS[args.generator],
        query,
        method=args.method,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=_rng(args.seed),
    )
    for row in rows:
        rendered = ", ".join(map(str, row.answer)) if row.answer else "()"
        if isinstance(row.probability, Fraction):
            print(f"{rendered}\t{row.probability}\t{float(row.probability):.6f}")
        else:
            print(f"{rendered}\t~\t{row.probability:.6f}")
    return 0


# -- probability ---------------------------------------------------------------------------


def _arguments_probability(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("instance")
    subparser.add_argument("-q", "--query", required=True)
    subparser.add_argument(
        "-a", "--answer", default="", help="comma-separated answer tuple"
    )
    _add_generator_options(subparser)


def command_probability(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    query = parse_query(args.query)
    value = ocqa_probability(
        database,
        constraints,
        GENERATORS[args.generator],
        query,
        _parse_answer(args.answer),
        method=args.method,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=_rng(args.seed),
    )
    print(_render_probability(value))
    return 0


# -- sample --------------------------------------------------------------------------------


def _arguments_sample(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("instance")
    subparser.add_argument(
        "--what", choices=("repair", "sequence", "walk"), default="repair"
    )
    subparser.add_argument("-n", type=int, default=5, dest="count")
    subparser.add_argument("--singleton", action="store_true")
    subparser.add_argument("--seed", type=int, default=None)


def command_sample(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    rng = _rng(args.seed)
    if args.what == "repair":
        sampler = RepairSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            print(sampler.sample())
    elif args.what == "sequence":
        sampler = SequenceSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            print(sampler.sample())
    else:
        walker = UniformOperationsSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            result = walker.walk()
            print(f"{result.sequence}  ->  {result.repair}  (pi = {result.probability})")
    return 0


# -- count ---------------------------------------------------------------------------------


def _arguments_count(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("instance")
    subparser.add_argument("--what", choices=("crs", "repairs"), default="repairs")
    subparser.add_argument("--singleton", action="store_true")


def command_count(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    if args.what == "crs":
        value = (
            count_crs1(database, constraints)
            if args.singleton
            else count_crs(database, constraints)
        )
    else:
        value = (
            count_singleton_repairs_primary_keys(database, constraints)
            if args.singleton
            else count_candidate_repairs_primary_keys(database, constraints)
        )
    print(value)
    return 0


# -- batch ---------------------------------------------------------------------------------


def _arguments_batch(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("workload", help="path to a JSON workload file")
    subparser.add_argument("--seed", type=int, default=None)
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan instance groups out over this many worker processes",
    )
    subparser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON rows"
    )
    subparser.add_argument(
        "--mode",
        choices=("fixed", "adaptive"),
        default=None,
        help="estimation mode (default: the workload's 'mode' field, else fixed); "
        "'adaptive' uses sequential early-stopping estimators",
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        help="persist decompositions/bounds/sample batches here across runs "
        "(default: the workload's 'cache_dir' field; needs --seed to be effective)",
    )
    subparser.add_argument(
        "--backend",
        choices=("auto", "vector", "scalar"),
        default=None,
        help="sample plane per group (default: the workload's 'backend' field, "
        "else auto): 'auto' uses the vectorized numpy plane when available and "
        "falls back to the scalar kernel; pin 'vector' or 'scalar' for "
        "cross-environment reproducibility",
    )
    subparser.add_argument(
        "--allow-errors",
        action="store_true",
        help="exit 0 even when some requests report scope errors (the rows "
        "still carry them); without this flag any error row exits 1",
    )


def command_batch(args: argparse.Namespace) -> int:
    spec = load_workload_spec(args.workload)
    mode = args.mode if args.mode is not None else spec.mode
    cache_dir = args.cache_dir if args.cache_dir is not None else spec.cache_dir
    backend = args.backend if args.backend is not None else spec.backend
    if cache_dir is not None and args.seed is None:
        print(
            "note: --cache-dir has no effect without --seed "
            "(unseeded runs are not reproducible)",
            file=sys.stderr,
        )
    results = batch_estimate(
        spec.requests,
        seed=args.seed,
        workers=args.workers,
        mode=mode,
        cache_dir=cache_dir,
        backend=backend,
    )
    rows = batch_results_to_rows(results)
    failures = sum(1 for row in rows if "error" in row)
    if args.json:
        json.dump(rows, sys.stdout, indent=2)
        print()
    else:
        for row in rows:
            rendered = ",".join(map(str, row["answer"])) if row["answer"] else "()"
            if "error" in row:
                print(
                    f"{row['instance']}\t{row['generator']}\t{rendered}\t"
                    f"ERROR: {row['error']}"
                )
            else:
                print(
                    f"{row['instance']}\t{row['generator']}\t{rendered}\t"
                    f"{row['estimate']:.6f}\t{row['samples']} samples\t{row['method']}"
                )
    return 1 if failures and not args.allow_errors else 0


# -- serve ---------------------------------------------------------------------------------


def _arguments_serve(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--host", default="127.0.0.1")
    subparser.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks one)"
    )
    subparser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload-level seed group seeds derive from; served estimates "
        "are then bit-identical to `repro batch --seed N` on the same "
        "requests (and cacheable)",
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        help="CacheStore directory for admission warm-starts and eviction "
        "spills (needs --seed to be effective)",
    )
    subparser.add_argument(
        "--backend",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="sample plane for every session (see `batch --backend`)",
    )
    subparser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="LRU capacity of the warm session registry (default 32)",
    )
    subparser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="admission bound: queued estimation requests per instance group "
        "(default unbounded); exceeding it returns 429 + Retry-After",
    )
    subparser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admission bound: total queued estimation requests across all "
        "groups (default unbounded); exceeding it returns 429 + Retry-After",
    )
    subparser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission bound: estimation requests concurrently being "
        "handled, counting body parsing (default unbounded); exceeding "
        "it returns 429 + Retry-After before the body is read",
    )
    subparser.add_argument(
        "--default-budget",
        type=float,
        default=None,
        help="server-wide deadline budget in seconds per request document "
        "(default none); expiry cancels queued work and returns 504 "
        "(client 'budget_seconds' fields return 408 and are capped by this)",
    )
    subparser.add_argument(
        "--answer-cache-size",
        type=int,
        default=None,
        help="memoized answer cache capacity in result rows (default 4096; "
        "0 disables; only effective with --seed — unseeded estimates are "
        "never cached)",
    )
    subparser.add_argument(
        "--enable-fault-injection",
        action="store_true",
        help="expose POST /_fault (slow handlers, cache poisoning, worker "
        "kills) for the loadtest harness; never enable on a real deployment",
    )
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the service across N warm worker processes (one "
        "SessionRegistry per shard, routed by consistent-hashing the "
        "instance cache key; default: single-process). Served rows are "
        "bit-identical at any worker count",
    )


def command_serve(args: argparse.Namespace) -> int:
    from .service import serve

    return serve(
        args.host,
        args.port,
        seed=args.seed,
        cache_dir=args.cache_dir,
        backend=args.backend,
        max_sessions=args.max_sessions,
        max_queue=args.max_queue,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        default_budget=args.default_budget,
        answer_cache_size=args.answer_cache_size,
        fault_injection=args.enable_fault_injection,
        workers=args.workers,
    )


# -- loadtest ------------------------------------------------------------------------------


def _arguments_loadtest(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--url",
        default=None,
        help="target an already-running server instead of spawning a "
        "`repro serve` subprocess (the kill fault is then skipped)",
    )
    subparser.add_argument("--seed", type=int, default=7)
    subparser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every phase duration by this factor (the CI smoke "
        "job uses the ~20 s defaults; the tier-2 leg scales up)",
    )
    subparser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="overload swarm size (default 24; saturation uses a sixth)",
    )
    subparser.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="batcher queue bound for the spawned server (default 8, "
        "deliberately far below the overload swarm so backpressure must "
        "engage)",
    )
    subparser.add_argument(
        "--max-inflight",
        type=int,
        default=1,
        help="connection-level admission bound for the spawned server "
        "(default 1: closed-loop admitted latency ≈ max_inflight × "
        "service time, so one slot keeps admitted p99 near the unloaded "
        "p99 on a small box)",
    )
    subparser.add_argument(
        "--kill", action="store_true",
        help="also SIGKILL and restart the server subprocess mid-storm",
    )
    subparser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run the spawned server sharded across N worker processes "
        "(default 0: single-process; ignored with --url)",
    )
    subparser.add_argument(
        "--kill-worker", action="store_true",
        help="also SIGKILL one worker shard mid-storm via POST /_fault "
        "(requires --workers >= 1; the router must respawn it with served "
        "rows still bit-identical)",
    )
    subparser.add_argument(
        "--disk-fault", action="store_true",
        help="also break the spawned server's cache store mid-storm "
        "(ENOSPC on writes, a flipped bit on reads, via POST /_fault); "
        "the server must degrade to compute-without-cache with zero 5xx "
        "and recover when the fault clears (needs --workers 0, no --url)",
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        help="CacheStore directory for the spawned server (default: none, "
        "or a private temporary directory when --disk-fault needs one)",
    )
    subparser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="client sleep after a 429 rejection before retrying "
        "(default 0.05 s — tuned for a single-core server; raise or "
        "lower to match the deployment's drain rate)",
    )
    subparser.add_argument(
        "--no-slow", dest="slow", action="store_false",
        help="skip the slow-handler + deadline-budget fault",
    )
    subparser.add_argument(
        "--no-poison", dest="poison", action="store_false",
        help="skip the cache-poisoning fault",
    )
    subparser.add_argument(
        "--no-malformed", dest="malformed", action="store_false",
        help="skip the malformed/truncated raw-socket probes",
    )
    subparser.add_argument(
        "--no-p99-check", dest="p99_check", action="store_false",
        help="report but do not assert the overload p99 degradation bound",
    )
    subparser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable report here",
    )


def command_loadtest(args: argparse.Namespace) -> int:
    from .service import LoadTestConfig, format_report, run_loadtest

    config = LoadTestConfig(
        seed=args.seed,
        baseline_seconds=2.0 * args.scale,
        saturation_seconds=2.0 * args.scale,
        overload_seconds=3.0 * args.scale,
        cache_seconds=1.0 * args.scale,
        fault_seconds=3.0 * args.scale,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        workers=args.workers if args.url is None else 0,
        inject_slow=args.slow,
        inject_poison=args.poison,
        inject_malformed=args.malformed,
        inject_kill=args.kill and args.url is None,
        inject_worker_kill=args.kill_worker and args.url is None,
        inject_disk_fault=args.disk_fault and args.url is None,
        cache_dir=args.cache_dir,
        check_p99=args.p99_check,
        reject_backoff_seconds=args.backoff,
    )
    if args.clients is not None:
        config.overload_clients = args.clients
        config.saturation_clients = max(1, args.clients // 6)
    report = run_loadtest(config, base_url=args.url)
    print(format_report(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(report.to_dict(), stream, indent=2)
        print(f"loadtest report written to {args.json}", file=sys.stderr)
    return 0 if report.ok else 1


# -- example -------------------------------------------------------------------------------


def _arguments_example(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "name", choices=("figure2", "running", "intro", "pathological8")
    )


def command_example(args: argparse.Namespace) -> int:
    from .reductions.pathological import pathological_instance
    from .workloads import figure2_database, intro_example

    if args.name == "figure2":
        database, constraints = figure2_database()
    elif args.name == "running":
        from .core import Database, FDSet, Schema, fact, fd

        schema = Schema.from_spec({"R": ["A", "B", "C"]})
        database = Database(
            [
                fact("R", "a1", "b1", "c1"),
                fact("R", "a1", "b2", "c2"),
                fact("R", "a2", "b1", "c2"),
            ],
            schema=schema,
        )
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    elif args.name == "intro":
        scenario = intro_example()
        database, constraints = scenario.database, scenario.constraints
    else:
        instance = pathological_instance(8)
        database, constraints = instance.database, instance.constraints
    json.dump(instance_to_dict(database, constraints), sys.stdout, indent=2)
    print()
    return 0


# -- audit ---------------------------------------------------------------------------------


def _arguments_audit(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--replications",
        type=int,
        default=200,
        help="independent seeded estimates per audit cell (default 200; "
        "the acceptance gate runs 2000)",
    )
    subparser.add_argument("--epsilon", type=float, default=0.3)
    subparser.add_argument("--delta", type=float, default=0.1)
    subparser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed every replication seed is derived from (the whole "
        "audit replays bit-for-bit under one value)",
    )
    subparser.add_argument(
        "--profile",
        choices=("small", "full"),
        default="small",
        help="'small' audits the exact-truth Figure 2 grid; 'full' adds "
        "a larger instance with exact and reference truths",
    )
    subparser.add_argument(
        "--cells",
        nargs="*",
        default=None,
        metavar="PATTERN",
        help="only audit cells whose target/mode/backend/warmth id "
        "contains one of these substrings (e.g. 'adaptive', "
        "'fig2-mur/fixed/vector')",
    )
    subparser.add_argument(
        "--horizon",
        type=int,
        default=512,
        help="draws per adversarial optional-stopping stream (default 512)",
    )
    subparser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable audit artifact here",
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        help="CacheStore directory for the warm-replay cells (a temporary "
        "directory when omitted)",
    )


def command_audit(args: argparse.Namespace) -> int:
    from .calibration import default_targets, render_report, run_audit, write_json

    report = run_audit(
        default_targets(args.profile),
        epsilon=args.epsilon,
        delta=args.delta,
        replications=args.replications,
        base_seed=args.seed,
        cells=args.cells,
        cache_dir=args.cache_dir,
        horizon=args.horizon,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
    )
    print(render_report(report))
    if args.json is not None:
        write_json(report, args.json)
        print(f"audit artifact written to {args.json}", file=sys.stderr)
    return 0 if report.passed else 1


# -- fsck ----------------------------------------------------------------------------------


def _arguments_fsck(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "cache_dir",
        help="the CacheStore directory to scan (every *.json entry is "
        "checked: version, structure, row shapes, content digest)",
    )
    subparser.add_argument(
        "--repair", action="store_true",
        help="quarantine damaged entries (rename to *.quarantined, "
        "skipped by future loads — the next warm run recomputes them) "
        "and delete orphaned temp files",
    )
    subparser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable fsck report here",
    )


def command_fsck(args: argparse.Namespace) -> int:
    from .engine.store import fsck_store

    report = fsck_store(args.cache_dir, repair=args.repair)
    print(report.render())
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(report.to_dict(), stream, indent=2)
        print(f"fsck report written to {args.json}", file=sys.stderr)
    # Damage found exits nonzero even under --repair: the quarantine
    # fixed the store, but the operator should still know it was needed.
    return 0 if report.ok else 1


# -- lint ----------------------------------------------------------------------------------


def _arguments_lint(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the installed repro "
        "package — the tree the contracts govern)",
    )
    subparser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    subparser.add_argument(
        "--rules",
        default=None,
        metavar="RL001,RL006",
        help="comma-separated rule ids to run (default: all)",
    )
    subparser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (id, title, contract) and exit",
    )


def command_lint(args: argparse.Namespace) -> int:
    from .lint import ALL_RULES, render_json, render_text, run_lint

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id} {rule.title}: {rule.contract}")
        return 0
    rules = list(ALL_RULES)
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        unknown = wanted - {rule.id for rule in ALL_RULES}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in ALL_RULES if rule.id in wanted]
    findings = run_lint(paths=args.paths or None, rules=rules)
    print(render_json(findings) if args.json else render_text(findings))
    return 1 if findings else 0


# -- the registry --------------------------------------------------------------------------

#: The single source of truth for subcommands: parser assembly
#: (:func:`build_parser`) and dispatch (:func:`main`) both walk this
#: table, so adding a command is adding one entry.
COMMANDS: dict[str, Command] = {
    "inspect": Command(command_inspect, "describe an instance", _arguments_inspect),
    "answers": Command(
        command_answers, "operational consistent answers", _arguments_answers
    ),
    "probability": Command(
        command_probability, "one answer's probability", _arguments_probability
    ),
    "sample": Command(
        command_sample, "draw repairs/sequences/walks", _arguments_sample
    ),
    "count": Command(
        command_count, "polynomial counts (primary keys)", _arguments_count
    ),
    "batch": Command(
        command_batch, "batched estimation over a JSON workload file", _arguments_batch
    ),
    "serve": Command(
        command_serve, "run the long-running estimation HTTP service", _arguments_serve
    ),
    "loadtest": Command(
        command_loadtest,
        "drive the estimation service past saturation with injected faults",
        _arguments_loadtest,
    ),
    "example": Command(command_example, "dump a built-in instance", _arguments_example),
    "audit": Command(
        command_audit,
        "mass-replication calibration audit of the (ε, δ) contracts",
        _arguments_audit,
    ),
    "fsck": Command(
        command_fsck,
        "verify a cache store's digests, versions and row shapes offline",
        _arguments_fsck,
    ),
    "lint": Command(
        command_lint,
        "check the repo's determinism/durability/concurrency contracts",
        _arguments_lint,
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command].func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
