"""Command-line interface: ``python -m repro <command>``.

Commands operate on JSON instance files (see :mod:`repro.io`):

* ``inspect FILE``                       — consistency, violations, conflict components
* ``answers FILE -q QUERY [options]``    — operational consistent answers
* ``probability FILE -q QUERY [options]``— one ``P_{M_Σ,Q}(D, c̄)`` value
* ``sample FILE [options]``              — draw repairs / sequences / walks
* ``count FILE [--what crs|repairs]``    — polynomial counts (primary keys)
* ``batch FILE [options]``               — batched estimation over a JSON workload
* ``serve [options]``                    — the long-running estimation HTTP service
* ``example NAME``                       — dump a built-in instance as JSON

Example::

    python -m repro example figure2 > fig2.json
    python -m repro answers fig2.json -q 'Ans(?x) :- R(?x, ?y)' -g M_ur

``batch`` reads a workload file (see ``docs/FORMATS.md``), groups requests
by (instance, generator), and scores each group against one shared sample
pool — optionally fanning groups out over worker processes.  With
``--mode adaptive`` every group runs sequential early-stopping estimators
instead of fixed budgets, ``--cache-dir DIR`` (with ``--seed``) persists
decompositions, bounds and sample batches across runs, ``--backend``
picks the sample plane (``auto`` prefers the vectorized numpy plane and
falls back to the scalar kernel), and ``--allow-errors`` exits 0 even
when some rows report out-of-scope errors (the rows still carry them).

``serve`` starts the estimation service (:mod:`repro.service`): a warm
session registry behind a micro-batching HTTP JSON API, sharing the
workload JSON conventions — see ``docs/FORMATS.md`` for the endpoints.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from fractions import Fraction

from .chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from .core.conflict_graph import ConflictGraph
from .core.violations import violations
from .counting import count_crs, count_crs1
from .counting.repair_count import (
    count_candidate_repairs_primary_keys,
    count_singleton_repairs_primary_keys,
)
from .cqa.answers import ocqa_probability, operational_consistent_answers
from .engine.batch import batch_estimate
from .io import (
    batch_results_to_rows,
    instance_to_dict,
    load_instance,
    load_workload_spec,
    parse_query,
)
from .sampling.operations_sampler import UniformOperationsSampler
from .sampling.repair_sampler import RepairSampler
from .sampling.sequence_sampler import SequenceSampler

GENERATORS = {
    "M_ur": M_UR,
    "M_us": M_US,
    "M_uo": M_UO,
    "M_ur,1": M_UR1,
    "M_us,1": M_US1,
    "M_uo,1": M_UO1,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uniform operational consistent query answering (PODS 2022)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser("inspect", help="describe an instance")
    inspect.add_argument("instance", help="path to a JSON instance file")

    answers = commands.add_parser("answers", help="operational consistent answers")
    answers.add_argument("instance")
    answers.add_argument("-q", "--query", required=True, help="e.g. 'Ans(?x) :- R(?x, ?y)'")
    _add_generator_options(answers)

    probability = commands.add_parser("probability", help="one answer's probability")
    probability.add_argument("instance")
    probability.add_argument("-q", "--query", required=True)
    probability.add_argument(
        "-a", "--answer", default="", help="comma-separated answer tuple"
    )
    _add_generator_options(probability)

    sample = commands.add_parser("sample", help="draw repairs/sequences/walks")
    sample.add_argument("instance")
    sample.add_argument(
        "--what", choices=("repair", "sequence", "walk"), default="repair"
    )
    sample.add_argument("-n", type=int, default=5, dest="count")
    sample.add_argument("--singleton", action="store_true")
    sample.add_argument("--seed", type=int, default=None)

    count = commands.add_parser("count", help="polynomial counts (primary keys)")
    count.add_argument("instance")
    count.add_argument("--what", choices=("crs", "repairs"), default="repairs")
    count.add_argument("--singleton", action="store_true")

    batch = commands.add_parser(
        "batch", help="batched estimation over a JSON workload file"
    )
    batch.add_argument("workload", help="path to a JSON workload file")
    batch.add_argument("--seed", type=int, default=None)
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan instance groups out over this many worker processes",
    )
    batch.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON rows"
    )
    batch.add_argument(
        "--mode",
        choices=("fixed", "adaptive"),
        default=None,
        help="estimation mode (default: the workload's 'mode' field, else fixed); "
        "'adaptive' uses sequential early-stopping estimators",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="persist decompositions/bounds/sample batches here across runs "
        "(default: the workload's 'cache_dir' field; needs --seed to be effective)",
    )
    batch.add_argument(
        "--backend",
        choices=("auto", "vector", "scalar"),
        default=None,
        help="sample plane per group (default: the workload's 'backend' field, "
        "else auto): 'auto' uses the vectorized numpy plane when available and "
        "falls back to the scalar kernel; pin 'vector' or 'scalar' for "
        "cross-environment reproducibility",
    )
    batch.add_argument(
        "--allow-errors",
        action="store_true",
        help="exit 0 even when some requests report scope errors (the rows "
        "still carry them); without this flag any error row exits 1",
    )

    serve = commands.add_parser(
        "serve", help="run the long-running estimation HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks one)"
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload-level seed group seeds derive from; served estimates "
        "are then bit-identical to `repro batch --seed N` on the same "
        "requests (and cacheable)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="CacheStore directory for admission warm-starts and eviction "
        "spills (needs --seed to be effective)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="sample plane for every session (see `batch --backend`)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="LRU capacity of the warm session registry (default 32)",
    )

    example = commands.add_parser("example", help="dump a built-in instance")
    example.add_argument(
        "name", choices=("figure2", "running", "intro", "pathological8")
    )

    audit = commands.add_parser(
        "audit",
        help="mass-replication calibration audit of the (ε, δ) contracts",
    )
    audit.add_argument(
        "--replications",
        type=int,
        default=200,
        help="independent seeded estimates per audit cell (default 200; "
        "the acceptance gate runs 2000)",
    )
    audit.add_argument("--epsilon", type=float, default=0.3)
    audit.add_argument("--delta", type=float, default=0.1)
    audit.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed every replication seed is derived from (the whole "
        "audit replays bit-for-bit under one value)",
    )
    audit.add_argument(
        "--profile",
        choices=("small", "full"),
        default="small",
        help="'small' audits the exact-truth Figure 2 grid; 'full' adds "
        "a larger instance with exact and reference truths",
    )
    audit.add_argument(
        "--cells",
        nargs="*",
        default=None,
        metavar="PATTERN",
        help="only audit cells whose target/mode/backend/warmth id "
        "contains one of these substrings (e.g. 'adaptive', "
        "'fig2-mur/fixed/vector')",
    )
    audit.add_argument(
        "--horizon",
        type=int,
        default=512,
        help="draws per adversarial optional-stopping stream (default 512)",
    )
    audit.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable audit artifact here",
    )
    audit.add_argument(
        "--cache-dir",
        default=None,
        help="CacheStore directory for the warm-replay cells (a temporary "
        "directory when omitted)",
    )
    return parser


def _add_generator_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "-g", "--generator", choices=sorted(GENERATORS), default="M_ur"
    )
    subparser.add_argument(
        "--method", choices=("exact", "approx"), default="exact"
    )
    subparser.add_argument("--epsilon", type=float, default=0.2)
    subparser.add_argument("--delta", type=float, default=0.05)
    subparser.add_argument("--seed", type=int, default=None)


def _rng(seed: int | None) -> random.Random:
    return random.Random(seed) if seed is not None else random.Random()


def _parse_answer(raw: str) -> tuple:
    if not raw:
        return ()
    values = []
    for token in raw.split(","):
        token = token.strip()
        values.append(int(token) if token.lstrip("-").isdigit() else token)
    return tuple(values)


def _render_probability(value) -> str:
    if isinstance(value, Fraction):
        return f"{value} (= {float(value):.6f})"
    return f"{value.estimate:.6f} ({value.samples_used} samples, method {value.method})"


def command_inspect(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    print(f"facts: {len(database)}")
    print(f"fds:   {constraints}")
    print(f"class: keys={constraints.all_keys()} "
          f"primary_keys={constraints.is_primary_keys()}")
    print(f"consistent: {constraints.satisfied_by(database)}")
    found = sorted(violations(database, constraints), key=str)
    print(f"violations: {len(found)}")
    for violation in found[:20]:
        print(f"  {violation}")
    if len(found) > 20:
        print(f"  ... and {len(found) - 20} more")
    graph = ConflictGraph.of(database, constraints)
    components = graph.nontrivial_components()
    print(f"conflict components: {len(components)} "
          f"(sizes {sorted(len(c) for c in components)})")
    print(f"conflict-free facts: {len(graph.isolated_nodes())}")
    return 0


def command_answers(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    query = parse_query(args.query)
    rows = operational_consistent_answers(
        database,
        constraints,
        GENERATORS[args.generator],
        query,
        method=args.method,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=_rng(args.seed),
    )
    for row in rows:
        rendered = ", ".join(map(str, row.answer)) if row.answer else "()"
        if isinstance(row.probability, Fraction):
            print(f"{rendered}\t{row.probability}\t{float(row.probability):.6f}")
        else:
            print(f"{rendered}\t~\t{row.probability:.6f}")
    return 0


def command_probability(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    query = parse_query(args.query)
    value = ocqa_probability(
        database,
        constraints,
        GENERATORS[args.generator],
        query,
        _parse_answer(args.answer),
        method=args.method,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=_rng(args.seed),
    )
    print(_render_probability(value))
    return 0


def command_sample(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    rng = _rng(args.seed)
    if args.what == "repair":
        sampler = RepairSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            print(sampler.sample())
    elif args.what == "sequence":
        sampler = SequenceSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            print(sampler.sample())
    else:
        walker = UniformOperationsSampler(database, constraints, args.singleton, rng)
        for _ in range(args.count):
            result = walker.walk()
            print(f"{result.sequence}  ->  {result.repair}  (pi = {result.probability})")
    return 0


def command_count(args: argparse.Namespace) -> int:
    database, constraints = load_instance(args.instance)
    if args.what == "crs":
        value = (
            count_crs1(database, constraints)
            if args.singleton
            else count_crs(database, constraints)
        )
    else:
        value = (
            count_singleton_repairs_primary_keys(database, constraints)
            if args.singleton
            else count_candidate_repairs_primary_keys(database, constraints)
        )
    print(value)
    return 0


def command_batch(args: argparse.Namespace) -> int:
    spec = load_workload_spec(args.workload)
    mode = args.mode if args.mode is not None else spec.mode
    cache_dir = args.cache_dir if args.cache_dir is not None else spec.cache_dir
    backend = args.backend if args.backend is not None else spec.backend
    if cache_dir is not None and args.seed is None:
        print(
            "note: --cache-dir has no effect without --seed "
            "(unseeded runs are not reproducible)",
            file=sys.stderr,
        )
    results = batch_estimate(
        spec.requests,
        seed=args.seed,
        workers=args.workers,
        mode=mode,
        cache_dir=cache_dir,
        backend=backend,
    )
    rows = batch_results_to_rows(results)
    failures = sum(1 for row in rows if "error" in row)
    if args.json:
        json.dump(rows, sys.stdout, indent=2)
        print()
    else:
        for row in rows:
            rendered = ",".join(map(str, row["answer"])) if row["answer"] else "()"
            if "error" in row:
                print(
                    f"{row['instance']}\t{row['generator']}\t{rendered}\t"
                    f"ERROR: {row['error']}"
                )
            else:
                print(
                    f"{row['instance']}\t{row['generator']}\t{rendered}\t"
                    f"{row['estimate']:.6f}\t{row['samples']} samples\t{row['method']}"
                )
    return 1 if failures and not args.allow_errors else 0


def command_serve(args: argparse.Namespace) -> int:
    from .service import serve

    return serve(
        args.host,
        args.port,
        seed=args.seed,
        cache_dir=args.cache_dir,
        backend=args.backend,
        max_sessions=args.max_sessions,
    )


def command_example(args: argparse.Namespace) -> int:
    from .reductions.pathological import pathological_instance
    from .workloads import figure2_database, intro_example

    if args.name == "figure2":
        database, constraints = figure2_database()
    elif args.name == "running":
        from .core import Database, FDSet, Schema, fact, fd

        schema = Schema.from_spec({"R": ["A", "B", "C"]})
        database = Database(
            [
                fact("R", "a1", "b1", "c1"),
                fact("R", "a1", "b2", "c2"),
                fact("R", "a2", "b1", "c2"),
            ],
            schema=schema,
        )
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    elif args.name == "intro":
        scenario = intro_example()
        database, constraints = scenario.database, scenario.constraints
    else:
        instance = pathological_instance(8)
        database, constraints = instance.database, instance.constraints
    json.dump(instance_to_dict(database, constraints), sys.stdout, indent=2)
    print()
    return 0


def command_audit(args: argparse.Namespace) -> int:
    from .calibration import default_targets, render_report, run_audit, write_json

    report = run_audit(
        default_targets(args.profile),
        epsilon=args.epsilon,
        delta=args.delta,
        replications=args.replications,
        base_seed=args.seed,
        cells=args.cells,
        cache_dir=args.cache_dir,
        horizon=args.horizon,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
    )
    print(render_report(report))
    if args.json is not None:
        write_json(report, args.json)
        print(f"audit artifact written to {args.json}", file=sys.stderr)
    return 0 if report.passed else 1


COMMANDS = {
    "inspect": command_inspect,
    "answers": command_answers,
    "probability": command_probability,
    "sample": command_sample,
    "count": command_count,
    "batch": command_batch,
    "serve": command_serve,
    "example": command_example,
    "audit": command_audit,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
