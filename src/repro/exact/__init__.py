"""Exact (exponential-worst-case) engines for OCQA and its restatements."""

from .enumerate import (
    candidate_repairs,
    candidate_repairs_bruteforce,
    complete_sequences,
    count_candidate_repairs,
    repairing_sequences,
)
from .frequencies import rrfreq, rrfreq1, srfreq, srfreq1
from .ocqa import exact_ocqa, exact_operational_consistent_answers
from .state_space import (
    StateSpaceEngine,
    StateSpaceLimit,
    count_complete_sequences,
    count_sequences_with_answer,
    uniform_operations_answer_probability,
)

__all__ = [
    "StateSpaceEngine",
    "StateSpaceLimit",
    "candidate_repairs",
    "candidate_repairs_bruteforce",
    "complete_sequences",
    "count_candidate_repairs",
    "count_complete_sequences",
    "count_sequences_with_answer",
    "exact_ocqa",
    "exact_operational_consistent_answers",
    "repairing_sequences",
    "rrfreq",
    "rrfreq1",
    "srfreq",
    "srfreq1",
    "uniform_operations_answer_probability",
]
