"""Exact OCQA: ``P_{M_Σ,Q}(D, c̄)`` for the six uniform generators.

Dispatches each generator to its most efficient exact engine:

* ``M_ur`` / ``M_ur,1``  → repair relative frequency (Section 5 restatement);
* ``M_us`` / ``M_us,1``  → sequence relative frequency (Section 6 restatement);
* ``M_uo`` / ``M_uo,1``  → state-space dynamic programming over the local
  chain (no frequency restatement exists — Section 7).

A generic fallback materializes the explicit chain for any other
:class:`~repro.chains.generators.MarkovChainGenerator`, honouring the paper's
framing that ``M_Σ`` may be an arbitrary function.
"""

from __future__ import annotations

from fractions import Fraction

from ..chains.generators import (
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from .frequencies import rrfreq, srfreq
from .state_space import uniform_operations_answer_probability


def exact_ocqa(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> Fraction:
    """Exact ``P_{M_Σ,Q}(D, c̄)`` for ``generator``.

    For ``M_ur`` the value equals ``rrfreq`` *provided the canonical
    ordering covers every repair exactly once*, which holds by
    Proposition A.2 regardless of the ordering — so the ordering parameter
    of :class:`UniformRepairs` does not influence the result.
    """
    if isinstance(generator, UniformRepairs):
        return rrfreq(
            database, constraints, query, answer, singleton_only=generator.singleton_only
        )
    if isinstance(generator, UniformSequences):
        return srfreq(
            database, constraints, query, answer, singleton_only=generator.singleton_only
        )
    if isinstance(generator, UniformOperations):
        return uniform_operations_answer_probability(
            database,
            constraints,
            query,
            answer,
            singleton_only=generator.singleton_only,
        )
    from ..chains.local import LocalChainGenerator, local_answer_probability

    if isinstance(generator, LocalChainGenerator):
        # Any local generator admits the state-space DP (Section 7's
        # locality argument does not depend on uniformity).
        return local_answer_probability(database, constraints, generator, query, answer)
    # Arbitrary generator: materialize the explicit chain (tiny instances).
    chain = generator.chain(database, constraints)
    return chain.answer_probability(query, answer)


def exact_operational_consistent_answers(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
) -> dict[tuple, Fraction]:
    """All non-zero ``(c̄, P_{M_Σ,Q}(D, c̄))`` pairs.

    Candidate answer tuples are harvested from ``Q`` evaluated over the
    *original* database — every repair is a subset of ``D``, so no repair can
    produce an answer that ``D`` itself does not.
    """
    candidates = query.answers(database)
    answers: dict[tuple, Fraction] = {}
    for candidate in sorted(candidates, key=repr):
        probability = exact_ocqa(database, constraints, generator, query, candidate)
        if probability > 0:
            answers[candidate] = probability
    return answers
