"""The sequence mapping ``F : S_¬f -> S_f`` of Lemma 7.4, executable.

The heart of Theorem 7.1(2): to lower-bound the probability of keeping a
fact ``f`` under ``M_uo``, each reachable leaf ``s`` that *removes* ``f`` is
mapped to one that *keeps* it:

1. the operation deleting ``f`` is dropped (if ``-f``) or replaced by
   ``-g`` (if ``-{f, g}``);
2. conflicts with ``f`` that the original sequence resolved by deleting
   ``f`` are repaired by appending removals of the (at most ``k``, for
   ``k`` keys per relation) facts of ``s(D)`` conflicting with ``f``.

The lemma's two quantitative claims —
``π(s) <= pol''(|D|)·π(F(s))`` and ``|F⁻¹(s')| <= 2|D| − 1`` —
are checked empirically by the test suite over explicit chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.operations import Operation, justified_operations
from ..core.sequences import RepairingSequence


class MappingError(ValueError):
    """Raised when the mapping's preconditions are not met."""


@dataclass(frozen=True)
class MappedSequence:
    """The image ``F(s)`` with the bookkeeping the proof tracks."""

    original: RepairingSequence
    image: RepairingSequence
    replaced_operation: Operation
    appended_operations: tuple[Operation, ...]


def map_sequence_keeping_fact(
    sequence: RepairingSequence,
    fact: Fact,
    database: Database,
    constraints: FDSet,
) -> MappedSequence:
    """Compute ``F(s)`` for a complete sequence ``s`` that removes ``fact``.

    Follows the proof of Lemma 7.4 (and its Appendix D.2 elaboration): drop
    or shrink the operation removing ``fact``, keep the remaining operations
    in order, then append singleton removals for every fact of the result
    that conflicts with ``fact`` (in deterministic order).
    """
    if not sequence.is_complete(database, constraints):
        raise MappingError("the mapping is defined on complete sequences")
    removing_index = next(
        (
            index
            for index, operation in enumerate(sequence)
            if fact in operation.removed
        ),
        None,
    )
    if removing_index is None:
        raise MappingError(f"{fact} is not removed by the sequence")
    removing_operation = sequence[removing_index]
    trunk: list[Operation] = []
    for index, operation in enumerate(sequence):
        if index == removing_index:
            survivors = operation.removed - {fact}
            if survivors:
                trunk.append(Operation(survivors))
        else:
            trunk.append(operation)
    # Repair the conflicts with ``fact`` that the original resolved by
    # deleting ``fact``: remove every fact of the new result conflicting
    # with it, in deterministic order (the proof allows any order).
    partial = RepairingSequence(tuple(trunk))
    state = partial.apply(database)
    appended: list[Operation] = []
    conflicting = sorted(
        (g for g in state if g != fact and not constraints.pair_satisfies(fact, g)),
        key=str,
    )
    for g in conflicting:
        appended.append(Operation(frozenset((g,))))
    image = RepairingSequence(tuple(trunk) + tuple(appended))
    if not image.is_complete(database, constraints):
        raise MappingError("mapped sequence failed to be complete (bug)")
    if fact not in image.apply(database):
        raise MappingError("mapped sequence does not keep the fact (bug)")
    return MappedSequence(
        original=sequence,
        image=image,
        replaced_operation=removing_operation,
        appended_operations=tuple(appended),
    )


def uo_leaf_probability(
    sequence: RepairingSequence, database: Database, constraints: FDSet
) -> Fraction:
    """``π(s)`` under ``M_uo``: the product of ``1/|Ops|`` along the path."""
    probability = Fraction(1)
    state = database
    for operation in sequence:
        available = justified_operations(state, constraints)
        if operation not in available:
            raise MappingError(f"{operation} is not justified on {state}")
        probability /= len(available)
        state = operation.apply(state)
    return probability


def max_conflicts_with_fact_bound(constraints: FDSet, fact: Fact) -> int:
    """The ``k`` of the proof: keys over ``fact``'s relation bound the
    number of facts a repair can keep in conflict with ``fact``.

    (For non-key FDs no such bound exists — which is exactly why the
    Lemma 7.4 argument, and hence Theorem 7.1(2), does not extend to FDs.)
    """
    if not constraints.all_keys():
        raise MappingError("the conflict bound requires a set of keys")
    return len(constraints.fds_over(fact.relation))
