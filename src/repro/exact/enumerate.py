"""Enumeration of repairing sequences and candidate repairs.

Two routes to ``CORep(D, Σ)``:

* brute force over the sequence tree (tiny instances, ground truth in tests);
* the conflict-graph route: Lemma 5.4 (``|CORep| = |IS(CG)|`` for
  non-trivially connected databases) generalizes component-wise, because
  operations act within conflict-graph components and interleave freely
  across them.  Facts in no conflict survive every repair; each non-trivial
  component independently contributes any of its independent sets (any
  *non-empty* independent set in the singleton-operation case, Lemma E.4).
"""

from __future__ import annotations

from itertools import product
from math import prod
from typing import Iterator

from ..core.conflict_graph import ConflictGraph
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.operations import justified_operations
from ..core.sequences import EMPTY_SEQUENCE, RepairingSequence


def repairing_sequences(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> Iterator[tuple[RepairingSequence, Database]]:
    """All of ``RS(D, Σ)`` with result states, by DFS (exponential; tests only)."""

    def walk(sequence: RepairingSequence, state: Database) -> Iterator:
        yield sequence, state
        for operation in sorted(
            justified_operations(state, constraints, singleton_only), key=lambda o: o.lex_key()
        ):
            yield from walk(sequence.extend(operation), operation.apply(state))

    yield from walk(EMPTY_SEQUENCE, database)


def complete_sequences(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> Iterator[tuple[RepairingSequence, Database]]:
    """``CRS(D, Σ)`` (or ``CRS¹``) with results, by DFS (exponential)."""
    for sequence, state in repairing_sequences(database, constraints, singleton_only):
        if constraints.satisfied_by(state):
            yield sequence, state


def candidate_repairs_bruteforce(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> frozenset[Database]:
    """``CORep`` via full sequence enumeration (ground truth for tests)."""
    return frozenset(state for _, state in complete_sequences(database, constraints, singleton_only))


def candidate_repairs(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> Iterator[Database]:
    """Enumerate ``CORep(D, Σ)`` through the conflict graph, component-wise.

    Every repair is the union of the conflict-free facts with one independent
    set per non-trivial component (non-empty per component when
    ``singleton_only``).  The number of repairs is the product of the
    per-component counts, so enumeration is output-sensitive.
    """
    graph = ConflictGraph.of(database, constraints)
    isolated = graph.isolated_nodes()
    components = graph.nontrivial_components()
    per_component = []
    for component in components:
        subgraph = graph.subgraph(component)
        choices = [
            independent
            for independent in subgraph.independent_sets()
            if independent or not singleton_only
        ]
        per_component.append(choices)
    for selection in product(*per_component):
        chosen = set(isolated)
        for independent in selection:
            chosen |= independent
        yield Database(chosen, schema=database.schema)


def count_candidate_repairs(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> int:
    """``|CORep(D, Σ)|`` (or ``|CORep¹|``) without enumeration.

    Component-wise product of independent-set counts; for a non-trivially
    connected database this is exactly Lemma 5.4 (resp. Lemma E.4).
    """
    graph = ConflictGraph.of(database, constraints)
    factors = []
    for component in graph.nontrivial_components():
        subgraph = graph.subgraph(component)
        count = subgraph.count_independent_sets()
        factors.append(count - 1 if singleton_only else count)
    return prod(factors)
