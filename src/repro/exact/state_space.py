"""Exact engines over the database state space.

The transition structure of a repairing Markov chain out of a node ``s``
depends only on the database ``s(D)``: the justified operations are a
function of the current facts.  Counting complete sequences and summing leaf
probabilities can therefore memoize on ``frozenset(facts)`` instead of
walking the (much larger) sequence tree.  Worst-case cost is exponential in
``|D|`` — as it must be, by the paper's ♯P-hardness results — but small and
medium instances are handled comfortably, and the engines are exact
(:class:`fractions.Fraction` arithmetic throughout).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.operations import justified_operations
from ..core.queries import ConjunctiveQuery


class StateSpaceLimit(RuntimeError):
    """Raised when an exact computation would visit too many states."""


State = frozenset[Fact]


class StateSpaceEngine:
    """Shared memoized machinery for exact computations over one ``(D, Σ)``."""

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        max_states: int = 5_000_000,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.max_states = max_states
        self._children_cache: dict[State, tuple[State, ...]] = {}
        self._consistent_cache: dict[State, bool] = {}

    # -- state helpers ------------------------------------------------------------

    def _as_database(self, state: State) -> Database:
        return Database(state, schema=self.database.schema)

    def is_consistent(self, state: State) -> bool:
        if state not in self._consistent_cache:
            self._consistent_cache[state] = self.constraints.satisfied_by(
                self._as_database(state)
            )
        return self._consistent_cache[state]

    def children(self, state: State) -> tuple[State, ...]:
        """Successor states under each justified operation (one per op)."""
        if state not in self._children_cache:
            if len(self._children_cache) >= self.max_states:
                raise StateSpaceLimit(
                    f"exact engine exceeded {self.max_states} states; "
                    "use the samplers for instances of this size"
                )
            operations = justified_operations(
                self._as_database(state), self.constraints, self.singleton_only
            )
            self._children_cache[state] = tuple(
                state - op.removed for op in sorted(operations)
            )
        return self._children_cache[state]

    # -- counts ---------------------------------------------------------------------

    def count_complete_sequences(
        self, accept: Callable[[Database], bool] | None = None
    ) -> int:
        """``|CRS(D, Σ)|`` (or ``|CRS¹|`` when singleton-only).

        With ``accept`` given, counts only sequences whose *result* database
        satisfies the predicate — the numerator of ``srfreq``.
        """
        cache: dict[State, int] = {}

        def count(state: State) -> int:
            if state in cache:
                return cache[state]
            if self.is_consistent(state):
                if accept is None or accept(self._as_database(state)):
                    result = 1
                else:
                    result = 0
            else:
                result = sum(count(child) for child in self.children(state))
            cache[state] = result
            return result

        return count(frozenset(self.database.facts))

    def candidate_repairs(self) -> frozenset[Database]:
        """``CORep(D, Σ)`` (or ``CORep¹``): reachable consistent states."""
        cache: dict[State, frozenset[State]] = {}

        def reachable(state: State) -> frozenset[State]:
            if state in cache:
                return cache[state]
            if self.is_consistent(state):
                result = frozenset((state,))
            else:
                result = frozenset(
                    final for child in self.children(state) for final in reachable(child)
                )
            cache[state] = result
            return result

        return frozenset(
            self._as_database(state) for state in reachable(frozenset(self.database.facts))
        )

    def uniform_operations_probability(
        self, accept: Callable[[Database], bool]
    ) -> Fraction:
        """``P_{M_uo,Q}`` mass of leaves whose result satisfies ``accept``.

        Uses the locality of ``M_uo``: from state ``D'`` each of the ``k``
        justified operations is taken with probability ``1/k``, so the
        accepted-leaf mass satisfies
        ``h(D') = [accept]`` at consistent states and
        ``h(D') = (1/k) Σ h(child)`` otherwise.
        """
        cache: dict[State, Fraction] = {}

        def mass(state: State) -> Fraction:
            if state in cache:
                return cache[state]
            if self.is_consistent(state):
                result = Fraction(1) if accept(self._as_database(state)) else Fraction(0)
            else:
                children = self.children(state)
                share = Fraction(1, len(children))
                result = sum((share * mass(child) for child in children), Fraction(0))
            cache[state] = result
            return result

        return mass(frozenset(self.database.facts))

    def uniform_operations_repair_distribution(self) -> dict[Database, Fraction]:
        """``[[D]]_{M_uo}``: probability of each operational repair.

        Forward dynamic programming over states: total inbound probability
        mass per state, pushed uniformly across justified operations.
        Useful for small instances and for validating the samplers.
        """
        order: list[State] = []
        seen: set[State] = set()

        def topological(state: State) -> None:
            if state in seen:
                return
            seen.add(state)
            if not self.is_consistent(state):
                for child in self.children(state):
                    topological(child)
            order.append(state)

        start = frozenset(self.database.facts)
        topological(start)
        mass: dict[State, Fraction] = {state: Fraction(0) for state in order}
        mass[start] = Fraction(1)
        for state in reversed(order):  # reversed post-order = topological order
            inbound = mass[state]
            if inbound == 0 or self.is_consistent(state):
                continue
            children = self.children(state)
            share = inbound / len(children)
            for child in children:
                mass[child] += share
        return {
            self._as_database(state): probability
            for state, probability in mass.items()
            if probability > 0 and self.is_consistent(state)
        }

    def visited_states(self) -> int:
        """Number of distinct states expanded so far (for scaling benches)."""
        return len(self._children_cache)


# -- module-level conveniences -------------------------------------------------------


def count_complete_sequences(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> int:
    """``|CRS(D, Σ)|`` / ``|CRS¹(D, Σ)|`` by memoized DP."""
    return StateSpaceEngine(database, constraints, singleton_only).count_complete_sequences()


def count_sequences_with_answer(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
    singleton_only: bool = False,
) -> int:
    """``|{s ∈ CRS : c̄ ∈ Q(s(D))}|`` — the ``srfreq`` numerator."""
    engine = StateSpaceEngine(database, constraints, singleton_only)
    return engine.count_complete_sequences(accept=lambda db: query.entails(db, answer))


def uniform_operations_answer_probability(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
    singleton_only: bool = False,
) -> Fraction:
    """Exact ``P_{M_uo,Q}(D, c̄)`` (or the ``M_uo,1`` variant)."""
    engine = StateSpaceEngine(database, constraints, singleton_only)
    return engine.uniform_operations_probability(lambda db: query.entails(db, answer))
