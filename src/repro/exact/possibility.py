"""Polynomial zero-tests: is ``P_{M_Σ,Q}(D, c̄) > 0`` at all?

Every positivity lower bound in the paper is conditional — "whenever the
value is positive".  The positivity condition itself is polynomial-time
checkable: ``P > 0`` (under any of the six uniform generators) iff some
candidate repair entails ``Q(c̄)``, iff there is a homomorphism ``h`` from
``Q`` into ``D`` with ``h(x̄) = c̄`` whose image ``h(Q)`` is conflict-free.

Why that suffices: a conflict-free image is an independent set of the
conflict graph, its per-component pieces extend to independent sets of the
components, and (Lemma 5.4 / its component-wise form) every such choice is
realized by some candidate repair — one reachable under every uniform
generator, since all complete sequences receive positive probability under
``M_us``/``M_uo`` and every repair keeps a canonical sequence under
``M_ur``.  For the singleton variants the extension must also keep each
non-trivial component non-empty (Lemma E.4), which holding a non-empty image
piece already guarantees — and components untouched by the image can keep
any single fact.

The FPRAS wrappers use this to certify zeros without spending samples.
"""

from __future__ import annotations

from ..core.conflict_graph import ConflictGraph
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.queries import ConjunctiveQuery


def consistent_image_exists(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> bool:
    """Whether some homomorphism with ``h(x̄) = c̄`` has ``h(Q) |= Σ``.

    Worst-case exponential in ``|Q|`` (query evaluation), polynomial in
    ``||D||`` — i.e. polynomial in data complexity, which is the paper's
    measure.
    """
    if len(answer) != len(query.answer_variables):
        return False
    fixed = {}
    for variable, constant in zip(query.answer_variables, answer):
        if variable in fixed and fixed[variable] != constant:
            return False
        fixed[variable] = constant
    for homomorphism in query.homomorphisms(database, fixed=fixed):
        image = query.image(homomorphism)
        if image_is_consistent(image, constraints):
            return True
    return False


def answer_is_possible(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> bool:
    """``P_{M_Σ,Q}(D, c̄) > 0`` for every uniform generator — the zero-test."""
    return consistent_image_exists(database, constraints, query, answer)


def image_is_consistent(image: frozenset[Fact], constraints: FDSet) -> bool:
    """Whether a fact set is pairwise conflict-free (``h(Q) |= Σ``).

    Shared by the zero-tests here and the estimation engine's witness
    cache, so the two can never drift apart.
    """
    facts = sorted(image, key=str)
    for index, f in enumerate(facts):
        for g in facts[index + 1 :]:
            if not constraints.pair_satisfies(f, g):
                return False
    return True


def witnessing_repair(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> Database | None:
    """A candidate repair entailing ``Q(c̄)``, or ``None`` if impossible.

    Extends a conflict-free image to a full repair: keep the image, keep all
    conflict-free facts, and greedily extend each non-trivial component with
    compatible facts (maximality is not required of operational repairs, but
    the greedy extension produces a natural witness).
    """
    if len(answer) != len(query.answer_variables):
        return None
    fixed = dict(zip(query.answer_variables, answer))
    graph = ConflictGraph.of(database, constraints)
    for homomorphism in query.homomorphisms(database, fixed=fixed):
        image = query.image(homomorphism)
        if not image <= database.facts:
            continue
        if not image_is_consistent(image, constraints):
            continue
        chosen = set(image) | set(graph.isolated_nodes())
        for candidate in database.sorted_facts():
            if candidate in chosen:
                continue
            if all(
                constraints.pair_satisfies(candidate, existing)
                for existing in chosen
            ):
                chosen.add(candidate)
        return Database(chosen, schema=database.schema)
    return None
