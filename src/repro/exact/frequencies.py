"""Exact relative frequencies: ``rrfreq``, ``srfreq`` and singleton variants.

Section 5 restates ``OCQA(Σ, M_ur, Q)`` as computing the *repair relative
frequency* — the fraction of candidate repairs entailing the answer — and
Section 6 restates ``OCQA(Σ, M_us, Q)`` as the *sequence relative frequency*.
Appendix E introduces the singleton-operation counterparts ``rrfreq¹`` and
``srfreq¹``.  All four are computed here exactly, as fractions.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from .enumerate import candidate_repairs
from .state_space import StateSpaceEngine


def rrfreq(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
    singleton_only: bool = False,
) -> Fraction:
    """``rrfreq_{Σ,Q}(D, c̄)``: fraction of ``CORep`` entailing ``Q(c̄)``.

    Enumerates candidate repairs component-wise (output-sensitive); this is
    exponential in general, matching Theorem 5.1(1)'s ♯P-hardness.
    """
    total = 0
    entailing = 0
    for repair in candidate_repairs(database, constraints, singleton_only):
        total += 1
        if query.entails(repair, answer):
            entailing += 1
    if total == 0:
        raise ValueError("CORep is empty — this cannot happen for FD constraints")
    return Fraction(entailing, total)


def rrfreq1(
    database: Database, constraints: FDSet, query: ConjunctiveQuery, answer: tuple = ()
) -> Fraction:
    """``rrfreq¹``: the singleton-operation repair relative frequency."""
    return rrfreq(database, constraints, query, answer, singleton_only=True)


def srfreq(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
    singleton_only: bool = False,
) -> Fraction:
    """``srfreq_{Σ,Q}(D, c̄)``: fraction of ``CRS`` leading to an entailing repair."""
    engine = StateSpaceEngine(database, constraints, singleton_only)
    total = engine.count_complete_sequences()
    if total == 0:
        raise ValueError("CRS is empty — this cannot happen for FD constraints")
    entailing = engine.count_complete_sequences(
        accept=lambda db: query.entails(db, answer)
    )
    return Fraction(entailing, total)


def srfreq1(
    database: Database, constraints: FDSet, query: ConjunctiveQuery, answer: tuple = ()
) -> Fraction:
    """``srfreq¹``: the singleton-operation sequence relative frequency."""
    return srfreq(database, constraints, query, answer, singleton_only=True)
