"""Classical (declarative) CQA baseline.

The framework the paper positions against (Arenas–Bertossi–Chomicki [1]):
a *subset repair* is a maximal consistent subset of ``D`` — equivalently, a
maximal independent set of the conflict graph — and the *consistent answers*
are those entailed by every repair.  The refined notion used by the
approximate-CQA line ([3, 4, 19]) is the *relative frequency*: the fraction
of subset repairs entailing an answer.  Both are implemented exactly here,
exponential in the worst case, for the operational-vs-classical comparison
experiments (E16).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterator

from ..core.conflict_graph import ConflictGraph
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery


def subset_repairs(database: Database, constraints: FDSet) -> Iterator[Database]:
    """All classical subset repairs (maximal consistent subsets of ``D``).

    Enumerated component-wise over the conflict graph: conflict-free facts
    always survive, and each non-trivial component contributes one of its
    maximal independent sets.
    """
    graph = ConflictGraph.of(database, constraints)
    isolated = graph.isolated_nodes()
    per_component = [
        list(graph.subgraph(component).maximal_independent_sets())
        for component in graph.nontrivial_components()
    ]
    for selection in product(*per_component):
        chosen = set(isolated)
        for independent in selection:
            chosen |= independent
        yield Database(chosen, schema=database.schema)


def count_subset_repairs(database: Database, constraints: FDSet) -> int:
    """``|SRep(D, Σ)|`` as the product of per-component maximal-IS counts."""
    graph = ConflictGraph.of(database, constraints)
    total = 1
    for component in graph.nontrivial_components():
        total *= sum(1 for _ in graph.subgraph(component).maximal_independent_sets())
    return total


def is_consistent_answer(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> bool:
    """Classical certain answer: entailed by *every* subset repair."""
    return all(
        query.entails(repair, answer) for repair in subset_repairs(database, constraints)
    )


def consistent_answers(
    database: Database, constraints: FDSet, query: ConjunctiveQuery
) -> frozenset[tuple]:
    """All certain answers to ``query`` over the subset repairs."""
    repairs = list(subset_repairs(database, constraints))
    if not repairs:
        return frozenset()
    certain = set(query.answers(repairs[0]))
    for repair in repairs[1:]:
        certain &= query.answers(repair)
        if not certain:
            break
    return frozenset(certain)


def classical_relative_frequency(
    database: Database,
    constraints: FDSet,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> Fraction:
    """Fraction of subset repairs entailing ``Q(c̄)`` (the [3, 4] notion)."""
    total = 0
    entailing = 0
    for repair in subset_repairs(database, constraints):
        total += 1
        if query.entails(repair, answer):
            entailing += 1
    if total == 0:
        raise ValueError("a database always has at least one subset repair")
    return Fraction(entailing, total)
