"""High-level operational-CQA API.

The entry points a downstream user works with: given a database, a set of
FDs, a uniform generator and a query, compute exact probabilities, FPRAS
estimates, or the full operational-consistent-answer table.  This is the
layer the examples and benches are written against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..approx.fpras import fpras_ocqa
from ..approx.montecarlo import EstimateResult
from ..engine.session import EstimationSession
from ..chains.generators import MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.queries import ConjunctiveQuery
from ..exact.ocqa import exact_ocqa, exact_operational_consistent_answers


@dataclass(frozen=True)
class AnswerProbability:
    """One row of an operational-consistent-answer table."""

    answer: tuple
    probability: Fraction | float
    exact: bool


def ocqa_probability(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    method: str = "exact",
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: random.Random | None = None,
) -> Fraction | EstimateResult:
    """``P_{M_Σ,Q}(D, c̄)`` — exact (``method="exact"``) or via the FPRAS.

    The exact route is exponential in the worst case (Theorems 5.1(1),
    6.1(1), 7.1(1)); the approximate route carries the (ε, δ) guarantee of
    the corresponding positive theorem, and raises
    :class:`~repro.approx.fpras.FPRASUnavailable` outside its scope.
    """
    if method == "exact":
        return exact_ocqa(database, constraints, generator, query, answer)
    if method == "approx":
        return fpras_ocqa(
            database,
            constraints,
            generator,
            query,
            answer,
            epsilon=epsilon,
            delta=delta,
            rng=rng,
        )
    raise ValueError(f"unknown method {method!r}; use 'exact' or 'approx'")


def operational_consistent_answers(
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    method: str = "exact",
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: random.Random | None = None,
    max_samples: int | None = None,
) -> list[AnswerProbability]:
    """The operational consistent answers with non-zero probability.

    Candidate tuples come from evaluating ``Q`` over ``D`` (repairs are
    subsets of ``D``, so nothing outside ``Q(D)`` can be an answer).
    Rows are sorted by decreasing probability, then by answer.

    The approximate route scores all candidates against one shared sample
    pool (an :class:`~repro.engine.session.EstimationSession` on the
    interned-fact kernel: the pool holds id bitmasks, one ``int`` per
    draw, and candidates are checked with integer subset tests), so the
    whole table costs a single sampling pass; each row still carries its
    own (ε, δ) guarantee.  The pool retains its draws for replay, so when a
    tiny positivity bound pushes the estimator onto the adaptive stopping
    rule, pass ``max_samples`` to bound the pass (and the memory).
    """
    if method == "exact":
        table = exact_operational_consistent_answers(database, constraints, generator, query)
        rows = [
            AnswerProbability(answer=answer, probability=probability, exact=True)
            for answer, probability in table.items()
        ]
    elif method == "approx":
        session = EstimationSession(database, constraints, generator)
        pool = session.pool(rng)
        rows = []
        for candidate in sorted(query.answers(database), key=repr):
            result = session.estimate_pooled(
                pool,
                query,
                candidate,
                epsilon=epsilon,
                delta=delta,
                max_samples=max_samples,
            )
            if result.estimate > 0:
                rows.append(
                    AnswerProbability(
                        answer=candidate, probability=result.estimate, exact=False
                    )
                )
    else:
        raise ValueError(f"unknown method {method!r}; use 'exact' or 'approx'")
    return sorted(rows, key=lambda row: (-float(row.probability), repr(row.answer)))
