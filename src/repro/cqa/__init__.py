"""Query answering layers: the operational API and the classical baseline."""

from .answers import AnswerProbability, ocqa_probability, operational_consistent_answers
from .classical import (
    classical_relative_frequency,
    consistent_answers,
    count_subset_repairs,
    is_consistent_answer,
    subset_repairs,
)

__all__ = [
    "AnswerProbability",
    "classical_relative_frequency",
    "consistent_answers",
    "count_subset_repairs",
    "is_consistent_answer",
    "ocqa_probability",
    "operational_consistent_answers",
    "subset_repairs",
]
