"""Runtime lock-order sanitizer, in the style of the kernel's lockdep.

The service plane holds locks in eight modules (registry, batching,
sharding, metrics, store, cache, loadtest, vectorized shm).  A deadlock
needs two locks taken in opposite orders on two threads *at the same
time* — a coincidence no unit test reliably produces.  Lockdep removes
the coincidence: every lock belongs to a *class* keyed by its creation
site, every acquisition while other locks are held adds ordering edges
between classes, and a cycle in that graph is reported even though the
two halves of the inversion executed minutes apart on one thread.

:func:`lockdep_guard` monkeypatches ``threading.Lock``/``threading.RLock``
so locks created inside the guarded block come out wrapped in
:class:`TrackedLock`; the wrapper delegates everything to the real lock
(``Condition`` and the rest of the stdlib keep working) and reports
acquire/release to a :class:`LockDep` state.  Violations are *recorded*
by default — production code paths are never perturbed — and the pytest
fixtures assert the record is empty at teardown.
"""

from __future__ import annotations

import _thread
import contextlib
import os
import sys
import threading
from collections.abc import Iterator

__all__ = [
    "LockDep",
    "LockOrderViolation",
    "TrackedLock",
    "lockdep_guard",
]


class LockOrderViolation(AssertionError):
    """A cycle in the recorded lock-ordering graph (potential deadlock)."""


class LockDep:
    """The acquisition graph: per-thread held stacks + class ordering edges.

    Lock classes are creation sites (``file:line``); an edge A → B means
    some thread acquired a B-class lock while holding an A-class lock.
    A cycle means two code paths disagree about the order — the AB/BA
    pattern that deadlocks under the right interleaving.
    """

    def __init__(self) -> None:
        # Raw _thread lock: must never itself be wrapped or the sanitizer
        # would recurse into its own bookkeeping.
        self._mutex = _thread.allocate_lock()
        #: thread ident -> stack of (class_key, instance_id) currently held.
        self._held: dict[int, list[tuple[str, int]]] = {}
        #: class_key -> set of class_keys acquired while it was held.
        self._edges: dict[str, set[str]] = {}
        #: Human-readable violation reports, in detection order.
        self.violations: list[str] = []

    def note_acquire(self, class_key: str, instance_id: int) -> None:
        """Record one successful acquire on the calling thread."""
        ident = _thread.get_ident()
        with self._mutex:
            stack = self._held.setdefault(ident, [])
            for held_key, held_id in stack:
                if held_id == instance_id:
                    # Reentrant reacquire of the same RLock: no ordering.
                    continue
                edges = self._edges.setdefault(held_key, set())
                if class_key not in edges:
                    edges.add(class_key)
                    cycle = self._path(class_key, held_key)
                    if cycle is not None:
                        self.violations.append(
                            "lock-order inversion: "
                            + " -> ".join([held_key, *cycle])
                            + f" closes a cycle (edge {held_key} -> {class_key} "
                            "just observed)"
                        )
            stack.append((class_key, instance_id))

    def note_release(self, class_key: str, instance_id: int) -> None:
        """Drop the most recent matching entry from the held stack."""
        ident = _thread.get_ident()
        with self._mutex:
            stack = self._held.get(ident, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == (class_key, instance_id):
                    del stack[index]
                    break

    def _path(self, start: str, target: str) -> list[str] | None:
        """DFS path ``start -> ... -> target`` in the edge graph, if any."""
        if start == target:
            return [start]
        seen = {start}
        frontier: list[tuple[str, list[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            for following in self._edges.get(node, ()):  # noqa: B007
                if following == target:
                    return [*path, following]
                if following not in seen:
                    seen.add(following)
                    frontier.append((following, [*path, following]))
        return None

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderViolation` if any cycle was recorded."""
        if self.violations:
            raise LockOrderViolation("\n".join(self.violations))


class TrackedLock:
    """A delegating wrapper reporting acquire/release to a :class:`LockDep`.

    Wraps either a ``Lock`` or an ``RLock``; everything not intercepted
    (``locked``, ``_is_owned``, …) is forwarded so ``Condition`` and
    other stdlib users behave identically.
    """

    def __init__(self, state: LockDep, inner, site: str):
        self._state = state
        self._inner = inner
        self._site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The wrapper *is* the hygiene layer: callers hold the with/
        # try-finally discipline, this method only observes.
        acquired = self._inner.acquire(blocking, timeout)  # repro-lint: disable=RL006
        if acquired:
            self._state.note_acquire(self._site, id(self))
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._state.note_release(self._site, id(self))

    def __enter__(self) -> bool:
        # Wrapper-internal delegation; the caller's ``with`` is the guard.
        return self.acquire()  # repro-lint: disable=RL006

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock site={self._site} inner={self._inner!r}>"


def _creation_site() -> str:
    """``file:line`` of the frame that called the lock factory."""
    frame = sys._getframe(2)
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


@contextlib.contextmanager
def lockdep_guard() -> Iterator[LockDep]:
    """Wrap ``threading.Lock``/``RLock`` construction inside the block.

    Locks created while the guard is active are tracked; locks created
    before it are invisible (modules instantiate their locks per object,
    so tests that build their subjects inside the guard get coverage).
    Violations are recorded on the yielded :class:`LockDep`, never
    raised mid-flight — call :meth:`LockDep.assert_clean` (the pytest
    fixtures do) after the block.
    """
    state = LockDep()
    real_lock, real_rlock = threading.Lock, threading.RLock

    def tracked_lock():
        return TrackedLock(state, real_lock(), _creation_site())

    def tracked_rlock():
        return TrackedLock(state, real_rlock(), _creation_site())

    threading.Lock = tracked_lock
    threading.RLock = tracked_rlock
    try:
        yield state
    finally:
        threading.Lock = real_lock
        threading.RLock = real_rlock
