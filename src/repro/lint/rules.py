"""The repo's contract rules (RL001–RL008).

Each rule encodes one invariant the reproduction depends on but that no
unit test can watch globally.  The ``contract`` line on each class is
the authoritative statement; ``docs/LINT.md`` carries the catalog with
examples and the suppression policy.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterable

from .engine import Finding, LintContext, Rule

__all__ = [
    "SeedDiscipline",
    "WallClockBan",
    "CrashSafety",
    "FsCommitDiscipline",
    "MetricsNaming",
    "LockHygiene",
    "ExportDocParity",
    "SubprocessStartMethod",
    "ALL_RULES",
]


def _calls(ctx: LintContext) -> Iterable[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


def _bare(origin: str | None) -> str:
    """Strip relative-import dots so suffix checks see plain names."""
    return (origin or "").lstrip(".")


class SeedDiscipline(Rule):
    """RL001 — every RNG must be seeded from an explicit argument."""

    id = "RL001"
    title = "seed-discipline"
    contract = (
        "No unseeded random.Random() / np.random.default_rng() and no global "
        "random.seed() inside src/repro — seeds must flow from explicit "
        "arguments, group_seed_for, or philox_key, or replay breaks."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for call in _calls(ctx):
            origin = _bare(ctx.resolve(call.func))
            if origin in {"random.Random", "numpy.random.default_rng"}:
                if not call.args and not call.keywords:
                    yield self.finding(
                        ctx,
                        call,
                        f"unseeded {origin}() — derive the seed from an explicit "
                        "argument, group_seed_for, or philox_key",
                    )
            elif origin == "random.seed":
                yield self.finding(
                    ctx,
                    call,
                    "global random.seed() reseeds the process-wide RNG and "
                    "couples unrelated call sites — construct a local "
                    "random.Random(seed) instead",
                )


class WallClockBan(Rule):
    """RL002 — deterministic planes must not read wall clocks."""

    id = "RL002"
    title = "wall-clock-ban"
    contract = (
        "time.time() / datetime.now() are forbidden outside the service "
        "plane (server, metrics, loadtest) — the engine and calibration "
        "planes must be replayable, and wall-clock reads are hidden inputs."
    )

    #: Modules whose job is to observe real time (latency, uptime, load).
    allowlist = (
        "service/server.py",
        "service/metrics.py",
        "service/loadtest.py",
    )

    banned = {
        "time.time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.relpath.endswith(self.allowlist):
            return
        for call in _calls(ctx):
            origin = _bare(ctx.resolve(call.func))
            if origin in self.banned:
                yield self.finding(
                    ctx,
                    call,
                    f"{origin}() reads the wall clock in a deterministic "
                    "plane — pass timestamps in explicitly, or use "
                    "time.monotonic()/perf_counter() for durations",
                )


class CrashSafety(Rule):
    """RL003 — broad handlers on crash paths must re-raise."""

    id = "RL003"
    title = "crash-safety"
    contract = (
        "except Exception / bare except in any module importing "
        "engine.store or engine.fsfault must contain a raise — CrashPoint "
        "is a BaseException precisely so broad handlers cannot swallow a "
        "simulated crash, and a bare except would."
    )

    #: Names whose import puts a module on the CrashPoint path.
    _store_names = frozenset(
        {
            "store",
            "fsfault",
            "CacheStore",
            "CacheEntry",
            "CacheFormatError",
            "CacheSerializationError",
            "StoreErrorLog",
            "fsck_store",
            "CrashPoint",
            "FaultPlan",
            "FaultyOps",
            "FsOps",
            "torture_writer",
        }
    )

    def _on_crash_path(self, ctx: LintContext) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] in {"store", "fsfault"}:
                        return True
            elif isinstance(node, ast.ImportFrom):
                module = _bare("." * node.level + (node.module or ""))
                tail = module.split(".")[-1] if module else ""
                if tail in {"store", "fsfault"}:
                    return True
                if tail in {"engine", ""} or module == "":
                    if any(alias.name in self._store_names for alias in node.names):
                        return True
        return False

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler, ctx: LintContext) -> bool:
        if handler.type is None:
            return True
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in nodes:
            if _bare(ctx.resolve(node)) in {"Exception", "BaseException"}:
                return True
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(inner, ast.Raise)
            for stmt in handler.body
            for inner in ast.walk(stmt)
        )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not self._on_crash_path(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node, ctx) and not self._reraises(node):
                caught = "bare except" if node.type is None else "broad except"
                yield self.finding(
                    ctx,
                    node,
                    f"{caught} on a CrashPoint path without a raise — narrow "
                    "the exception types or re-raise so simulated crashes "
                    "keep propagating",
                )


class FsCommitDiscipline(Rule):
    """RL004 — store commit paths go through the FsOps shim."""

    id = "RL004"
    title = "fs-commit-discipline"
    contract = (
        "engine/store.py must route filesystem mutations and entry reads "
        "through the fsfault.FsOps shim (ops.write/fsync/replace/unlink/"
        "read_bytes) — direct open/os.* calls are invisible to fault "
        "plans and crash-torture."
    )

    direct = {
        "open",
        "os.replace",
        "os.rename",
        "os.fsync",
        "os.unlink",
        "os.remove",
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if pathlib.PurePosixPath(ctx.relpath).name != "store.py":
            return
        for call in _calls(ctx):
            origin = _bare(ctx.resolve(call.func))
            if origin in self.direct:
                yield self.finding(
                    ctx,
                    call,
                    f"direct {origin}() in the store — route through the "
                    "fsfault.FsOps shim so fault plans and crash-torture "
                    "see the operation",
                )


class MetricsNaming(Rule):
    """RL005 — metric-name suffixes are load-bearing."""

    id = "RL005"
    title = "metrics-naming"
    contract = (
        "Counter names end _total, Histogram base names end _seconds, and "
        "Gauge names must not end _total/_count/_sum/_bucket — the "
        "loadtest restart-aware monotonicity checker selects series by "
        "suffix, so a misnamed metric is silently unchecked."
    )

    def _name_argument(self, call: ast.Call) -> ast.Constant | None:
        """The literal name argument node (findings anchor on its line)."""
        if call.args and isinstance(call.args[0], ast.Constant):
            if isinstance(call.args[0].value, str):
                return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    return keyword.value
        return None

    def _kind(self, ctx: LintContext, call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Attribute) and call.func.attr in {
            "counter",
            "gauge",
            "histogram",
        }:
            return call.func.attr
        origin = _bare(ctx.resolve(call.func))
        head, _, tail = origin.rpartition(".")
        if tail in {"Counter", "Gauge", "Histogram"} and "metrics" in head:
            return tail.lower()
        return None

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for call in _calls(ctx):
            kind = self._kind(ctx, call)
            if kind is None:
                continue
            node = self._name_argument(call)
            if node is None:
                continue
            name = node.value
            if kind == "counter" and not name.endswith("_total"):
                yield self.finding(
                    ctx,
                    node,
                    f"counter {name!r} must end in _total — the loadtest "
                    "monotonicity checker keys on the suffix",
                )
            elif kind == "histogram" and not name.endswith("_seconds"):
                yield self.finding(
                    ctx,
                    node,
                    f"histogram {name!r} must have a _seconds base name so "
                    "its _bucket/_count/_sum series are suffix-selectable",
                )
            elif kind == "gauge" and name.endswith(
                ("_total", "_count", "_sum", "_bucket")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"gauge {name!r} ends in a counter-family suffix — the "
                    "monotonicity checker would treat this resettable value "
                    "as a counter",
                )


class LockHygiene(Rule):
    """RL006 — locks are held via ``with``, or try/finally at worst."""

    id = "RL006"
    title = "lock-hygiene"
    contract = (
        "Locks are acquired via with; a bare .acquire() is allowed only "
        "inside (or immediately before) a try whose finally releases — "
        "anything else leaks the lock on the first exception."
    )

    @staticmethod
    def _releases(block: list[ast.stmt]) -> bool:
        return any(
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "release"
            for stmt in block
            for inner in ast.walk(stmt)
        )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for call in _calls(ctx):
            if not (
                isinstance(call.func, ast.Attribute) and call.func.attr == "acquire"
            ):
                continue
            stmt = ctx.statement_of(call)
            if stmt is None:
                continue
            guarded = any(
                isinstance(ancestor, ast.Try) and self._releases(ancestor.finalbody)
                for ancestor in [stmt, *ctx.ancestors(stmt)]
            )
            if not guarded:
                sibling = ctx.next_sibling(stmt)
                guarded = isinstance(sibling, ast.Try) and self._releases(
                    sibling.finalbody
                )
            if not guarded:
                yield self.finding(
                    ctx,
                    call,
                    "bare .acquire() without a releasing try/finally — use "
                    "'with lock:' so exceptions cannot leak the lock",
                )


class ExportDocParity(Rule):
    """RL007 — every ``__all__`` export appears in docs/API.md."""

    id = "RL007"
    title = "export-doc-parity"
    contract = (
        "Every name in a module's __all__ must appear (backticked) in "
        "docs/API.md — the static complement of test_api_doc.py, catching "
        "exports added without documentation."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.api_doc_text is None:
            return
        for node in ctx.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not (isinstance(target, ast.Name) and target.id == "__all__"):
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            try:
                names = list(ast.literal_eval(value))
            except (ValueError, SyntaxError):
                continue
            for name in names:
                if f"`{name}`" not in ctx.api_doc_text:
                    yield self.finding(
                        ctx,
                        node,
                        f"__all__ export {name!r} is not documented in "
                        "docs/API.md",
                    )


class SubprocessStartMethod(Rule):
    """RL008 — multiprocessing always names its start method."""

    id = "RL008"
    title = "subprocess-start-method"
    contract = (
        "No bare multiprocessing.Pool/Process — use "
        "multiprocessing.get_context('spawn'/'fork') explicitly, because "
        "the platform default flips between fork and spawn and the "
        "difference has produced real bugs (PR 5/PR 8)."
    )

    banned = {"multiprocessing.Pool", "multiprocessing.Process"}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for call in _calls(ctx):
            origin = _bare(ctx.resolve(call.func))
            if origin in self.banned:
                yield self.finding(
                    ctx,
                    call,
                    f"bare {origin}() inherits the platform start method — "
                    "call multiprocessing.get_context(...) and build the "
                    "pool/process from the context",
                )


#: The default rule set, in id order.
ALL_RULES: tuple[Rule, ...] = (
    SeedDiscipline(),
    WallClockBan(),
    CrashSafety(),
    FsCommitDiscipline(),
    MetricsNaming(),
    LockHygiene(),
    ExportDocParity(),
    SubprocessStartMethod(),
)
