"""AST rule framework behind ``python -m repro lint``.

The repo's correctness story rests on conventions the test suite can
only probe indirectly: seeds must be content-derived, ``CrashPoint``
must sail through exception handlers, commit-path filesystem calls must
route through the :class:`~repro.engine.fsfault.FsOps` shim, metric
names carry load-bearing suffixes.  This module supplies the machinery
that checks those conventions mechanically on every commit: a
:class:`LintContext` wrapping one parsed module (parent links, import
origins, suppression table), a :class:`Rule` base class, and
:func:`run_lint` which walks a source tree and returns the surviving
:class:`Finding` list.

Suppressions are per-line comments::

    value = time.time()  # repro-lint: disable=RL002 -- mtime comparison

A suppression on a comment-only line applies to the following line as
well, so long justifications can sit above the offending statement.
Every suppression should carry a justification after the rule list —
the lint pass does not parse it, reviewers do.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re
from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "iter_python_files",
    "run_lint",
    "render_text",
    "render_json",
]

#: ``# repro-lint: disable=RL001,RL006 -- justification`` — the captured
#: group is the comma-joined rule list; everything after it is prose.
_SUPPRESSION = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,]+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """The ``path:line: RULE: message`` text-reporter form."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-reporter form (stable key order via dataclass fields)."""
        return dataclasses.asdict(self)


class LintContext:
    """One parsed module plus the derived views every rule needs.

    ``relpath`` is the POSIX-style path relative to the lint root —
    rules that scope themselves to specific modules (``engine/store.py``
    commit paths, the service-plane wall-clock allowlist) match on its
    suffix so fixture trees laid out under ``tmp_path`` behave exactly
    like the real package.
    """

    def __init__(
        self,
        path: str,
        relpath: str,
        source: str,
        api_doc_text: str | None = None,
    ):
        self.path = str(path)
        self.relpath = relpath
        self.source = source
        self.api_doc_text = api_doc_text
        self.tree = ast.parse(source, filename=self.path)
        self.lines = source.splitlines()
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressed = self._suppression_table()
        self.origins = self._import_origins()

    # -- structure -----------------------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from innermost outward."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def statement_of(self, node: ast.AST) -> ast.stmt | None:
        """The nearest enclosing statement (``node`` itself if one)."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self._parents.get(current)
        return current

    def next_sibling(self, stmt: ast.stmt) -> ast.stmt | None:
        """The statement following ``stmt`` in its enclosing block."""
        parent = self._parents.get(stmt)
        if parent is None:
            return None
        for field in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, field, None)
            if isinstance(block, list) and stmt in block:
                index = block.index(stmt)
                if index + 1 < len(block):
                    following = block[index + 1]
                    return following if isinstance(following, ast.stmt) else None
                return None
        return None

    # -- name resolution -----------------------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` chain, else ``None``.

        Local aliases are unfolded through the module's imports:
        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``, and
        ``datetime.now`` to ``datetime.datetime.now`` under
        ``from datetime import datetime``.  Relative imports keep their
        leading dots; callers compare with :func:`str.lstrip`/suffixes.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.origins.get(node.id, node.id))
        return ".".join(reversed(parts))

    def _import_origins(self) -> dict[str, str]:
        origins: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        origins[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        origins[head] = head
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    bound = alias.asname or alias.name
                    origins[bound] = f"{module}.{alias.name}" if module else alias.name
        return origins

    # -- suppressions --------------------------------------------------------------------

    def _suppression_table(self) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESSION.search(text)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            table[lineno] = table.get(lineno, frozenset()) | rules
            if text.lstrip().startswith("#"):
                # A comment-only suppression covers the next line too.
                table[lineno + 1] = table.get(lineno + 1, frozenset()) | rules
        return table

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled on ``line`` (or via ``all``)."""
        active = self.suppressed.get(line, frozenset())
        return rule in active or "all" in active


class Rule:
    """Base class for one lint rule; subclasses set the class fields.

    ``contract`` is the one-line statement of the repo invariant the
    rule protects — it feeds ``--list-rules`` and ``docs/LINT.md``.
    """

    id: str = "RL000"
    title: str = ""
    contract: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for ``ctx``; suppression happens in the engine."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST | int, message: str) -> Finding:
        """Build a finding anchored at ``node`` (an AST node or a line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(rule=self.id, path=ctx.path, line=line, message=message)


# -- driving -----------------------------------------------------------------------------


def iter_python_files(root: pathlib.Path) -> Iterator[pathlib.Path]:
    """All ``.py`` files under ``root`` (itself, if a file), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def _discover_api_doc(root: pathlib.Path) -> str | None:
    """Walk upward from ``root`` looking for ``docs/API.md``."""
    for base in [root, *root.parents]:
        candidate = base / "docs" / "API.md"
        if candidate.is_file():
            return candidate.read_text(encoding="utf-8")
    return None


def run_lint(
    paths: Sequence[str | pathlib.Path] | None = None,
    rules: Sequence[Rule] | None = None,
    api_doc_text: str | None = None,
) -> list[Finding]:
    """Run ``rules`` over ``paths`` and return unsuppressed findings.

    ``paths`` defaults to the installed ``repro`` package directory (the
    tree the contracts govern); ``rules`` defaults to
    :data:`repro.lint.rules.ALL_RULES`.  ``api_doc_text`` feeds the
    export-parity rule and is auto-discovered (``docs/API.md`` above the
    first root) when omitted.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    roots = [pathlib.Path(p).resolve() for p in paths] if paths else [
        pathlib.Path(__file__).resolve().parents[1]
    ]
    findings: list[Finding] = []
    for root in roots:
        base = root if root.is_dir() else root.parent
        doc_text = api_doc_text
        if doc_text is None:
            doc_text = _discover_api_doc(base)
        for path in iter_python_files(root):
            source = path.read_text(encoding="utf-8")
            try:
                relative = path.relative_to(base)
            except ValueError:
                relative = pathlib.Path(path.name)
            ctx = LintContext(
                path=str(path),
                relpath=relative.as_posix(),
                source=source,
                api_doc_text=doc_text,
            )
            for rule in rules:
                for found in rule.check(ctx):
                    if not ctx.is_suppressed(found.rule, found.line):
                        findings.append(found)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one ``path:line: RULE: message`` per line."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report for the CI gate."""
    return json.dumps(
        {"count": len(findings), "findings": [f.as_dict() for f in findings]},
        indent=2,
    )
