"""Contract-lint plane: static rules + runtime lock-order sanitizing.

Two halves, one job — keeping the conventions the reproduction's
guarantees rest on machine-checked:

* :mod:`repro.lint.engine` / :mod:`repro.lint.rules` — the AST pass
  behind ``python -m repro lint``: eight repo-specific rules (seed
  discipline, wall-clock ban, CrashPoint-safe exception handling,
  FsOps commit routing, metric-name suffixes, lock hygiene, export/doc
  parity, explicit multiprocessing contexts) with per-line
  ``# repro-lint: disable=RULE`` suppressions and text/JSON reporters.
* :mod:`repro.lint.lockdep` — a kernel-lockdep-style runtime sanitizer
  that records the per-thread lock-acquisition graph and reports
  ordering cycles (potential AB/BA deadlocks) from single-threaded
  test runs; wired into the concurrency test modules as a fixture.

See ``docs/LINT.md`` for the rule catalog and suppression policy.
"""

from .engine import (
    Finding,
    LintContext,
    Rule,
    iter_python_files,
    render_json,
    render_text,
    run_lint,
)
from .lockdep import LockDep, LockOrderViolation, TrackedLock, lockdep_guard
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LockDep",
    "LockOrderViolation",
    "Rule",
    "TrackedLock",
    "iter_python_files",
    "lockdep_guard",
    "render_json",
    "render_text",
    "run_lint",
]
