"""Databases: finite sets of facts over a schema.

A database ``D`` over a schema ``S`` is a finite set of facts over ``S``
(Section 2).  :class:`Database` is immutable and hashable so that exact
engines can memoize on database states; all "mutation" helpers return new
instances.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from .facts import Constant, Fact
from .schema import Schema, SchemaError


class Database:
    """An immutable set of facts, optionally validated against a schema.

    The schema is carried along for attribute-name resolution (FD checking,
    blocks) but equality and hashing are on the fact set alone, matching the
    paper where a database is just a set of facts.
    """

    __slots__ = ("_facts", "_schema", "_hash", "_by_relation")

    def __init__(self, facts: Iterable[Fact] = (), schema: Schema | None = None):
        fact_set = frozenset(facts)
        if schema is not None:
            for f in fact_set:
                if not f.conforms_to(schema):
                    raise SchemaError(f"fact {f} does not conform to schema {schema}")
        self._facts: frozenset[Fact] = fact_set
        self._schema = schema
        self._hash = hash(fact_set)
        self._by_relation: Mapping[str, frozenset[Fact]] | None = None

    def __getstate__(self):
        # The by-relation cache is derived state (and a mappingproxy, which
        # cannot pickle): ship only the defining fields across process
        # boundaries and rebuild the cache lazily on the other side.
        return (self._facts, self._schema)

    def __setstate__(self, state) -> None:
        facts, schema = state
        self._facts = facts
        self._schema = schema
        self._hash = hash(facts)
        self._by_relation = None

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def schema(self) -> Schema | None:
        return self._schema

    # -- set protocol -------------------------------------------------------

    def __contains__(self, f: Fact) -> bool:
        return f in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "Database") -> bool:
        return self._facts <= other._facts

    def __lt__(self, other: "Database") -> bool:
        return self._facts < other._facts

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *facts: Fact, schema: Schema | None = None) -> "Database":
        return cls(facts, schema=schema)

    def with_schema(self, schema: Schema) -> "Database":
        """The same fact set, validated against and carrying ``schema``."""
        return Database(self._facts, schema=schema)

    def union(self, facts: Iterable[Fact]) -> "Database":
        return Database(self._facts | frozenset(facts), schema=self._schema)

    def difference(self, facts: Iterable[Fact]) -> "Database":
        return Database(self._facts - frozenset(facts), schema=self._schema)

    def remove(self, facts: Iterable[Fact]) -> "Database":
        """Alias of :meth:`difference`; operations remove facts."""
        return self.difference(facts)

    def restrict_to_relation(self, relation: str) -> "Database":
        """The sub-database of facts over one relation name."""
        return Database(
            (f for f in self._facts if f.relation == relation), schema=self._schema
        )

    # -- inspection -----------------------------------------------------------

    def relation_names(self) -> frozenset[str]:
        return frozenset(f.relation for f in self._facts)

    def facts_of(self, relation: str) -> frozenset[Fact]:
        return frozenset(f for f in self._facts if f.relation == relation)

    def by_relation(self) -> Mapping[str, frozenset[Fact]]:
        """Facts grouped by relation name (computed once; the class is
        immutable, and this grouping is hit once per homomorphism join).

        The returned mapping is read-only — it is the shared cache, not a
        per-call copy.
        """
        if self._by_relation is None:
            grouped: dict[str, set[Fact]] = {}
            for f in self._facts:
                grouped.setdefault(f.relation, set()).add(f)
            self._by_relation = MappingProxyType(
                {name: frozenset(fs) for name, fs in grouped.items()}
            )
        return self._by_relation

    def active_domain(self) -> frozenset[Constant]:
        """``dom(D)``: the set of constants occurring in the database."""
        return frozenset(value for f in self._facts for value in f.values)

    def sorted_facts(self) -> list[Fact]:
        """Facts in a deterministic order (for reproducible iteration)."""
        return sorted(self._facts, key=lambda f: (f.relation, tuple(map(_sort_key, f.values))))

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.sorted_facts())
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Database({sorted(map(str, self._facts))})"


def _sort_key(value: Constant) -> tuple[str, str]:
    """Total order over heterogeneous constants: by type name, then repr."""
    return (type(value).__name__, repr(value))
