"""Conjunctive queries and homomorphism-based evaluation.

A CQ has the form ``Ans(x̄) :- R1(ȳ1), ..., Rn(ȳn)`` (Section 2).  Terms are
variables or constants; semantics is via homomorphisms that are the identity
on constants.  Evaluation is a backtracking join: atoms are matched one at a
time against per-relation fact indexes, extending a partial assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .database import Database
from .facts import Constant, Fact


class QueryError(ValueError):
    """Raised for ill-formed queries."""


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by name."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


Term = Variable | Constant


def var(name: str) -> Variable:
    """Convenience constructor for variables."""
    return Variable(name)


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tn)`` with variable or constant terms."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        return frozenset(t for t in self.terms if not isinstance(t, Variable))

    def ground(self, assignment: Mapping[Variable, Constant]) -> Fact:
        """The fact obtained by applying a total assignment to this atom."""
        values = []
        for term in self.terms:
            if isinstance(term, Variable):
                if term not in assignment:
                    raise QueryError(f"assignment does not bind {term}")
                values.append(assignment[term])
            else:
                values.append(term)
        return Fact(self.relation, tuple(values))

    def __str__(self) -> str:
        rendered = ", ".join(str(t) if isinstance(t, Variable) else repr(t) for t in self.terms)
        return f"{self.relation}({rendered})"


def atom(relation: str, *terms: Term) -> Atom:
    """Convenience constructor: ``atom('R', var('x'), 'a')``."""
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``Ans(answer_variables) :- atoms``.

    ``answer_variables`` may be empty, in which case the query is Boolean.
    Every answer variable must occur in some atom (safety, as in the paper).
    """

    answer_variables: tuple[Variable, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.answer_variables, tuple):
            object.__setattr__(self, "answer_variables", tuple(self.answer_variables))
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not self.atoms:
            raise QueryError("a CQ must have at least one atom")
        body_vars = self.variables()
        for v in self.answer_variables:
            if v not in body_vars:
                raise QueryError(f"answer variable {v} does not occur in the body")

    # -- structure -------------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        return not self.answer_variables

    @property
    def is_atomic(self) -> bool:
        """Single-atom query (the case analysed first in Section 7)."""
        return len(self.atoms) == 1

    def variables(self) -> frozenset[Variable]:
        """``var(Q)``."""
        return frozenset(v for a in self.atoms for v in a.variables())

    def constants(self) -> frozenset[Constant]:
        """``const(Q)``."""
        return frozenset(c for a in self.atoms for c in a.constants())

    def atom_count(self) -> int:
        """``|Q|`` when the query is viewed as its set of body atoms."""
        return len(self.atoms)

    # -- evaluation -------------------------------------------------------------

    def homomorphisms(
        self,
        database: Database,
        fixed: Mapping[Variable, Constant] | None = None,
    ) -> Iterator[dict[Variable, Constant]]:
        """All homomorphisms from the query body into ``database``.

        ``fixed`` pre-binds variables (used to require ``h(x̄) = c̄``).
        Yields total assignments over ``var(Q)``; distinct assignments may
        induce the same image ``h(Q)``.
        """
        index = database.by_relation()
        # Match most-constrained atoms first: fewer candidate facts prune earlier.
        ordered = sorted(self.atoms, key=lambda a: len(index.get(a.relation, ())))
        assignment: dict[Variable, Constant] = dict(fixed or {})
        yield from _extend(ordered, 0, assignment, index)

    def image(self, assignment: Mapping[Variable, Constant]) -> frozenset[Fact]:
        """``h(Q)``: the set of facts the body maps to under ``assignment``."""
        return frozenset(a.ground(assignment) for a in self.atoms)

    def answers(self, database: Database) -> frozenset[tuple[Constant, ...]]:
        """``Q(D)``: the set of answer tuples."""
        found = set()
        for h in self.homomorphisms(database):
            found.add(tuple(h[v] for v in self.answer_variables))
        return frozenset(found)

    def entails(self, database: Database, answer: tuple[Constant, ...] = ()) -> bool:
        """Whether ``answer ∈ Q(D)`` (``D |= Q`` for Boolean queries)."""
        if len(answer) != len(self.answer_variables):
            raise QueryError(
                f"answer arity {len(answer)} does not match |x̄| = {len(self.answer_variables)}"
            )
        fixed = _bind_answer(self.answer_variables, answer)
        if fixed is None:
            return False
        for _ in self.homomorphisms(database, fixed=fixed):
            return True
        return False

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.answer_variables)
        body = ", ".join(str(a) for a in self.atoms)
        return f"Ans({head}) :- {body}"


def cq(answer_variables: Iterable[Variable], atoms: Iterable[Atom]) -> ConjunctiveQuery:
    """Convenience constructor for :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(tuple(answer_variables), tuple(atoms))


def boolean_cq(*atoms: Atom) -> ConjunctiveQuery:
    """A Boolean CQ from its body atoms."""
    return ConjunctiveQuery((), tuple(atoms))


def _bind_answer(
    answer_variables: tuple[Variable, ...], answer: tuple[Constant, ...]
) -> dict[Variable, Constant] | None:
    """Bind answer variables to an answer tuple; ``None`` on repeat-variable clash."""
    fixed: dict[Variable, Constant] = {}
    for v, c in zip(answer_variables, answer):
        if v in fixed and fixed[v] != c:
            return None
        fixed[v] = c
    return fixed


def _extend(
    atoms: list[Atom],
    position: int,
    assignment: dict[Variable, Constant],
    index: Mapping[str, frozenset[Fact]],
) -> Iterator[dict[Variable, Constant]]:
    """Backtracking matcher: extend ``assignment`` to cover ``atoms[position:]``."""
    if position == len(atoms):
        yield dict(assignment)
        return
    current = atoms[position]
    for f in index.get(current.relation, ()):
        if f.arity != current.arity:
            continue
        bound: list[Variable] = []
        consistent = True
        for term, value in zip(current.terms, f.values):
            if isinstance(term, Variable):
                if term in assignment:
                    if assignment[term] != value:
                        consistent = False
                        break
                else:
                    assignment[term] = value
                    bound.append(term)
            elif term != value:
                consistent = False
                break
        if consistent:
            yield from _extend(atoms, position + 1, assignment, index)
        for v in bound:
            del assignment[v]
