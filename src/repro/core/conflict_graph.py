"""Conflict graphs ``CG(D, Σ)`` and independent-set machinery.

The conflict graph has the facts of ``D`` as nodes and an edge ``{f, g}``
whenever ``{f, g} ̸|= Σ`` (Section 5).  Lemma 5.4 states that for a
non-trivially ``Σ``-connected database, ``|CORep(D, Σ)| = |IS(CG(D, Σ))|``;
Lemma E.4 gives the singleton-operation analogue with non-empty independent
sets.  The component-wise generalization implemented in
:mod:`repro.exact.enumerate` builds on the helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .database import Database
from .dependencies import FDSet
from .facts import Fact
from .violations import violating_fact_pairs


@dataclass(frozen=True)
class ConflictGraph:
    """An undirected graph over facts, stored as a frozen adjacency map."""

    nodes: frozenset[Fact]
    adjacency: Mapping[Fact, frozenset[Fact]]

    @classmethod
    def of(cls, database: Database, constraints: FDSet) -> "ConflictGraph":
        """``CG(D, Σ)``."""
        adjacency: dict[Fact, set[Fact]] = {f: set() for f in database}
        for pair in violating_fact_pairs(database, constraints):
            f, g = tuple(pair)
            adjacency[f].add(g)
            adjacency[g].add(f)
        return cls(
            nodes=frozenset(database.facts),
            adjacency={f: frozenset(neighbours) for f, neighbours in adjacency.items()},
        )

    @classmethod
    def from_edges(
        cls, nodes: Iterable[Fact], edges: Iterable[frozenset[Fact]]
    ) -> "ConflictGraph":
        """Build directly from an edge list (used by reduction tests)."""
        adjacency: dict[Fact, set[Fact]] = {n: set() for n in nodes}
        for edge in edges:
            f, g = tuple(edge)
            adjacency[f].add(g)
            adjacency[g].add(f)
        return cls(
            nodes=frozenset(adjacency),
            adjacency={f: frozenset(neighbours) for f, neighbours in adjacency.items()},
        )

    # -- basic structure -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def neighbours(self, f: Fact) -> frozenset[Fact]:
        return self.adjacency.get(f, frozenset())

    def degree(self, f: Fact) -> int:
        return len(self.neighbours(f))

    def max_degree(self) -> int:
        """The degree ``Δ`` of the graph (0 for the empty graph)."""
        if not self.nodes:
            return 0
        return max(self.degree(f) for f in self.nodes)

    def edges(self) -> frozenset[frozenset[Fact]]:
        """The edge set, computed once per graph (the graph is frozen)."""
        cached = self.__dict__.get("_edges")
        if cached is None:
            found = set()
            for f, neighbours in self.adjacency.items():
                for g in neighbours:
                    found.add(frozenset((f, g)))
            cached = frozenset(found)
            object.__setattr__(self, "_edges", cached)
        return cached

    def edge_count(self) -> int:
        return len(self.edges())

    def has_edge(self, f: Fact, g: Fact) -> bool:
        return g in self.neighbours(f)

    def isolated_nodes(self) -> frozenset[Fact]:
        """Facts involved in no conflict (kept by every repair)."""
        return frozenset(f for f in self.nodes if not self.neighbours(f))

    # -- connectivity ----------------------------------------------------------------

    def connected_components(self) -> list[frozenset[Fact]]:
        """Maximal connected node sets, in a deterministic order."""
        remaining = set(self.nodes)
        components = []
        for start in sorted(self.nodes, key=str):
            if start not in remaining:
                continue
            component = {start}
            frontier = [start]
            remaining.discard(start)
            while frontier:
                current = frontier.pop()
                for neighbour in self.neighbours(current):
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(component))
        return components

    def nontrivial_components(self) -> list[frozenset[Fact]]:
        """Components with at least two nodes (the conflict-carrying ones)."""
        return [c for c in self.connected_components() if len(c) > 1]

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    def is_nontrivially_connected(self) -> bool:
        """At least two nodes and connected (Section 5's notion)."""
        return len(self.nodes) >= 2 and self.is_connected()

    def subgraph(self, nodes: Iterable[Fact]) -> "ConflictGraph":
        node_set = frozenset(nodes)
        return ConflictGraph(
            nodes=node_set,
            adjacency={f: self.neighbours(f) & node_set for f in node_set},
        )

    # -- independent sets ---------------------------------------------------------------

    def is_independent(self, nodes: Iterable[Fact]) -> bool:
        node_set = frozenset(nodes)
        return all(not (self.neighbours(f) & node_set) for f in node_set)

    def independent_sets(self) -> Iterator[frozenset[Fact]]:
        """All independent sets, including the empty set.

        Uses branch-on-a-vertex recursion (exclude ``v`` / include ``v`` and
        drop its closed neighbourhood).  Exponential output in general —
        intended for the small instances exact engines handle.
        """
        ordered = sorted(self.nodes, key=str)

        def recurse(available: frozenset[Fact]) -> Iterator[frozenset[Fact]]:
            pick = next((v for v in ordered if v in available), None)
            if pick is None:
                yield frozenset()
                return
            without = available - {pick}
            yield from recurse(without)
            blocked = without - self.neighbours(pick)
            for inner in recurse(blocked):
                yield inner | {pick}

        yield from recurse(self.nodes)

    def count_independent_sets(self) -> int:
        """``|IS(G)|`` via the same branching with memoization on node sets."""
        cache: dict[frozenset[Fact], int] = {}
        ordered = sorted(self.nodes, key=str)

        def count(available: frozenset[Fact]) -> int:
            if available in cache:
                return cache[available]
            pick = next((v for v in ordered if v in available), None)
            if pick is None:
                result = 1
            else:
                without = available - {pick}
                result = count(without) + count(without - self.neighbours(pick))
            cache[available] = result
            return result

        return count(self.nodes)

    def count_nonempty_independent_sets(self) -> int:
        """``|IS≠∅(G)|`` (Lemma E.4's count)."""
        return self.count_independent_sets() - 1

    def maximal_independent_sets(self) -> Iterator[frozenset[Fact]]:
        """All maximal independent sets — the classical subset repairs.

        Branch-on-a-vertex recursion with maximality as a *pruning*
        condition: a vertex passed over by choice must later gain a chosen
        neighbour (be dominated), so any branch holding a passed-over
        vertex with no remaining available neighbour is cut immediately —
        instead of enumerating all independent sets and post-filtering
        the (potentially exponentially many) non-maximal ones.
        """
        ordered = sorted(self.nodes, key=str)

        def recurse(
            available: frozenset[Fact], pending: frozenset[Fact], chosen: frozenset[Fact]
        ) -> Iterator[frozenset[Fact]]:
            # ``pending`` = vertices excluded by choice and not yet
            # dominated; one with no available neighbour never will be.
            for vertex in pending:
                if not (self.neighbours(vertex) & available):
                    return
            pick = next((v for v in ordered if v in available), None)
            if pick is None:
                yield chosen  # the prune above guarantees maximality
                return
            without = available - {pick}
            yield from recurse(without, pending | {pick}, chosen)
            neighbours = self.neighbours(pick)
            yield from recurse(
                without - neighbours, pending - neighbours, chosen | {pick}
            )

        yield from recurse(self.nodes, frozenset(), frozenset())

    def matches_under(self, other: "ConflictGraph", bijection: Mapping[Fact, Fact]) -> bool:
        """Whether ``bijection`` is a graph isomorphism from ``self`` to ``other``.

        Used by the reduction tests (Prop 5.5 requires ``CG(D_G, Σ_K)``
        isomorphic to the input graph under the node-to-fact map).
        """
        if frozenset(bijection) != self.nodes:
            return False
        if frozenset(bijection.values()) != other.nodes:
            return False
        for f in self.nodes:
            image_neighbours = frozenset(bijection[g] for g in self.neighbours(f))
            if image_neighbours != other.neighbours(bijection[f]):
                return False
        return True
