"""Operations and justified operations (Definitions 3.1 and 3.3).

An operation ``-F`` removes a non-empty fact set ``F`` from whatever database
it is applied to.  Since the paper deals with FDs, additions never resolve
conflicts and only removals are needed.  ``-F`` is *justified* at a state
``D'`` when ``F ⊆ {f, g}`` for some violation ``(φ, {f, g}) ∈ V(D', Σ)`` —
i.e. the removal is a non-empty subset of a currently conflicting pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .database import Database
from .dependencies import FDSet
from .facts import Fact
from .violations import violating_fact_pairs


@dataclass(frozen=True)
class Operation:
    """The removal operation ``-F`` for a non-empty fact set ``F``."""

    removed: frozenset[Fact]

    def __post_init__(self) -> None:
        object.__setattr__(self, "removed", frozenset(self.removed))
        if not self.removed:
            raise ValueError("an operation must remove a non-empty set of facts")

    @property
    def is_singleton(self) -> bool:
        """Whether the operation removes a single fact (the ``-f`` form)."""
        return len(self.removed) == 1

    @property
    def is_pair(self) -> bool:
        return len(self.removed) == 2

    def apply(self, database: Database) -> Database:
        """``op(D') = D' \\ F``."""
        return database.difference(self.removed)

    def __call__(self, database: Database) -> Database:
        return self.apply(database)

    def sorted_facts(self) -> list[Fact]:
        return sorted(self.removed, key=str)

    def __lt__(self, other: "Operation") -> bool:  # deterministic ordering
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Sort singleton removals before pair removals, then by fact names."""
        return (len(self.removed), tuple(str(f) for f in self.sorted_facts()))

    def lex_key(self) -> tuple:
        """Pure lexicographic order on removed-fact names.

        This matches the left-to-right child order of Figure 1 in the paper
        (``-f1 < -{f1,f2} < -f2 < -{f2,f3} < -f3``) and is the default child
        order of explicit repairing Markov chains, so the DFS canonical
        ordering reproduces the Section 4 worked example verbatim.
        """
        return tuple(str(f) for f in self.sorted_facts())

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.sorted_facts())
        if self.is_singleton:
            return f"-{inner}"
        return "-{" + inner + "}"


def remove(*facts: Fact) -> Operation:
    """Convenience constructor: ``remove(f)`` is ``-f``, ``remove(f, g)`` is ``-{f, g}``."""
    return Operation(frozenset(facts))


def justified_operations(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> frozenset[Operation]:
    """All ``(D', Σ)``-justified operations at state ``database``.

    Every violating pair ``{f, g}`` justifies the removals ``-f``, ``-g``
    and ``-{f, g}``; the same operation justified by several violations is
    counted once (operations are identified by their removal set, matching
    Definition 3.1).  With ``singleton_only=True`` the pair removal is
    excluded, yielding the operation space of the ``M^{·,1}`` generators
    (Section 7 / Appendix E).
    """
    found: set[Operation] = set()
    for pair in violating_fact_pairs(database, constraints):
        f, g = sorted(pair, key=str)
        found.add(Operation(frozenset((f,))))
        found.add(Operation(frozenset((g,))))
        if not singleton_only:
            found.add(Operation(pair))
    return frozenset(found)


def sorted_justified_operations(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> list[Operation]:
    """Justified operations in the library's deterministic order."""
    return sorted(justified_operations(database, constraints, singleton_only))


def is_justified(
    operation: Operation, database: Database, constraints: FDSet
) -> bool:
    """Definition 3.3: ``F ⊆ {f, g}`` for some current violation."""
    for pair in violating_fact_pairs(database, constraints):
        if operation.removed <= pair:
            return True
    return False


def apply_all(database: Database, operations: Iterable[Operation]) -> Database:
    """Apply a sequence of operations left to right."""
    state = database
    for operation in operations:
        state = operation.apply(state)
    return state


def operation_space_size(database: Database, constraints: FDSet) -> int:
    """``|Ops_s(D, Σ)|`` at the state ``database`` (full operation space)."""
    return len(justified_operations(database, constraints))


def iter_operation_children(
    database: Database, constraints: FDSet, singleton_only: bool = False
) -> Iterator[tuple[Operation, Database]]:
    """Pairs ``(op, op(D'))`` for each justified operation, in sorted order."""
    for operation in sorted_justified_operations(database, constraints, singleton_only):
        yield operation, operation.apply(database)
