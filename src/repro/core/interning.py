"""Interned-fact kernel: dense integer ids for one ``(D, Σ)`` instance.

Every sampled repair of a fixed database is a *subset of that database*, so
once a session has fixed ``(D, Σ)`` there is no reason to shuffle hash-heavy
:class:`~repro.core.facts.Fact` objects through the draw-and-evaluate loop.
:class:`InstanceIndex` interns the facts of a database once — assigning each
fact a dense integer id along the canonical
:meth:`~repro.core.database.Database.sorted_facts` order — and exposes the
derived integer structure the hot paths run on:

* **id bitmasks** — a fact set ``S ⊆ D`` is one Python ``int`` with bit
  ``i`` set iff fact ``i ∈ S``; "witness ⊆ sample" becomes
  ``w & s == w``, one machine-word-striped AND instead of a frozenset
  containment walk;
* **blocks as sorted id-tuples** — the conflicting blocks of the primary-key
  decomposition (Lemma 5.2), in the exact iteration order the samplers
  draw in (the samplers derive their own id-block structure from the same
  decomposition + interning, which is what makes id-based draws consume
  the RNG bit-for-bit identically to the object path);
* **per-relation id indexes** — the ids of each relation's facts (grouped
  lazily), for relation-local scans without rebuilding fact groupings.

The id order deliberately equals the canonical order
:mod:`repro.engine.store` has always persisted sample rows in, so an interned
sample encodes to disk as the *same* sorted index list a fact-set sample did.

The kernel is invisible at the public API surface: samplers and sessions
reconstruct :class:`~repro.core.facts.Fact` / fact-set results on demand via
:meth:`InstanceIndex.facts_of_mask`, and estimates are bit-for-bit identical
with the kernel on or off (``tests/test_interning.py`` asserts both).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .blocks import BlockDecomposition, block_decomposition
from .database import Database
from .dependencies import FDSet
from .facts import Fact


class InterningError(ValueError):
    """Raised when a fact outside the interned database is id-translated."""


def mask_ids(mask: int) -> list[int]:
    """The set bit positions of an id bitmask, ascending.

    The one implementation of mask → id-list in the codebase: the index's
    views and the store's on-disk sample rows both go through it, so the
    decode of a persisted row can never drift from the live encoding.
    """
    ids = []
    while mask:
        low = mask & -mask
        ids.append(low.bit_length() - 1)
        mask ^= low
    return ids


class InstanceIndex:
    """Dense ``Fact ↔ int`` interning for one database (plus block structure).

    Build one per ``(D, Σ)`` with :meth:`of` (an
    :class:`~repro.engine.session.EstimationSession` does this once and
    shares it).  Ids are positions in ``database.sorted_facts()``; masks are
    arbitrary-precision ints with bit ``i`` standing for fact id ``i``.
    """

    __slots__ = (
        "_facts",
        "_id_of",
        "_conflicting_blocks",
        "_always_kept_mask",
        "_relation_ids",
        "full_mask",
    )

    def __init__(
        self,
        facts: tuple[Fact, ...],
        conflicting_blocks: tuple[tuple[int, ...], ...] = (),
        always_kept_mask: int = 0,
    ):
        self._facts = facts
        self._id_of: dict[Fact, int] = {f: i for i, f in enumerate(facts)}
        self._conflicting_blocks = conflicting_blocks
        self._always_kept_mask = always_kept_mask
        self._relation_ids: dict[str, tuple[int, ...]] | None = None
        self.full_mask = (1 << len(facts)) - 1

    @classmethod
    def of(
        cls,
        database: Database,
        constraints: FDSet | None = None,
        decomposition: BlockDecomposition | None = None,
    ) -> "InstanceIndex":
        """Intern ``database``, deriving block structure when available.

        With a primary-key ``constraints`` (or an explicit precomputed
        ``decomposition``), conflicting blocks are captured as id-tuples in
        the samplers' canonical order: decomposition order across blocks,
        string-sorted facts within a block.  Without either — e.g. the
        ``M_uo`` generators over arbitrary FDs — the index still interns
        facts and masks; only the block views are empty.
        """
        facts = tuple(database.sorted_facts())
        id_of = {f: i for i, f in enumerate(facts)}
        if decomposition is None and constraints is not None:
            if constraints.is_primary_keys():
                decomposition = block_decomposition(database, constraints)
        if decomposition is None:
            return cls(facts)
        conflicting = tuple(
            tuple(id_of[f] for f in block.sorted_facts())
            for block in decomposition.conflicting_blocks()
        )
        kept_mask = 0
        for f in decomposition.singleton_facts():
            kept_mask |= 1 << id_of[f]
        return cls(facts, conflicting, kept_mask)

    # -- basic views -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._facts)

    @property
    def facts(self) -> tuple[Fact, ...]:
        """The interned facts, indexed by id (the canonical sorted order)."""
        return self._facts

    @property
    def id_of(self) -> Mapping[Fact, int]:
        """The inverse map ``Fact -> id``."""
        return self._id_of

    def fact_of(self, identifier: int) -> Fact:
        """The fact with the given id."""
        return self._facts[identifier]

    def conflicting_block_ids(self) -> tuple[tuple[int, ...], ...]:
        """Conflicting blocks as id-tuples, in the samplers' draw order."""
        return self._conflicting_blocks

    def always_kept_mask(self) -> int:
        """Mask of the facts in singleton blocks (kept by every repair)."""
        return self._always_kept_mask

    def _relation_index(self) -> dict[str, tuple[int, ...]]:
        if self._relation_ids is None:
            grouped: dict[str, list[int]] = {}
            for identifier, f in enumerate(self._facts):
                grouped.setdefault(f.relation, []).append(identifier)
            self._relation_ids = {
                name: tuple(ids) for name, ids in grouped.items()
            }
        return self._relation_ids

    def relation_ids(self, relation: str) -> tuple[int, ...]:
        """Ids of the facts over one relation, ascending (grouped lazily)."""
        return self._relation_index().get(relation, ())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relation_index()))

    # -- id/mask translation -----------------------------------------------------------

    def id(self, fact: Fact) -> int:
        """The id of ``fact`` (:class:`InterningError` for foreign facts)."""
        identifier = self._id_of.get(fact)
        if identifier is None:
            raise InterningError(f"fact {fact} is not part of the interned database")
        return identifier

    def mask_of(self, facts: Iterable[Fact]) -> int:
        """The bitmask of a fact set (every fact must be interned)."""
        mask = 0
        id_of = self._id_of
        for f in facts:
            identifier = id_of.get(f)
            if identifier is None:
                raise InterningError(
                    f"fact {f} is not part of the interned database"
                )
            mask |= 1 << identifier
        return mask

    def mask_of_ids(self, ids: Iterable[int]) -> int:
        """The bitmask with exactly the given id bits set."""
        mask = 0
        for identifier in ids:
            mask |= 1 << identifier
        return mask

    def ids_of_mask(self, mask: int) -> Iterator[int]:
        """The set ids of ``mask``, ascending."""
        return iter(mask_ids(mask))

    def facts_of_mask(self, mask: int) -> frozenset[Fact]:
        """Reconstruct the fact set a mask stands for (object results on demand)."""
        facts = self._facts
        return frozenset(facts[i] for i in mask_ids(mask))

    def sorted_ids_of_mask(self, mask: int) -> list[int]:
        """The set ids as a sorted list (= :func:`mask_ids`)."""
        return mask_ids(mask)
