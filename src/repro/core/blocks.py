"""Block decompositions for (primary) key constraints.

For a relation with key ``R : X -> Y``, the facts over ``R`` partition into
*blocks* of facts agreeing on all attributes of ``X`` (Lemma 5.2).  Two facts
in one block always jointly violate the key; facts in different blocks (or
over relations without a key) never conflict.  Blocks are therefore the
independent repair units of the primary-key case, and every counting / sampling
result in Sections 5, 6 and Appendix E is phrased over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterator

from .database import Database
from .dependencies import FDSet, FunctionalDependency
from .facts import Fact


class BlockError(ValueError):
    """Raised when a block decomposition is requested for unsupported Σ."""


@dataclass(frozen=True)
class Block:
    """A maximal set of same-relation facts agreeing on the key LHS."""

    relation: str
    group: tuple
    facts: frozenset[Fact]

    def __post_init__(self) -> None:
        object.__setattr__(self, "facts", frozenset(self.facts))
        if not self.facts:
            raise BlockError("a block cannot be empty")

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.sorted_facts())

    @property
    def has_conflicts(self) -> bool:
        """Blocks of size >= 2 are cliques of conflicts; singletons are safe."""
        return len(self.facts) >= 2

    def sorted_facts(self) -> list[Fact]:
        return sorted(self.facts, key=str)

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.sorted_facts())
        return f"Block[{self.relation}:{self.group}]{{{inner}}}"


@dataclass(frozen=True)
class BlockDecomposition:
    """All blocks of a database w.r.t. a set of primary keys.

    ``blocks`` lists every block (including singletons); helper views expose
    the conflicting blocks and the paper's product count formulas.
    """

    blocks: tuple[Block, ...]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def conflicting_blocks(self) -> list[Block]:
        """Blocks with at least two facts, in deterministic order."""
        return [b for b in self.blocks if b.has_conflicts]

    def singleton_facts(self) -> frozenset[Fact]:
        """Facts in size-one blocks: they appear in every operational repair."""
        return frozenset(f for b in self.blocks if not b.has_conflicts for f in b.facts)

    def block_of(self, fact: Fact) -> Block:
        for block in self.blocks:
            if fact in block.facts:
                return block
        raise BlockError(f"fact {fact} belongs to no block")

    def sizes(self) -> list[int]:
        """Sizes of the conflicting blocks (the DP state of Lemma C.1)."""
        return sorted(len(b) for b in self.conflicting_blocks())

    # -- the paper's closed-form counts ----------------------------------------------

    def count_candidate_repairs(self) -> int:
        """``|CORep(D, Σ)| = Π (|B_i| + 1)`` over conflicting blocks (Lemma 5.2)."""
        return prod(len(b) + 1 for b in self.conflicting_blocks())

    def count_singleton_repairs(self) -> int:
        """``|CORep¹(D, Σ)| = Π |B_i|`` over conflicting blocks (Lemma E.2)."""
        return prod(len(b) for b in self.conflicting_blocks())


def block_decomposition(database: Database, constraints: FDSet) -> BlockDecomposition:
    """Decompose ``database`` into blocks w.r.t. a set of *primary keys*.

    Relations without a key in Σ contribute one singleton block per fact
    (as in the proof of Lemma 5.3).  Raises :class:`BlockError` when Σ is
    not a set of primary keys, because the block structure (and every count
    derived from it) is only sound in that case.
    """
    if not constraints.is_primary_keys():
        raise BlockError("block decomposition requires a set of primary keys")
    schema = constraints.schema
    key_by_relation: dict[str, FunctionalDependency] = {
        dependency.relation: dependency for dependency in constraints
    }
    blocks: list[Block] = []
    by_relation = database.by_relation()
    for relation in sorted(by_relation):
        facts = sorted(by_relation[relation], key=str)
        dependency = key_by_relation.get(relation)
        if dependency is None:
            blocks.extend(Block(relation, (str(f),), frozenset((f,))) for f in facts)
            continue
        rel = schema.relation(relation)
        lhs_positions = rel.positions_of(sorted(dependency.lhs))
        grouped: dict[tuple, set[Fact]] = {}
        for f in facts:
            grouped.setdefault(tuple(f.values[i] for i in lhs_positions), set()).add(f)
        for group_value in sorted(grouped, key=repr):
            blocks.append(Block(relation, group_value, frozenset(grouped[group_value])))
    return BlockDecomposition(tuple(blocks))


def blocks_of_facts(
    decomposition: BlockDecomposition, facts: frozenset[Fact]
) -> list[Block]:
    """The distinct blocks containing any of ``facts``, in decomposition order.

    Raises :class:`BlockError` if two of the facts share a block — callers
    use this on homomorphism images ``h(Q)`` with ``h(Q) |= Σ``, where the
    paper argues no two image facts can share a block.
    """
    chosen: list[Block] = []
    seen: set[Block] = set()
    for fact in sorted(facts, key=str):
        block = decomposition.block_of(fact)
        if block in seen:
            raise BlockError("two facts of a consistent image share a block")
        seen.add(block)
        chosen.append(block)
    return chosen
