"""Facts over a relational schema.

A fact is an expression ``R(c1, ..., cn)`` where ``R/n`` is a relation name
and each ``ci`` is a constant (Section 2).  Constants are arbitrary hashable
Python values; strings and integers are typical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from .schema import RelationSchema, Schema, SchemaError

Constant = Hashable


@dataclass(frozen=True, order=True)
class Fact:
    """An immutable fact ``relation(values...)``.

    Facts are hashable and totally ordered (lexicographically by relation
    name then values, when values are comparable), which the library uses
    for deterministic iteration orders and for the canonical-sequence
    ordering of the uniform-repairs generator.
    """

    relation: str
    values: tuple[Constant, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def value_at(self, position: int) -> Constant:
        """The constant at a 0-based position."""
        return self.values[position]

    def __getitem__(self, attribute_or_position):
        """``fact[A]``: the constant at attribute name or 0-based position.

        Attribute-name lookup requires binding through :meth:`project`
        or the helpers on :class:`~repro.core.database.Database`; here a
        string argument is not resolvable, so only integers are accepted.
        """
        if isinstance(attribute_or_position, int):
            return self.values[attribute_or_position]
        raise TypeError(
            "attribute-name lookup needs a RelationSchema; use fact.value(schema, name)"
        )

    def value(self, relation_schema: RelationSchema, attribute: str) -> Constant:
        """``f[A]``: the constant at attribute ``A`` (paper notation)."""
        if relation_schema.name != self.relation:
            raise SchemaError(
                f"fact over {self.relation!r} queried with schema of {relation_schema.name!r}"
            )
        return self.values[relation_schema.position_of(attribute)]

    def project(self, relation_schema: RelationSchema, attributes: Iterable[str]) -> tuple:
        """Tuple of constants at the given attributes, in the given order."""
        return tuple(self.value(relation_schema, a) for a in attributes)

    def conforms_to(self, schema: Schema) -> bool:
        """Whether the fact's relation exists in ``schema`` with matching arity."""
        return self.relation in schema and schema.relation(self.relation).arity == self.arity

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(repr, self.values))})"


def fact(relation: str, *values: Constant) -> Fact:
    """Convenience constructor: ``fact('R', 'a', 1)`` = ``R('a', 1)``."""
    return Fact(relation, tuple(values))
