"""Relational schemas.

A (relational) schema is a finite set of relation names, each with an
associated arity and a tuple of distinct attribute names (Section 2 of the
paper).  Attribute names give positions a stable identity so that functional
dependencies can be written over names (``R : A -> B``) rather than indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


class SchemaError(ValueError):
    """Raised for ill-formed schemas or schema lookups that fail."""


@dataclass(frozen=True)
class RelationSchema:
    """A relation name with its ordered attribute names.

    The arity of the relation is ``len(attributes)``.  Attribute names must
    be distinct, mirroring the paper's requirement that each relation name
    ``R/n`` is associated with a tuple of *distinct* attribute names.
    """

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} must have arity > 0")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attribute names: {self.attributes}"
            )
        # Normalize to a tuple so list input is accepted without surprises.
        if not isinstance(self.attributes, tuple):
            object.__setattr__(self, "attributes", tuple(self.attributes))

    @property
    def arity(self) -> int:
        """Number of attributes (the ``n`` in ``R/n``)."""
        return len(self.attributes)

    def attribute_set(self) -> frozenset[str]:
        """``att(R)``: the set of attribute names of this relation."""
        return frozenset(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of ``attribute`` within the relation's attribute tuple."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def positions_of(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Indexes of several attributes, in the order given."""
        return tuple(self.position_of(a) for a in attributes)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class Schema:
    """A finite set of relation schemas, indexed by relation name."""

    relations: Mapping[str, RelationSchema] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen = {}
        for name, rel in dict(self.relations).items():
            if name != rel.name:
                raise SchemaError(
                    f"schema key {name!r} does not match relation name {rel.name!r}"
                )
            frozen[name] = rel
        object.__setattr__(self, "relations", frozen)

    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the dict field.
        return hash(frozenset(self.relations.values()))

    @classmethod
    def of(cls, *relations: RelationSchema) -> "Schema":
        """Build a schema from relation schemas, e.g. ``Schema.of(rel_r, rel_s)``."""
        mapping: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in mapping:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            mapping[rel.name] = rel
        return cls(mapping)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Sequence[str]]) -> "Schema":
        """Build a schema from ``{relation_name: [attribute, ...]}``."""
        return cls.of(*(RelationSchema(name, tuple(attrs)) for name, attrs in spec.items()))

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"schema has no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def names(self) -> frozenset[str]:
        """The set of relation names in the schema."""
        return frozenset(self.relations)

    def __str__(self) -> str:
        return "{" + ", ".join(str(rel) for rel in self) + "}"
