"""FD violations: the set ``V(D, Σ)`` of Definition 3.2.

A ``D``-violation of an FD ``φ = R : X -> Y`` is a two-fact set
``{f, g} ⊆ D`` with ``{f, g} ̸|= φ``.  ``V(D, Σ)`` collects pairs ``(φ, v)``
over all ``φ ∈ Σ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from .database import Database
from .dependencies import FDSet, FunctionalDependency
from .facts import Fact
from .schema import Schema


@dataclass(frozen=True)
class Violation:
    """A witnessed violation ``(φ, {f, g}) ∈ V(D, Σ)``."""

    dependency: FunctionalDependency
    facts: frozenset[Fact]

    def __post_init__(self) -> None:
        object.__setattr__(self, "facts", frozenset(self.facts))
        if len(self.facts) != 2:
            raise ValueError("an FD violation involves exactly two facts")

    def pair(self) -> tuple[Fact, Fact]:
        """The two facts in a deterministic order."""
        first, second = sorted(self.facts, key=str)
        return first, second

    def __str__(self) -> str:
        first, second = self.pair()
        return f"({self.dependency}, {{{first}, {second}}})"


def violations_of_fd(
    database: Database, dependency: FunctionalDependency, schema: Schema
) -> Iterator[frozenset[Fact]]:
    """``V(D, φ)``: all two-fact violations of a single FD.

    Facts are grouped by their LHS projection; only groups holding more than
    one distinct RHS projection can contain violating pairs, so large
    consistent relations are skipped in near-linear time.
    """
    rel = schema.relation(dependency.relation)
    lhs_positions = rel.positions_of(sorted(dependency.lhs))
    rhs_positions = rel.positions_of(sorted(dependency.rhs))
    groups: dict[tuple, list[Fact]] = {}
    for f in sorted(database.facts_of(dependency.relation), key=str):
        groups.setdefault(tuple(f.values[i] for i in lhs_positions), []).append(f)
    for group in groups.values():
        if len(group) < 2:
            continue
        for f, g in combinations(group, 2):
            f_rhs = tuple(f.values[i] for i in rhs_positions)
            g_rhs = tuple(g.values[i] for i in rhs_positions)
            if f_rhs != g_rhs:
                yield frozenset((f, g))


def violations(database: Database, constraints: FDSet) -> frozenset[Violation]:
    """``V(D, Σ)``: every (dependency, pair) witnessing inconsistency."""
    found = set()
    for dependency in constraints:
        for pair in violations_of_fd(database, dependency, constraints.schema):
            found.add(Violation(dependency, pair))
    return frozenset(found)


def violating_fact_pairs(database: Database, constraints: FDSet) -> frozenset[frozenset[Fact]]:
    """The conflicting pairs ``{f, g} ̸|= Σ``, without the witnessing FD.

    These are exactly the edges of the conflict graph ``CG(D, Σ)``.
    """
    return frozenset(v.facts for v in violations(database, constraints))


def is_consistent(database: Database, constraints: FDSet) -> bool:
    """``D |= Σ``, decided via the per-FD group check (no pair enumeration)."""
    return constraints.satisfied_by(database)


def facts_in_violation(database: Database, constraints: FDSet) -> frozenset[Fact]:
    """The facts participating in at least one violation of ``Σ``."""
    return frozenset(f for v in violations(database, constraints) for f in v.facts)
