"""Repairing sequences (Definition 3.4).

A sequence of operations ``s = (op_i)`` is ``(D, Σ)``-repairing when every
``op_i`` is justified at the intermediate state ``D^s_{i-1}``.  A repairing
sequence is *complete* when its result ``s(D)`` is consistent with ``Σ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .database import Database
from .dependencies import FDSet
from .operations import Operation, is_justified


@dataclass(frozen=True)
class RepairingSequence:
    """An immutable sequence of operations.

    The class does not itself fix ``D`` and ``Σ``; validity predicates take
    them as arguments, matching the paper's usage where the same operation
    tuple can be examined against different databases.
    """

    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.operations, tuple):
            object.__setattr__(self, "operations", tuple(self.operations))

    # -- structure ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __getitem__(self, index: int) -> Operation:
        return self.operations[index]

    @property
    def is_empty(self) -> bool:
        return not self.operations

    def extend(self, operation: Operation) -> "RepairingSequence":
        """``s · op``."""
        return RepairingSequence(self.operations + (operation,))

    def prefix(self, length: int) -> "RepairingSequence":
        """``s_i``: the first ``length`` operations."""
        return RepairingSequence(self.operations[:length])

    def prefixes(self) -> Iterator["RepairingSequence"]:
        """All prefixes ``s_0 = ε, s_1, ..., s_n = s``."""
        for i in range(len(self.operations) + 1):
            yield self.prefix(i)

    def is_prefix_of(self, other: "RepairingSequence") -> bool:
        return self.operations == other.operations[: len(self.operations)]

    def uses_only_singletons(self) -> bool:
        """Whether every operation removes a single fact (``RS¹`` membership)."""
        return all(op.is_singleton for op in self.operations)

    def removed_facts(self) -> frozenset:
        return frozenset(f for op in self.operations for f in op.removed)

    # -- semantics ----------------------------------------------------------------

    def apply(self, database: Database) -> Database:
        """``s(D)``: the result of applying all operations to ``database``."""
        state = database
        for operation in self.operations:
            state = operation.apply(state)
        return state

    def __call__(self, database: Database) -> Database:
        return self.apply(database)

    def states(self, database: Database) -> list[Database]:
        """``[D^s_0, D^s_1, ..., D^s_n]``: all intermediate states."""
        result = [database]
        for operation in self.operations:
            result.append(operation.apply(result[-1]))
        return result

    def is_repairing(self, database: Database, constraints: FDSet) -> bool:
        """Definition 3.4: each operation is justified at its predecessor state."""
        state = database
        for operation in self.operations:
            if not is_justified(operation, state, constraints):
                return False
            state = operation.apply(state)
        return True

    def is_complete(self, database: Database, constraints: FDSet) -> bool:
        """Repairing and ``s(D) |= Σ``."""
        return self.is_repairing(database, constraints) and constraints.satisfied_by(
            self.apply(database)
        )

    def __str__(self) -> str:
        if not self.operations:
            return "ε"
        return ", ".join(str(op) for op in self.operations)

    def sort_key(self) -> tuple:
        return tuple(op.sort_key() for op in self.operations)

    def __lt__(self, other: "RepairingSequence") -> bool:
        return self.sort_key() < other.sort_key()


EMPTY_SEQUENCE = RepairingSequence(())


def sequence(operations: Iterable[Operation]) -> RepairingSequence:
    """Convenience constructor."""
    return RepairingSequence(tuple(operations))
