"""Core relational substrate: schemas, facts, databases, FDs, CQs, and the
operational-repair building blocks (violations, operations, sequences,
conflict graphs, blocks)."""

from .blocks import Block, BlockDecomposition, BlockError, block_decomposition
from .conflict_graph import ConflictGraph
from .database import Database
from .dependencies import DependencyError, FDSet, FunctionalDependency, fd, key
from .facts import Constant, Fact, fact
from .interning import InstanceIndex, InterningError
from .operations import (
    Operation,
    apply_all,
    is_justified,
    justified_operations,
    remove,
    sorted_justified_operations,
)
from .queries import (
    Atom,
    ConjunctiveQuery,
    QueryError,
    Variable,
    atom,
    boolean_cq,
    cq,
    var,
)
from .schema import RelationSchema, Schema, SchemaError
from .sequences import EMPTY_SEQUENCE, RepairingSequence, sequence
from .violations import (
    Violation,
    facts_in_violation,
    is_consistent,
    violating_fact_pairs,
    violations,
)

__all__ = [
    "Atom",
    "Block",
    "BlockDecomposition",
    "BlockError",
    "ConflictGraph",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "DependencyError",
    "EMPTY_SEQUENCE",
    "FDSet",
    "Fact",
    "FunctionalDependency",
    "InstanceIndex",
    "InterningError",
    "Operation",
    "QueryError",
    "RelationSchema",
    "RepairingSequence",
    "Schema",
    "SchemaError",
    "Variable",
    "Violation",
    "apply_all",
    "atom",
    "block_decomposition",
    "boolean_cq",
    "cq",
    "fact",
    "facts_in_violation",
    "fd",
    "is_consistent",
    "is_justified",
    "justified_operations",
    "key",
    "remove",
    "sequence",
    "sorted_justified_operations",
    "var",
    "violating_fact_pairs",
    "violations",
]
