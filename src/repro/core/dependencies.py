"""Functional dependencies, keys, and primary keys.

An FD over a schema ``S`` is ``R : X -> Y`` with ``X, Y ⊆ att(R)``.  It is a
*key* when ``X ∪ Y = att(R)``.  A set of keys is a set of *primary keys* when
each relation has at most one key (Section 2).

Satisfaction: ``D |= R : X -> Y`` iff any two ``R``-facts agreeing on all of
``X`` also agree on all of ``Y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator, Sequence

from .database import Database
from .facts import Fact
from .schema import RelationSchema, Schema, SchemaError


class DependencyError(ValueError):
    """Raised for ill-formed dependencies."""


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``relation : lhs -> rhs`` over attribute names."""

    relation: str
    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))
        if not self.rhs:
            raise DependencyError(f"FD over {self.relation!r} must have a non-empty RHS")

    def __lt__(self, other: "FunctionalDependency") -> bool:
        # Deterministic ordering via the rendered form (frozensets do not sort).
        return str(self) < str(other)

    def validate(self, schema: Schema) -> None:
        """Raise unless lhs/rhs are attributes of ``relation`` in ``schema``."""
        rel = schema.relation(self.relation)
        unknown = (self.lhs | self.rhs) - rel.attribute_set()
        if unknown:
            raise SchemaError(
                f"FD {self} mentions attributes {sorted(unknown)} not in {rel}"
            )

    def is_key(self, schema: Schema) -> bool:
        """``X ∪ Y = att(R)``: the FD is a key of its relation."""
        rel = schema.relation(self.relation)
        return self.lhs | self.rhs == rel.attribute_set()

    def pair_satisfies(self, f: Fact, g: Fact, schema: Schema) -> bool:
        """Whether ``{f, g} |= self`` (the two-fact satisfaction check).

        Facts over other relations vacuously satisfy the FD.
        """
        if f.relation != self.relation or g.relation != self.relation:
            return True
        rel = schema.relation(self.relation)
        lhs_positions = rel.positions_of(sorted(self.lhs))
        if any(f.values[i] != g.values[i] for i in lhs_positions):
            return True
        rhs_positions = rel.positions_of(sorted(self.rhs))
        return all(f.values[i] == g.values[i] for i in rhs_positions)

    def satisfied_by(self, database: Database, schema: Schema | None = None) -> bool:
        """``D |= φ``: no pair of facts violates the FD."""
        schema = _resolve_schema(database, schema)
        facts = sorted(database.facts_of(self.relation), key=str)
        rel = schema.relation(self.relation)
        lhs_positions = rel.positions_of(sorted(self.lhs))
        rhs_positions = rel.positions_of(sorted(self.rhs))
        seen: dict[tuple, tuple] = {}
        for f in facts:
            group = tuple(f.values[i] for i in lhs_positions)
            value = tuple(f.values[i] for i in rhs_positions)
            if group in seen:
                if seen[group] != value:
                    return False
            else:
                seen[group] = value
        return True

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.lhs))
        rhs = ",".join(sorted(self.rhs))
        return f"{self.relation}: {lhs} -> {rhs}"


def fd(relation: str, lhs: Iterable[str] | str, rhs: Iterable[str] | str) -> FunctionalDependency:
    """Convenience constructor; single attribute names may be bare strings."""
    lhs_set = frozenset([lhs]) if isinstance(lhs, str) else frozenset(lhs)
    rhs_set = frozenset([rhs]) if isinstance(rhs, str) else frozenset(rhs)
    return FunctionalDependency(relation, lhs_set, rhs_set)


def key(schema: Schema, relation: str, lhs: Iterable[str] | str) -> FunctionalDependency:
    """A key ``R : X -> att(R) \\ X`` written from its determining set."""
    rel = schema.relation(relation)
    lhs_set = frozenset([lhs]) if isinstance(lhs, str) else frozenset(lhs)
    unknown = lhs_set - rel.attribute_set()
    if unknown:
        raise SchemaError(f"key over {relation!r} mentions unknown attributes {sorted(unknown)}")
    rhs_set = rel.attribute_set() - lhs_set
    if not rhs_set:
        raise DependencyError(f"key over {relation!r} with lhs covering all attributes is trivial")
    return FunctionalDependency(relation, lhs_set, rhs_set)


class FDSet:
    """A set ``Σ`` of functional dependencies over a fixed schema.

    Provides satisfaction checking and the classification predicates the
    paper's complexity results are parameterized by (keys / primary keys).
    """

    __slots__ = ("_schema", "_fds")

    def __init__(self, schema: Schema, fds: Iterable[FunctionalDependency]):
        self._schema = schema
        fd_set = frozenset(fds)
        for dependency in fd_set:
            dependency.validate(schema)
        self._fds = fd_set

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def fds(self) -> frozenset[FunctionalDependency]:
        return self._fds

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(sorted(self._fds, key=str))

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, dependency: FunctionalDependency) -> bool:
        return dependency in self._fds

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FDSet):
            return self._schema == other._schema and self._fds == other._fds
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema, self._fds))

    # -- classification -------------------------------------------------------

    def all_keys(self) -> bool:
        """Every FD in Σ is a key."""
        return all(dependency.is_key(self._schema) for dependency in self._fds)

    def is_primary_keys(self) -> bool:
        """Σ is a set of keys with at most one key per relation name."""
        if not self.all_keys():
            return False
        relations = [dependency.relation for dependency in self._fds]
        return len(relations) == len(set(relations))

    def fds_over(self, relation: str) -> list[FunctionalDependency]:
        """The FDs of Σ over one relation name, deterministically ordered."""
        return [d for d in self if d.relation == relation]

    def keys_per_relation(self) -> dict[str, int]:
        """Number of FDs per relation name (the ``k`` in Lemma 7.4's proof)."""
        counts: dict[str, int] = {}
        for dependency in self._fds:
            counts[dependency.relation] = counts.get(dependency.relation, 0) + 1
        return counts

    # -- satisfaction ----------------------------------------------------------

    def satisfied_by(self, database: Database) -> bool:
        """``D |= Σ``."""
        return all(d.satisfied_by(database, self._schema) for d in self._fds)

    def pair_satisfies(self, f: Fact, g: Fact) -> bool:
        """Whether ``{f, g} |= Σ``."""
        return all(d.pair_satisfies(f, g, self._schema) for d in self._fds)

    def violating_pairs(self, database: Database) -> Iterator[tuple[Fact, Fact]]:
        """All unordered pairs ``{f, g} ⊆ D`` with ``{f, g} ̸|= Σ``.

        Pairs are emitted in a deterministic order, each exactly once, as
        ``(f, g)`` with ``f`` before ``g`` in the database's sorted order.
        """
        by_relation = database.by_relation()
        seen: set[frozenset[Fact]] = set()
        for dependency in self:
            facts = sorted(by_relation.get(dependency.relation, ()), key=str)
            for f, g in combinations(facts, 2):
                pair = frozenset((f, g))
                if pair in seen:
                    continue
                if not dependency.pair_satisfies(f, g, self._schema):
                    seen.add(pair)
                    yield f, g

    def __str__(self) -> str:
        return "{" + "; ".join(str(d) for d in self) + "}"


def _resolve_schema(database: Database, schema: Schema | None) -> Schema:
    resolved = schema or database.schema
    if resolved is None:
        raise SchemaError("a schema is required (database carries none)")
    return resolved


def infer_schema(databases: Sequence[Database], names: dict[str, Sequence[str]]) -> Schema:
    """Build a schema from explicit attribute names, checking arities."""
    schema = Schema.from_spec(names)
    for database in databases:
        for f in database:
            if not f.conforms_to(schema):
                raise SchemaError(f"fact {f} does not conform to inferred schema")
    return schema
