"""Vizing-based encoding of graphs as key-inconsistent databases (Prop 5.5).

Proposition 5.5 needs, for a bounded-degree graph ``G``, a database ``D_G``
over a single relation whose conflict graph w.r.t. a set of *keys* ``Σ_K`` is
isomorphic to ``G`` — then ``|CORep(D_G, Σ_K)| = |IS(G)|`` (Lemma 5.4) and
inapproximability of independent-set counting transfers to repair counting.

The construction edge-colours ``G`` with ``Δ + 1`` colours (Vizing's theorem,
made constructive by the Misra–Gries algorithm [20]) and gives each node a
fact over ``R/(Δ+1)``: position ``i`` holds the (shared) identifier of the
node's colour-``i`` edge, or a fresh constant.  ``Σ_K`` holds one key per
position, so two facts conflict exactly when their nodes share an edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.database import Database
from ..core.dependencies import FDSet, FunctionalDependency
from ..core.facts import Fact
from ..core.schema import Schema
from .graphs import Edge, Node, UndirectedGraph


class EdgeColoringError(RuntimeError):
    """Internal failure of the Misra–Gries invariants (should not happen)."""


def misra_gries_edge_coloring(graph: UndirectedGraph) -> dict[Edge, int]:
    """A proper edge colouring with at most ``Δ + 1`` colours, in poly time.

    Implements Misra & Gries' constructive proof of Vizing's theorem:
    repeatedly colour an edge ``(u, v)`` by building a maximal fan of ``u``,
    inverting a ``cd``-path, and rotating a fan prefix.  Colours are
    ``0 .. Δ``.
    """
    if not graph.loop_free():
        raise ValueError("edge colouring requires a loop-free graph")
    palette = range(graph.max_degree() + 1)
    adjacency = {u: sorted(graph.neighbours(u), key=repr) for u in graph.nodes}
    colors: dict[Edge, int] = {}

    def color_of(u: Node, v: Node) -> int | None:
        return colors.get(frozenset((u, v)))

    def used_at(u: Node) -> set[int]:
        return {
            colors[frozenset((u, w))]
            for w in adjacency[u]
            if frozenset((u, w)) in colors
        }

    def is_free(u: Node, colour: int) -> bool:
        return colour not in used_at(u)

    def free_color(u: Node) -> int:
        taken = used_at(u)
        for colour in palette:
            if colour not in taken:
                return colour
        raise EdgeColoringError("no free colour: degree bound violated")

    def maximal_fan(u: Node, v: Node) -> list[Node]:
        fan = [v]
        grown = True
        while grown:
            grown = False
            for w in adjacency[u]:
                if w in fan:
                    continue
                colour = color_of(u, w)
                if colour is not None and is_free(fan[-1], colour):
                    fan.append(w)
                    grown = True
                    break
        return fan

    def is_fan(u: Node, candidate: list[Node]) -> bool:
        if color_of(u, candidate[0]) is not None:
            return False
        for previous, current in zip(candidate, candidate[1:]):
            colour = color_of(u, current)
            if colour is None or not is_free(previous, colour):
                return False
        return True

    def invert_cd_path(u: Node, c: int, d: int) -> None:
        """Swap colours along the maximal path from ``u`` alternating d, c."""
        path = [u]
        want = d
        while True:
            step = next(
                (w for w in adjacency[path[-1]] if color_of(path[-1], w) == want),
                None,
            )
            if step is None or (len(path) >= 2 and step == path[-2]):
                break
            path.append(step)
            want = c if want == d else d
        want = d
        for a, b in zip(path, path[1:]):
            edge = frozenset((a, b))
            colors[edge] = c if colors[edge] == d else d
            want = c if want == d else d

    for raw_edge in sorted(graph.edges, key=repr):
        u, v = sorted(raw_edge, key=repr)
        fan = maximal_fan(u, v)
        c = free_color(u)
        d = free_color(fan[-1])
        if c != d:
            invert_cd_path(u, c, d)
        pivot = next(
            (
                i
                for i, w in enumerate(fan)
                if is_free(w, d) and is_fan(u, fan[: i + 1])
            ),
            None,
        )
        if pivot is None:
            raise EdgeColoringError("no rotatable fan prefix: invariant broken")
        for i in range(pivot):
            colors[frozenset((u, fan[i]))] = colors[frozenset((u, fan[i + 1]))]
        colors[frozenset((u, fan[pivot]))] = d
    return colors


def validate_edge_coloring(graph: UndirectedGraph, colors: dict[Edge, int]) -> None:
    """Raise unless ``colors`` is a proper ``(Δ+1)``-edge-colouring of ``graph``."""
    if set(colors) != set(graph.edges):
        raise EdgeColoringError("colouring does not cover exactly the edge set")
    bound = graph.max_degree() + 1
    for edge, colour in colors.items():
        if not 0 <= colour < bound:
            raise EdgeColoringError(f"edge {set(edge)} uses colour {colour} >= Δ+1")
    for u in graph.nodes:
        incident = [colors[edge] for edge in graph.edges if u in edge]
        if len(incident) != len(set(incident)):
            raise EdgeColoringError(f"two edges at {u!r} share a colour")


@dataclass(frozen=True)
class VizingInstance:
    """``(D_G, Σ_K)`` with the node-to-fact bijection and colouring kept."""

    graph: UndirectedGraph
    database: Database
    constraints: FDSet
    node_to_fact: dict[Node, Fact]
    coloring: dict[Edge, int]


def independent_set_database(graph: UndirectedGraph) -> VizingInstance:
    """The Prop 5.5 construction: ``CG(D_G, Σ_K)`` isomorphic to ``G``.

    Requires a loop-free graph with at least one edge (so that the relation
    arity ``Δ + 1`` is at least two and each positional key is non-trivial).
    """
    if not graph.loop_free():
        raise ValueError("the construction requires a loop-free graph")
    delta = graph.max_degree()
    if delta < 1:
        raise ValueError("the construction needs at least one edge")
    arity = delta + 1
    attributes = [f"A{i + 1}" for i in range(arity)]
    schema = Schema.from_spec({"R": attributes})
    constraints = FDSet(
        schema,
        [
            FunctionalDependency(
                "R",
                frozenset((attribute,)),
                frozenset(attributes) - {attribute},
            )
            for attribute in attributes
        ],
    )
    coloring = misra_gries_edge_coloring(graph)
    validate_edge_coloring(graph, coloring)
    colour_at_node: dict[Node, dict[int, Edge]] = {u: {} for u in graph.nodes}
    for edge, colour in coloring.items():
        for endpoint in edge:
            colour_at_node[endpoint][colour] = edge
    node_to_fact: dict[Node, Fact] = {}
    fresh = 0
    for node in graph.nodes:
        values = []
        for position in range(arity):
            edge = colour_at_node[node].get(position)
            if edge is None:
                values.append(("fresh", fresh))
                fresh += 1
            else:
                values.append(("edge",) + tuple(sorted(edge, key=repr)))
        node_to_fact[node] = Fact("R", tuple(values))
    return VizingInstance(
        graph=graph,
        database=Database(node_to_fact.values(), schema=schema),
        constraints=constraints,
        node_to_fact=node_to_fact,
        coloring=coloring,
    )
