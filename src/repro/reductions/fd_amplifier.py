"""The FD amplifier of Lemma 5.6 and the FPRAS-transfer algorithm.

Given a set of keys ``Σ_K`` over ``{R/n}`` and a non-trivially
``Σ_K``-connected database ``D``, the construction builds, over
``R'/(n+2)`` with attributes ``(A, B, A1..An)``:

* ``Σ_F`` — every key of ``Σ_K`` re-read as a (non-key) FD over ``R'``,
  plus ``R' : A -> B``;
* ``D_F`` — a copy ``R'(a, b, ā)`` of each fact plus the apex fact
  ``f* = R'(a, a, ..., a)`` that conflicts with everything;
* ``Q_F = Ans() :- R'(x, x, ..., x)`` — satisfied only by ``{f*}``.

Then ``|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1`` and
``rrfreq_{Σ_F,Q_F}(D_F) = 1 / (|CORep(D, Σ_K)| + 1)``, so an FPRAS for
``RRFreq`` over FDs would yield an FPRAS for counting repairs under keys —
contradicting Proposition 5.5.  The transfer algorithm ``A`` (compute
``ε' = ε/(2+ε)``, clamp the oracle output from below, return ``1/r − 1``)
is implemented verbatim, as is its singleton-operation sibling (Lemma E.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from ..core.database import Database
from ..core.dependencies import FDSet, FunctionalDependency, fd
from ..core.facts import Fact
from ..core.queries import ConjunctiveQuery, Atom, Variable, boolean_cq
from ..core.schema import Schema

APEX_MARKER = "amplifier_apex"


@dataclass(frozen=True)
class AmplifiedInstance:
    """``(D_F, Σ_F, Q_F)`` together with the apex fact ``f*``."""

    database: Database
    constraints: FDSet
    query: ConjunctiveQuery
    apex: Fact


def amplify(database: Database, constraints: FDSet) -> AmplifiedInstance:
    """Build ``(D_F, Σ_F, Q_F)`` from a keys instance over one relation.

    ``database`` must be over a single relation carrying all of ``Σ_K``.
    The fresh constants ``a``/``b`` use a marker outside ``dom(D)``.
    """
    relations = {dependency.relation for dependency in constraints}
    if len(relations) != 1:
        raise ValueError("the amplifier expects keys over a single relation")
    if not constraints.all_keys():
        raise ValueError("the amplifier expects a set of keys")
    relation = relations.pop()
    base = constraints.schema.relation(relation)
    if database.relation_names() - {relation}:
        raise ValueError("the database must live over the keyed relation only")
    new_relation = f"{relation}_F"
    attributes = ["A", "B"] + [f"{name}_" for name in base.attributes]
    schema = Schema.from_spec({new_relation: attributes})
    lifted = [
        FunctionalDependency(
            new_relation,
            frozenset(f"{name}_" for name in dependency.lhs),
            frozenset(f"{name}_" for name in dependency.rhs),
        )
        for dependency in constraints
    ]
    lifted.append(fd(new_relation, "A", "B"))
    constraints_f = FDSet(schema, lifted)
    a = (APEX_MARKER, "a")
    b = (APEX_MARKER, "b")
    facts = [Fact(new_relation, (a, b) + f.values) for f in database]
    apex = Fact(new_relation, (a,) * (base.arity + 2))
    facts.append(apex)
    x = Variable("x")
    query = boolean_cq(Atom(new_relation, (x,) * (base.arity + 2)))
    return AmplifiedInstance(
        database=Database(facts, schema=schema),
        constraints=constraints_f,
        query=query,
        apex=apex,
    )


RRFreqOracle = Callable[[Database, FDSet, ConjunctiveQuery, tuple], float]


def repair_count_via_rrfreq(
    database: Database,
    constraints: FDSet,
    oracle: RRFreqOracle,
    epsilon: float = 0.2,
    delta: float = 0.05,
) -> Fraction:
    """Lemma 5.6's algorithm ``A``: estimate ``|CORep(D, Σ_K)|``.

    ``oracle(D_F, Σ_F, Q_F, ())`` must behave as an (ε', δ) relative
    approximation of ``rrfreq`` with ``ε' = ε / (2 + ε)``; the algorithm
    then returns an (ε, δ) relative approximation of the repair count.
    Plugging in the exact ``rrfreq`` recovers the count exactly, which is
    how the tests validate the arithmetic of the transfer.  ``epsilon``
    fixes the clamping floor (step 3 of algorithm A); ``delta`` is carried
    by the oracle's own guarantee and is listed here to document the
    contract.
    """
    amplified = amplify(database, constraints)
    epsilon_prime = epsilon / (2.0 + epsilon)
    raw = oracle(amplified.database, amplified.constraints, amplified.query, ())
    floor = Fraction(1 - Fraction(epsilon_prime).limit_denominator(10**9)) / (
        2 * (1 + 2 ** len(database))
    )
    clamped = max(Fraction(raw).limit_denominator(10**12), floor)
    return 1 / clamped - 1


def singleton_repair_count_via_rrfreq1(
    database: Database,
    constraints: FDSet,
    oracle: RRFreqOracle,
    epsilon: float = 0.2,
    delta: float = 0.05,
) -> Fraction:
    """Lemma E.7's variant: ``|CORep¹(D, Σ_K)|`` via a ``rrfreq¹`` oracle.

    The construction is the same amplifier; only the oracle semantics
    (singleton-operation repairs) differ.
    """
    return repair_count_via_rrfreq(database, constraints, oracle, epsilon, delta)
