"""The ♯H-Coloring reduction behind Theorems 5.1(1), 6.1(1) and 7.1(1).

The target graph ``H`` has nodes ``{0, 1, ?}`` and every edge except the
loop on ``1``.  ♯H-Coloring is ♯P-hard by the Dyer–Greenhill dichotomy, and
Appendix B.1 reduces it to ``RRFreq(Σ, Q)`` for the fixed

``Σ = {V : A -> B}``  and  ``Q = Ans() :- E(x, y), V(x, z), V(y, z), T(z)``

via the database ``D_G`` that gives every node both ``V(u, 0)`` and
``V(u, 1)``.  Candidate repairs then choose, per node, value 0, value 1, or
neither — i.e. exactly the maps into ``H`` — and ``D ̸|= Q`` characterizes
homomorphisms.  The oracle identity is ``|hom(G, H)| = 3^{|V|} · (1 − r)``
with ``r = rrfreq_{Σ,Q}(D_G, ())``.

Appendices C.1 and D.1 show ``rrfreq = srfreq = P_{M_uo,Q}`` on these
instances, so the same construction witnesses hardness for all three
uniform semantics.  All of this is executable below and validated against
brute force in the test suite and in bench E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from ..core.database import Database
from ..core.dependencies import FDSet, fd
from ..core.facts import Fact, fact
from ..core.queries import ConjunctiveQuery, atom, boolean_cq, var
from ..core.schema import Schema
from .graphs import UndirectedGraph

#: The paper's fixed target graph: all edges over {0, 1, ?} except the 1-loop.
H_GRAPH = UndirectedGraph.of(
    (0, 1, "?"),
    [(0, 0), (0, 1), (0, "?"), (1, "?"), ("?", "?")],
)


@dataclass(frozen=True)
class HColoringInstance:
    """The OCQA instance ``(D_G, Σ, Q)`` encoding an input graph ``G``."""

    graph: UndirectedGraph
    database: Database
    constraints: FDSet
    query: ConjunctiveQuery

    def repair_space_size(self) -> int:
        """``3^{|V_G|}``: the number of candidate repairs of ``D_G``."""
        return 3 ** self.graph.node_count()


def hcoloring_schema() -> Schema:
    """The fixed schema ``{V/2, E/2, T/1}`` of the reduction."""
    return Schema.from_spec({"V": ["A", "B"], "E": ["A", "B"], "T": ["A"]})


def hcoloring_constraints(schema: Schema | None = None) -> FDSet:
    """``Σ = {V : A -> B}`` — a single primary key."""
    return FDSet(schema or hcoloring_schema(), [fd("V", "A", "B")])


def hcoloring_query() -> ConjunctiveQuery:
    """``Q = Ans() :- E(x, y), V(x, z), V(y, z), T(z)``."""
    x, y, z = var("x"), var("y"), var("z")
    return boolean_cq(
        atom("E", x, y), atom("V", x, z), atom("V", y, z), atom("T", z)
    )


def hcoloring_instance(graph: UndirectedGraph) -> HColoringInstance:
    """Build ``D_G`` for a loop-free input graph ``G``."""
    if not graph.loop_free():
        raise ValueError("♯H-Coloring inputs are loop-free graphs")
    schema = hcoloring_schema()
    facts: list[Fact] = [fact("T", 1)]
    for node in graph.nodes:
        facts.append(fact("V", node, 0))
        facts.append(fact("V", node, 1))
    for edge in graph.edges:
        u, v = sorted(edge, key=repr)
        facts.append(fact("E", u, v))
    return HColoringInstance(
        graph=graph,
        database=Database(facts, schema=schema),
        constraints=hcoloring_constraints(schema),
        query=hcoloring_query(),
    )


def count_h_colorings(graph: UndirectedGraph) -> int:
    """``|hom(G, H)|`` by brute force (ground truth for the oracle identity)."""
    return graph.count_homomorphisms_to(H_GRAPH)


RRFreqOracle = Callable[[Database, tuple], Fraction]


def hom_count_via_oracle(
    graph: UndirectedGraph, oracle: RRFreqOracle
) -> int:
    """The ``HOM`` algorithm of Appendix B.1: ``3^{|V|} · (1 − r)``.

    ``oracle`` plays the role of the ``RRFreq(Σ, Q)`` oracle of the Turing
    reduction; with an exact oracle the output is exactly ``|hom(G, H)|``.
    """
    instance = hcoloring_instance(graph)
    ratio = oracle(instance.database, ())
    value = instance.repair_space_size() * (1 - Fraction(ratio))
    if value.denominator != 1:
        raise ValueError(
            "oracle returned a ratio incompatible with the 3^|V| repair space"
        )
    return int(value)


def repair_to_mapping(
    instance: HColoringInstance, repair: Database
) -> dict[object, object]:
    """The map ``V_G -> {0, 1, ?}`` a candidate repair encodes (proof of B.1)."""
    mapping: dict[object, object] = {}
    for node in instance.graph.nodes:
        keeps_zero = fact("V", node, 0) in repair
        keeps_one = fact("V", node, 1) in repair
        if keeps_zero and keeps_one:
            raise ValueError("not a repair: both V-facts of a node survive")
        if keeps_one:
            mapping[node] = 1
        elif keeps_zero:
            mapping[node] = 0
        else:
            mapping[node] = "?"
    return mapping


def is_h_homomorphism(graph: UndirectedGraph, mapping: dict) -> bool:
    """Whether a node map lands in ``H`` on every edge of ``G``."""
    for edge in graph.edges:
        u, v = tuple(edge) if len(edge) == 2 else (next(iter(edge)),) * 2
        image = (
            frozenset((mapping[u], mapping[v]))
            if mapping[u] != mapping[v]
            else frozenset((mapping[u],))
        )
        if image not in H_GRAPH.edges:
            return False
    return True
