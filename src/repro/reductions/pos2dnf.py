"""The ♯Pos2DNF reduction for singleton operations (Appendix E).

Counting satisfying assignments of positive 2DNF formulas is ♯P-hard
(Provan–Ball).  Appendix E reduces it to ``RRFreq¹(Σ, Q)`` (Theorem E.1(1)),
``SRFreq¹`` (Theorem E.8(1)) and ``OCQA(Σ, M_uo,1, Q)`` (Theorem E.11) via

``Σ = {V : A -> B}``  and  ``Q = Ans() :- C(x, y), V(x, z), V(y, z), T(z)``

over ``D_φ`` holding ``V(c_x, 0), V(c_x, 1)`` per variable and ``C`` facts
per clause.  With singleton removals, repairs keep exactly one ``V``-fact per
variable, i.e. they *are* truth assignments, and

``rrfreq¹ = srfreq¹ = P_{M_uo,1,Q} = |sat(φ)| / 2^{|var(φ)|}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Callable, Iterator

from ..core.database import Database
from ..core.dependencies import FDSet, fd
from ..core.facts import Fact, fact
from ..core.queries import ConjunctiveQuery, atom, boolean_cq, var
from ..core.schema import Schema


@dataclass(frozen=True)
class Pos2DNF:
    """A positive 2DNF formula: a disjunction of two-variable conjunctions."""

    clauses: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("a positive 2DNF formula needs at least one clause")
        normalized = tuple(tuple(clause) for clause in self.clauses)
        object.__setattr__(self, "clauses", normalized)

    def variables(self) -> tuple[str, ...]:
        """``var(φ)`` in first-appearance order."""
        seen: list[str] = []
        for first, second in self.clauses:
            for name in (first, second):
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def evaluate(self, assignment: dict[str, int]) -> bool:
        """Whether the assignment satisfies some clause."""
        return any(
            assignment[first] == 1 and assignment[second] == 1
            for first, second in self.clauses
        )

    def assignments(self) -> Iterator[dict[str, int]]:
        names = self.variables()
        for values in product((0, 1), repeat=len(names)):
            yield dict(zip(names, values))

    def count_satisfying(self) -> int:
        """``|sat(φ)|`` by brute force (exponential; ground truth in tests)."""
        return sum(1 for assignment in self.assignments() if self.evaluate(assignment))

    def __str__(self) -> str:
        return " v ".join(f"({first} & {second})" for first, second in self.clauses)


@dataclass(frozen=True)
class Pos2DNFInstance:
    """The OCQA instance ``(D_φ, Σ, Q)`` encoding a formula."""

    formula: Pos2DNF
    database: Database
    constraints: FDSet
    query: ConjunctiveQuery

    def singleton_repair_space_size(self) -> int:
        """``2^{|var(φ)|}``: the number of singleton-operation repairs."""
        return 2 ** len(self.formula.variables())


def pos2dnf_schema() -> Schema:
    """The fixed schema ``{V/2, C/2, T/1}``."""
    return Schema.from_spec({"V": ["A", "B"], "C": ["A", "B"], "T": ["A"]})


def pos2dnf_constraints(schema: Schema | None = None) -> FDSet:
    """``Σ = {V : A -> B}``."""
    return FDSet(schema or pos2dnf_schema(), [fd("V", "A", "B")])


def pos2dnf_query() -> ConjunctiveQuery:
    """``Q = Ans() :- C(x, y), V(x, z), V(y, z), T(z)``."""
    x, y, z = var("x"), var("y"), var("z")
    return boolean_cq(
        atom("C", x, y), atom("V", x, z), atom("V", y, z), atom("T", z)
    )


def pos2dnf_instance(formula: Pos2DNF) -> Pos2DNFInstance:
    """Build ``D_φ`` for a positive 2DNF formula."""
    schema = pos2dnf_schema()
    facts: list[Fact] = [fact("T", 1)]
    for name in formula.variables():
        facts.append(fact("V", f"c_{name}", 0))
        facts.append(fact("V", f"c_{name}", 1))
    for first, second in formula.clauses:
        facts.append(fact("C", f"c_{first}", f"c_{second}"))
    return Pos2DNFInstance(
        formula=formula,
        database=Database(facts, schema=schema),
        constraints=pos2dnf_constraints(schema),
        query=pos2dnf_query(),
    )


RRFreq1Oracle = Callable[[Database, tuple], Fraction]


def sat_count_via_oracle(formula: Pos2DNF, oracle: RRFreq1Oracle) -> int:
    """The ``SAT`` algorithm of Appendix E.1: ``2^{|var(φ)|} · r``.

    ``oracle`` plays the ``RRFreq¹(Σ, Q)`` oracle of the Turing reduction;
    exact oracles recover ``|sat(φ)|`` exactly.
    """
    instance = pos2dnf_instance(formula)
    ratio = oracle(instance.database, ())
    value = instance.singleton_repair_space_size() * Fraction(ratio)
    if value.denominator != 1:
        raise ValueError(
            "oracle returned a ratio incompatible with the 2^|var| repair space"
        )
    return int(value)


def repair_to_assignment(
    instance: Pos2DNFInstance, repair: Database
) -> dict[str, int]:
    """The truth assignment a singleton-operation repair encodes."""
    assignment: dict[str, int] = {}
    for name in instance.formula.variables():
        keeps_one = fact("V", f"c_{name}", 1) in repair
        keeps_zero = fact("V", f"c_{name}", 0) in repair
        if keeps_one == keeps_zero:
            raise ValueError("not a singleton repair: each variable keeps one V-fact")
        assignment[name] = 1 if keeps_one else 0
    return assignment
