"""Proposition D.6's family: exponentially small ``M_uo`` probabilities.

``D_n`` holds ``R(0, 0, 0)`` plus ``n − 1`` facts ``R(0, 1, i)``, with
``Σ = {R : A1 -> A2}`` (a non-key FD) and the atomic query
``Q = Ans() :- R(0, 0, 0)``.  Every ``R(0, 1, i)`` conflicts with
``R(0, 0, 0)`` and with nothing else, so keeping the centre requires the
walk to pick, at every step, one of the ``p`` singleton removals of spoke
facts out of ``1 + 2p`` justified operations (remove centre, remove a spoke,
or remove a centre+spoke pair).  Hence

``P_{M_uo,Q}(D_n, ()) = Π_{j=1}^{n-1} j / (2j + 1)  <  1 / 2^{n-1}``,

which is why Monte Carlo cannot give an FPRAS for ``M_uo`` with FDs: the
walk almost never sees the event whose probability it must estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.database import Database
from ..core.dependencies import FDSet, fd
from ..core.facts import Fact, fact
from ..core.queries import Atom, ConjunctiveQuery, boolean_cq
from ..core.schema import Schema


@dataclass(frozen=True)
class PathologicalInstance:
    """``(D_n, Σ, Q)`` with the centre fact exposed."""

    n: int
    database: Database
    constraints: FDSet
    query: ConjunctiveQuery
    centre: Fact


def pathological_schema() -> Schema:
    """The fixed schema ``{R/3}`` with attributes ``A1, A2, A3``."""
    return Schema.from_spec({"R": ["A1", "A2", "A3"]})


def pathological_instance(n: int) -> PathologicalInstance:
    """Build ``D_n`` (``n >= 1`` facts)."""
    if n < 1:
        raise ValueError("the family D_n is defined for n >= 1")
    schema = pathological_schema()
    centre = fact("R", 0, 0, 0)
    facts = [centre] + [fact("R", 0, 1, i) for i in range(1, n)]
    return PathologicalInstance(
        n=n,
        database=Database(facts, schema=schema),
        constraints=FDSet(schema, [fd("R", "A1", "A2")]),
        query=boolean_cq(Atom("R", (0, 0, 0))),
        centre=centre,
    )


def exact_centre_probability(n: int) -> Fraction:
    """Closed-form ``P_{M_uo,Q}(D_n, ()) = Π_{j=1}^{n-1} j / (2j + 1)``.

    Derivation: with ``p`` spokes left, ``1 + 2p`` operations are justified
    and exactly the ``p`` spoke-singleton removals keep the centre alive;
    each leaves ``p − 1`` spokes.  Telescoping from ``p = n − 1`` down to 0
    gives the product.  Cross-checked against the state-space DP in tests.
    """
    if n < 1:
        raise ValueError("the family D_n is defined for n >= 1")
    probability = Fraction(1)
    for j in range(1, n):
        probability *= Fraction(j, 2 * j + 1)
    return probability


def proposition_d6_upper_bound(n: int) -> Fraction:
    """The bound ``1 / 2^{n-1}`` stated by Proposition D.6."""
    if n < 1:
        raise ValueError("the family D_n is defined for n >= 1")
    return Fraction(1, 2 ** (n - 1))
