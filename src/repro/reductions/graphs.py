"""Minimal undirected-graph substrate for the hardness reductions.

Nodes are arbitrary hashables; an edge is a frozenset of one node (a self
loop, needed by the ♯H-Coloring target graph) or two nodes.  Only the small
amount of graph theory the reductions require lives here: degrees,
connectivity, homomorphism counting, and independent-set counting for
loop-free graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable
Edge = frozenset


@dataclass(frozen=True)
class UndirectedGraph:
    """An immutable undirected graph, possibly with self loops."""

    nodes: tuple[Node, ...]
    edges: frozenset[Edge]

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise ValueError("duplicate nodes")
        for edge in self.edges:
            if not 1 <= len(edge) <= 2:
                raise ValueError(f"malformed edge {set(edge)}")
            if not edge <= node_set:
                raise ValueError(f"edge {set(edge)} mentions unknown nodes")

    @classmethod
    def of(cls, nodes: Iterable[Node], edges: Iterable[tuple[Node, Node]]) -> "UndirectedGraph":
        """Build from node iterable and (u, v) pairs; ``u == v`` is a loop."""
        return cls(tuple(nodes), frozenset(frozenset((u, v)) for u, v in edges))

    # -- structure ----------------------------------------------------------------

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    def has_edge(self, u: Node, v: Node) -> bool:
        return frozenset((u, v)) in self.edges

    def has_loop(self, u: Node) -> bool:
        return frozenset((u,)) in self.edges

    def loop_free(self) -> bool:
        return all(len(edge) == 2 for edge in self.edges)

    def neighbours(self, u: Node) -> frozenset[Node]:
        """Adjacent nodes; a loop makes ``u`` its own neighbour."""
        found = set()
        for edge in self.edges:
            if u in edge:
                found.update(edge if len(edge) == 2 else (u,))
        found_other = {v for v in found if v != u}
        if self.has_loop(u):
            found_other.add(u)
        return frozenset(found_other)

    def degree(self, u: Node) -> int:
        """Number of edges incident to ``u`` (a loop counts once)."""
        return sum(1 for edge in self.edges if u in edge)

    def max_degree(self) -> int:
        if not self.nodes:
            return 0
        return max(self.degree(u) for u in self.nodes)

    def adjacency(self) -> dict[Node, frozenset[Node]]:
        return {u: self.neighbours(u) for u in self.nodes}

    # -- connectivity ---------------------------------------------------------------

    def connected_components(self) -> list[frozenset[Node]]:
        remaining = set(self.nodes)
        components = []
        for start in self.nodes:
            if start not in remaining:
                continue
            component = {start}
            frontier = [start]
            remaining.discard(start)
            while frontier:
                current = frontier.pop()
                for neighbour in self.neighbours(current):
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(component))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    def is_nontrivially_connected(self) -> bool:
        """At least two nodes and connected (Section 5's notion)."""
        return self.node_count() >= 2 and self.is_connected()

    # -- homomorphisms -----------------------------------------------------------------

    def homomorphisms_to(self, target: "UndirectedGraph") -> Iterator[dict[Node, Node]]:
        """All homomorphisms from ``self`` (loop-free) into ``target``.

        A mapping ``h`` qualifies when every edge ``{u, v}`` of ``self`` has
        ``{h(u), h(v)}`` an edge of ``target`` (a loop when ``h(u) = h(v)``).
        Backtracking over nodes, checking edges into the assigned prefix.
        """
        order = list(self.nodes)
        assignment: dict[Node, Node] = {}

        def compatible(u: Node, image: Node) -> bool:
            for v in self.neighbours(u):
                if v == u:
                    if not target.has_loop(image):
                        return False
                elif v in assignment:
                    image_edge = (
                        frozenset((image, assignment[v]))
                        if image != assignment[v]
                        else frozenset((image,))
                    )
                    if image_edge not in target.edges:
                        return False
            return True

        def extend(position: int) -> Iterator[dict[Node, Node]]:
            if position == len(order):
                yield dict(assignment)
                return
            u = order[position]
            for image in target.nodes:
                if compatible(u, image):
                    assignment[u] = image
                    yield from extend(position + 1)
                    del assignment[u]

        yield from extend(0)

    def count_homomorphisms_to(self, target: "UndirectedGraph") -> int:
        """``|hom(self, target)|`` by exhaustive backtracking."""
        return sum(1 for _ in self.homomorphisms_to(target))

    # -- independent sets ------------------------------------------------------------------

    def count_independent_sets(self) -> int:
        """``|IS(G)|`` for loop-free graphs, by branch-and-memoize."""
        if not self.loop_free():
            raise ValueError("independent sets are defined for loop-free graphs here")
        adjacency = self.adjacency()
        cache: dict[frozenset[Node], int] = {}
        order = list(self.nodes)

        def count(available: frozenset[Node]) -> int:
            if available in cache:
                return cache[available]
            pick = next((u for u in order if u in available), None)
            if pick is None:
                result = 1
            else:
                without = available - {pick}
                result = count(without) + count(without - adjacency[pick])
            cache[available] = result
            return result

        return count(frozenset(self.nodes))

    def count_nonempty_independent_sets(self) -> int:
        """``|IS≠∅(G)|`` (Lemma E.6's quantity)."""
        return self.count_independent_sets() - 1

    def independent_sets(self) -> Iterator[frozenset[Node]]:
        """Enumerate all independent sets (loop-free graphs)."""
        if not self.loop_free():
            raise ValueError("independent sets are defined for loop-free graphs here")
        adjacency = self.adjacency()
        order = list(self.nodes)

        def recurse(available: frozenset[Node]) -> Iterator[frozenset[Node]]:
            pick = next((u for u in order if u in available), None)
            if pick is None:
                yield frozenset()
                return
            without = available - {pick}
            yield from recurse(without)
            for inner in recurse(without - adjacency[pick]):
                yield inner | {pick}

        yield from recurse(frozenset(self.nodes))


def path_graph(n: int) -> UndirectedGraph:
    """The path ``P_n`` on nodes ``0..n-1``."""
    return UndirectedGraph.of(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> UndirectedGraph:
    """The cycle ``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least three nodes")
    return UndirectedGraph.of(range(n), [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> UndirectedGraph:
    """The clique ``K_n``."""
    return UndirectedGraph.of(
        range(n), [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def star_graph(n: int) -> UndirectedGraph:
    """A star: centre ``0`` joined to ``1..n``."""
    return UndirectedGraph.of(range(n + 1), [(0, i) for i in range(1, n + 1)])


def relabel(graph: UndirectedGraph, mapping: Mapping[Node, Node]) -> UndirectedGraph:
    """A copy of ``graph`` with nodes renamed through ``mapping``."""
    return UndirectedGraph(
        tuple(mapping[u] for u in graph.nodes),
        frozenset(frozenset(mapping[u] for u in edge) for edge in graph.edges),
    )
