"""Realistic scenarios used by the examples.

The data-integration scenario generalizes the paper's introduction: several
sources report employee records; merging them violates the key of ``Emp``;
trust in sources maps onto probabilities of the operations that delete their
tuples.  The paper's motivating two-fact example (``Emp(1, Alice)`` vs
``Emp(1, Tom)``, 50%/50% trust) is the special case with two sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.database import Database
from ..core.dependencies import FDSet, key
from ..core.facts import Fact, fact
from ..core.queries import ConjunctiveQuery, Variable, atom, cq
from ..core.schema import Schema
from ..sampling.rng import resolve_rng


@dataclass(frozen=True)
class IntegrationScenario:
    """A merged employee database with per-fact source attribution."""

    database: Database
    constraints: FDSet
    source_of: dict[Fact, str]

    def query_name_by_id(self) -> ConjunctiveQuery:
        """``Ans(n) :- Emp(i, n)`` specialized per employee id by binding."""
        i, n = Variable("i"), Variable("n")
        return cq((i, n), (atom("Emp", i, n),))


def intro_example() -> IntegrationScenario:
    """The paper's introduction example: two sources disagree on id 1."""
    schema = Schema.from_spec({"Emp": ["id", "name"]})
    constraints = FDSet(schema, [key(schema, "Emp", "id")])
    alice = fact("Emp", 1, "Alice")
    tom = fact("Emp", 1, "Tom")
    return IntegrationScenario(
        database=Database([alice, tom], schema=schema),
        constraints=constraints,
        source_of={alice: "source_A", tom: "source_B"},
    )


@dataclass(frozen=True)
class OrdersScenario:
    """A two-relation retail scenario with key violations in both tables."""

    database: Database
    constraints: FDSet

    def customer_spend_query(self) -> ConjunctiveQuery:
        """``Ans(n, t) :- Customer(i, n), Order(o, i, t)``: a join whose
        answers depend on which conflicting tuples survive repair."""
        i, n, o, t = (Variable(x) for x in "inot")
        return cq((n, t), (atom("Customer", i, n), atom("Order", o, i, t)))

    def customer_names_query(self) -> ConjunctiveQuery:
        """``Ans(n) :- Customer(i, n)``: which names survive repair at all."""
        i, n = Variable("i"), Variable("n")
        return cq((n,), (atom("Customer", i, n),))


def orders_scenario(
    n_customers: int = 4,
    n_orders: int = 6,
    conflict_rate: float = 0.5,
    rng: random.Random | None = None,
) -> OrdersScenario:
    """Customers and orders with primary keys on both relations.

    With probability ``conflict_rate`` a customer has a second conflicting
    name record, and an order a second conflicting total — so repairs must
    choose per entity, and join answers carry non-trivial probabilities.
    """
    rng = resolve_rng(rng)
    schema = Schema.from_spec(
        {"Customer": ["id", "name"], "Order": ["oid", "cust", "total"]}
    )
    constraints = FDSet(
        schema,
        [key(schema, "Customer", "id"), key(schema, "Order", "oid")],
    )
    facts: list[Fact] = []
    for customer in range(n_customers):
        facts.append(fact("Customer", customer, f"name{customer}"))
        if rng.random() < conflict_rate:
            facts.append(fact("Customer", customer, f"name{customer}_alt"))
    for order in range(n_orders):
        customer = rng.randrange(n_customers)
        total = (order + 1) * 10
        facts.append(fact("Order", order, customer, total))
        if rng.random() < conflict_rate:
            facts.append(fact("Order", order, customer, total + 5))
    return OrdersScenario(
        database=Database(facts, schema=schema), constraints=constraints
    )


def merged_sources(
    n_employees: int,
    n_sources: int,
    disagreement_rate: float = 0.4,
    rng: random.Random | None = None,
) -> IntegrationScenario:
    """Merge ``n_sources`` feeds of ``n_employees`` records.

    Every source reports every employee; with probability
    ``disagreement_rate`` a source reports its own variant of the name,
    otherwise the canonical one — so each employee id forms a block whose
    size is the number of *distinct* reported names.
    """
    rng = resolve_rng(rng)
    schema = Schema.from_spec({"Emp": ["id", "name"]})
    constraints = FDSet(schema, [key(schema, "Emp", "id")])
    facts: set[Fact] = set()
    source_of: dict[Fact, str] = {}
    for employee in range(n_employees):
        canonical = f"name{employee}"
        for source in range(n_sources):
            if rng.random() < disagreement_rate:
                reported = f"{canonical}_v{source}"
            else:
                reported = canonical
            record = fact("Emp", employee, reported)
            if record not in facts:
                facts.add(record)
                source_of[record] = f"source_{source}"
    return IntegrationScenario(
        database=Database(facts, schema=schema),
        constraints=constraints,
        source_of=source_of,
    )
