"""Workloads with controlled inconsistency, in the style of the CQA
benchmarking literature the paper cites ([4]: "Benchmarking Approximate
Consistent Query Answering").

That line of work parameterizes synthetic instances by an *inconsistency
ratio* — the fraction of facts involved in at least one conflict — and by
the conflict shape (block sizes).  :func:`database_with_inconsistency`
produces primary-key instances hitting a target ratio exactly, which the
scaling benches and the analysis module consume.
"""

from __future__ import annotations

import random

from ..core.database import Database
from ..core.dependencies import FDSet, fd
from ..core.facts import fact
from ..core.schema import Schema
from ..sampling.rng import resolve_rng


def database_with_inconsistency(
    n_facts: int,
    inconsistency_ratio: float,
    block_size: int = 2,
    rng: random.Random | None = None,
) -> tuple[Database, FDSet]:
    """A primary-key instance with an exact target inconsistency ratio.

    ``inconsistency_ratio`` is the fraction of facts that participate in a
    conflict; conflicting facts are grouped into blocks of ``block_size``
    (the last conflicting block may be smaller but never below two facts).
    The remaining facts are conflict-free singleton blocks.

    The achievable ratios are quantized by ``n_facts`` (at least two
    conflicting facts are needed for any inconsistency); the generator
    rounds to the nearest achievable count and never exceeds the target by
    more than one fact.
    """
    if not 0.0 <= inconsistency_ratio <= 1.0:
        raise ValueError("inconsistency_ratio must lie in [0, 1]")
    if n_facts < 1:
        raise ValueError("need at least one fact")
    if block_size < 2:
        raise ValueError("conflicting blocks need at least two facts")
    rng = resolve_rng(rng)
    schema = Schema.from_spec({"R": ["A1", "A2"]})
    constraints = FDSet(schema, [fd("R", "A1", "A2")])

    conflicting = round(n_facts * inconsistency_ratio)
    if conflicting == 1:
        conflicting = 2 if inconsistency_ratio > 0.5 / n_facts else 0
    conflicting = min(conflicting, n_facts)
    if conflicting == n_facts - 1:
        # A single leftover clean fact is fine; but a leftover conflicting
        # "block" of one is not a conflict, so fold counts below two.
        pass

    facts = []
    block_index = 0
    remaining = conflicting
    while remaining >= 2:
        size = min(block_size, remaining)
        if remaining - size == 1:
            size += 1 if size < remaining else 0
            size = min(size, remaining)
            if remaining - size == 1:
                size = remaining  # avoid stranding a single conflicting fact
        for member in range(size):
            facts.append(fact("R", f"c{block_index}", f"v{member}"))
        remaining -= size
        block_index += 1
    clean_needed = n_facts - len(facts)
    for index in range(clean_needed):
        facts.append(fact("R", f"clean{index}", "v0"))
    database = Database(facts, schema=schema)
    return database, constraints


def achieved_inconsistency_ratio(database: Database, constraints: FDSet) -> float:
    """The fraction of facts in at least one conflict (for verification)."""
    from ..core.violations import facts_in_violation

    if len(database) == 0:
        return 0.0
    return len(facts_in_violation(database, constraints)) / len(database)
