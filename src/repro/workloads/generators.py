"""Synthetic database workloads.

Instance families used across the examples, tests and benches:

* *block databases* — one relation with a primary key; conflicts form
  blocks of configurable sizes (the Sections 5/6 setting);
* *multi-key databases* — one relation with several keys, built from
  bounded-degree graphs through the Prop 5.5 encoding (the Section 7
  setting, conflict structure strictly richer than blocks);
* *FD star databases* — a non-key FD with star-shaped conflicts, scaling
  the Prop D.6 pathology;
* *random 2DNF formulas* — inputs for the Appendix E reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.database import Database
from ..core.dependencies import FDSet, fd
from ..core.facts import fact
from ..core.queries import ConjunctiveQuery, Variable, atom, cq
from ..core.schema import Schema
from ..reductions.pos2dnf import Pos2DNF
from ..reductions.vizing import VizingInstance, independent_set_database
from ..sampling.rng import resolve_rng
from .graphs import random_connected_bounded_degree_graph


@dataclass(frozen=True)
class Workload:
    """A generated instance: database, constraints, and a natural query."""

    database: Database
    constraints: FDSet
    query: ConjunctiveQuery
    description: str


def block_database(block_sizes: list[int] | tuple[int, ...]) -> tuple[Database, FDSet]:
    """A relation ``R(A1, A2)`` with primary key ``A1`` and given block sizes.

    Block ``i`` holds facts ``R(a_i, b_0) .. R(a_i, b_{m-1})`` — the shape of
    Figure 2 (whose sizes are ``(3, 1, 2)``).
    """
    schema = Schema.from_spec({"R": ["A1", "A2"]})
    constraints = FDSet(schema, [fd("R", "A1", "A2")])
    facts = [
        fact("R", f"a{i}", f"b{j}")
        for i, size in enumerate(block_sizes)
        for j in range(size)
    ]
    return Database(facts, schema=schema), constraints


def figure2_database() -> tuple[Database, FDSet]:
    """The exact database of Figure 2 (blocks ``{a1: 3, a2: 1, a3: 2}``)."""
    schema = Schema.from_spec({"R": ["A1", "A2"]})
    constraints = FDSet(schema, [fd("R", "A1", "A2")])
    facts = [
        fact("R", "a1", "b1"),
        fact("R", "a1", "b2"),
        fact("R", "a1", "b3"),
        fact("R", "a2", "b1"),
        fact("R", "a3", "b1"),
        fact("R", "a3", "b2"),
    ]
    return Database(facts, schema=schema), constraints


def random_block_database(
    n_blocks: int,
    max_block_size: int,
    rng: random.Random | None = None,
    min_block_size: int = 1,
) -> tuple[Database, FDSet]:
    """Random block sizes in ``[min, max]`` (primary-key workload)."""
    rng = resolve_rng(rng)
    sizes = [rng.randint(min_block_size, max_block_size) for _ in range(n_blocks)]
    return block_database(sizes)


def block_membership_query() -> ConjunctiveQuery:
    """``Ans(x) :- R(x, y)``: which key groups survive, with what probability."""
    x, y = Variable("x"), Variable("y")
    return cq((x,), (atom("R", x, y),))


def block_pair_query() -> ConjunctiveQuery:
    """``Ans() :- R(x, y), R(z, y)``: a Boolean join across blocks."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return cq((), (atom("R", x, y), atom("R", z, y)))


def multikey_database(
    n_nodes: int,
    max_degree: int = 3,
    rng: random.Random | None = None,
) -> VizingInstance:
    """An arbitrary-keys workload via the Prop 5.5 graph encoding.

    The conflict graph is a random connected degree-bounded graph, giving
    conflict structure no primary-key instance can express.
    """
    rng = resolve_rng(rng)
    graph = random_connected_bounded_degree_graph(n_nodes, max_degree, rng)
    return independent_set_database(graph)


def fd_star_database(
    n_stars: int, spokes_per_star: int
) -> tuple[Database, FDSet]:
    """Non-key FD ``R : A1 -> A2`` with ``n_stars`` independent stars.

    Each star is a Prop D.6 gadget: one centre ``R(s, 0, 0)`` conflicting
    with ``spokes_per_star`` spokes ``R(s, 1, i)``; spokes do not conflict
    with one another.
    """
    schema = Schema.from_spec({"R": ["A1", "A2", "A3"]})
    constraints = FDSet(schema, [fd("R", "A1", "A2")])
    facts = []
    for star in range(n_stars):
        facts.append(fact("R", f"s{star}", 0, 0))
        facts.extend(
            fact("R", f"s{star}", 1, i) for i in range(1, spokes_per_star + 1)
        )
    return Database(facts, schema=schema), constraints


def star_centre_query() -> ConjunctiveQuery:
    """``Ans(x) :- R(x, 0, 0)``: which star centres survive."""
    x = Variable("x")
    return cq((x,), (atom("R", x, 0, 0),))


def random_pos2dnf(
    n_variables: int, n_clauses: int, rng: random.Random | None = None
) -> Pos2DNF:
    """A random positive 2DNF formula over ``x0..x{n-1}``."""
    rng = resolve_rng(rng)
    if n_variables < 2:
        raise ValueError("need at least two variables for binary clauses")
    clauses = []
    for _ in range(n_clauses):
        first, second = rng.sample(range(n_variables), 2)
        clauses.append((f"x{first}", f"x{second}"))
    return Pos2DNF(tuple(clauses))
