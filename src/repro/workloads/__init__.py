"""Synthetic workload generators for examples, tests and benches."""

from .generators import (
    Workload,
    block_database,
    block_membership_query,
    block_pair_query,
    fd_star_database,
    figure2_database,
    multikey_database,
    random_block_database,
    random_pos2dnf,
    star_centre_query,
)
from .graphs import (
    random_bounded_degree_graph,
    random_connected_bounded_degree_graph,
    random_connected_graph,
    random_graph,
)
from .inconsistency import achieved_inconsistency_ratio, database_with_inconsistency
from .scenarios import (
    IntegrationScenario,
    OrdersScenario,
    intro_example,
    merged_sources,
    orders_scenario,
)

__all__ = [
    "IntegrationScenario",
    "OrdersScenario",
    "achieved_inconsistency_ratio",
    "database_with_inconsistency",
    "Workload",
    "block_database",
    "block_membership_query",
    "block_pair_query",
    "fd_star_database",
    "figure2_database",
    "intro_example",
    "merged_sources",
    "orders_scenario",
    "multikey_database",
    "random_block_database",
    "random_bounded_degree_graph",
    "random_connected_bounded_degree_graph",
    "random_connected_graph",
    "random_graph",
    "random_pos2dnf",
    "star_centre_query",
]
