"""Synthetic workload generators for examples, tests and benches.

Four instance families, each tied to a part of the paper: block databases
(the §5/§6 primary-key setting), multi-key databases via Prop 5.5's graph
encoding (§7), FD stars scaling Prop D.6's pathology, and the
inconsistency-ratio protocol of the paper's benchmarking reference [4];
plus the worked scenarios (Figure 2, the introduction's data-integration
example) used throughout the docs.
"""

from .generators import (
    Workload,
    block_database,
    block_membership_query,
    block_pair_query,
    fd_star_database,
    figure2_database,
    multikey_database,
    random_block_database,
    random_pos2dnf,
    star_centre_query,
)
from .graphs import (
    random_bounded_degree_graph,
    random_connected_bounded_degree_graph,
    random_connected_graph,
    random_graph,
)
from .inconsistency import achieved_inconsistency_ratio, database_with_inconsistency
from .scenarios import (
    IntegrationScenario,
    OrdersScenario,
    intro_example,
    merged_sources,
    orders_scenario,
)

__all__ = [
    "IntegrationScenario",
    "OrdersScenario",
    "achieved_inconsistency_ratio",
    "database_with_inconsistency",
    "Workload",
    "block_database",
    "block_membership_query",
    "block_pair_query",
    "fd_star_database",
    "figure2_database",
    "intro_example",
    "merged_sources",
    "orders_scenario",
    "multikey_database",
    "random_block_database",
    "random_bounded_degree_graph",
    "random_connected_bounded_degree_graph",
    "random_connected_graph",
    "random_graph",
    "random_pos2dnf",
    "star_centre_query",
]
