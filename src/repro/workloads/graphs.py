"""Random graph workloads for the reduction and scaling experiments.

The hardness constructions consume graphs: ♯H-Coloring (Theorem 5.1(1))
takes arbitrary graphs, while Prop 5.5's independent-set encoding requires
*degree-bounded* inputs (its relation arity is the maximum degree plus
one) and the `multikey` workloads additionally want them connected.  The
generators here produce those inputs reproducibly from a seeded RNG.
"""

from __future__ import annotations

import random

from ..reductions.graphs import UndirectedGraph
from ..sampling.rng import resolve_rng


def random_graph(
    n: int, edge_probability: float, rng: random.Random | None = None
) -> UndirectedGraph:
    """An Erdős–Rényi ``G(n, p)`` graph on nodes ``0..n-1`` (loop-free)."""
    rng = resolve_rng(rng)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return UndirectedGraph.of(range(n), edges)


def random_connected_graph(
    n: int, extra_edge_probability: float = 0.2, rng: random.Random | None = None
) -> UndirectedGraph:
    """A connected graph: a random spanning tree plus extra random edges."""
    rng = resolve_rng(rng)
    if n < 1:
        raise ValueError("need at least one node")
    edges: set[tuple[int, int]] = set()
    for node in range(1, n):
        parent = rng.randrange(node)
        edges.add((parent, node))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in edges and rng.random() < extra_edge_probability:
                edges.add((i, j))
    return UndirectedGraph.of(range(n), sorted(edges))


def random_bounded_degree_graph(
    n: int,
    max_degree: int,
    target_edges: int | None = None,
    rng: random.Random | None = None,
) -> UndirectedGraph:
    """A random loop-free graph whose degree never exceeds ``max_degree``.

    Greedy edge insertion; used to exercise the Prop 5.5 construction, whose
    relation arity is ``Δ + 1``.
    """
    rng = resolve_rng(rng)
    if target_edges is None:
        target_edges = (n * max_degree) // 3
    degree = {u: 0 for u in range(n)}
    edges: set[tuple[int, int]] = set()
    candidates = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(candidates)
    for i, j in candidates:
        if len(edges) >= target_edges:
            break
        if degree[i] < max_degree and degree[j] < max_degree:
            edges.add((i, j))
            degree[i] += 1
            degree[j] += 1
    return UndirectedGraph.of(range(n), sorted(edges))


def random_connected_bounded_degree_graph(
    n: int, max_degree: int, rng: random.Random | None = None
) -> UndirectedGraph:
    """Connected and degree-bounded: a path backbone plus random extras.

    Requires ``max_degree >= 2``.  The path consumes at most two degrees per
    node, and extras are added only while both endpoints have headroom.
    """
    rng = resolve_rng(rng)
    if max_degree < 2:
        raise ValueError("a connected graph on n >= 3 nodes needs max_degree >= 2")
    degree = {u: 0 for u in range(n)}
    edges: set[tuple[int, int]] = set()
    for node in range(n - 1):
        edges.add((node, node + 1))
        degree[node] += 1
        degree[node + 1] += 1
    candidates = [(i, j) for i in range(n) for j in range(i + 2, n)]
    rng.shuffle(candidates)
    extras = n // 2
    for i, j in candidates:
        if extras <= 0:
            break
        if degree[i] < max_degree and degree[j] < max_degree:
            edges.add((i, j))
            degree[i] += 1
            degree[j] += 1
            extras -= 1
    return UndirectedGraph.of(range(n), sorted(edges))
