"""Random-number utilities shared by the samplers.

All scalar samplers take an optional :class:`random.Random`; passing a
seeded instance makes every experiment reproducible.  ``weighted_choice``
works on exact integer weights so that sampling distributions match the
paper's rational transition probabilities (Lemma 6.2) with no
floating-point drift; :class:`CumulativeWeights` is its build-once form
for hot loops that draw from the same weight table many times.

**Vector-plane substreams.**  The vectorized sample plane
(:mod:`repro.sampling.vectorized`) does not consume ``random.Random`` at
all: it derives one counter-based substream per sample *batch* via
:func:`numpy_substream`.  The reproducibility contract, in one sentence:
**a pool seed hashes once to a 128-bit Philox key
(``SeedSequence(entropy=seed mod 2**128).generate_state(2)``,
:func:`philox_key`), and batch ``b`` is drawn from
``Philox(key, counter = b · 2**192)``** — counter blocks are 256-bit and
a batch never consumes ``2**192`` of them, so substreams cannot overlap,
and the stream is a pure function of ``(seed, batch index, batch
size)``: independent of request order, of how far previous requests grew
the pool, and of the process that draws it.  (Counter-based keying is
why batch construction is a few microseconds — no per-batch seed
hashing.)  ``numpy`` is optional (the ``repro-uocqa[fast]`` extra);
:data:`HAVE_NUMPY` reports availability, and setting the environment
variable ``REPRO_UOCQA_NO_NUMPY`` forces the scalar fallback even when
numpy is installed (used by CI to exercise the fallback matrix).
"""

from __future__ import annotations

import os
import random
from bisect import bisect_right
from itertools import accumulate
from typing import Sequence, TypeVar

try:  # pragma: no cover - exercised via the CI fallback matrix
    if os.environ.get("REPRO_UOCQA_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_UOCQA_NO_NUMPY")
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: Whether the vectorized sample plane can run in this interpreter.
HAVE_NUMPY = _numpy is not None

T = TypeVar("T")


def resolve_rng(rng: random.Random | None) -> random.Random:
    """The given generator, or a fresh unseeded one.

    The documented escape hatch from seed discipline: callers that
    *choose* irreproducibility (``rng=None``) funnel through here, so
    there is exactly one entropy-seeded construction site in the
    package and everything else must thread a seed.
    """
    return rng if rng is not None else random.Random()  # repro-lint: disable=RL001


class CumulativeWeights:
    """A build-once cumulative table for repeated exact weighted draws.

    :func:`weighted_choice` re-scans its weight list on every call; hot
    loops that draw from the *same* table many times (e.g. the sequence
    sampler's per-state category draw, Lemma 6.2) build one
    ``CumulativeWeights`` instead — the cumulative sums are accumulated
    once (``itertools.accumulate``) and each draw is a single
    ``randrange`` plus a ``bisect``.  Draws consume the RNG exactly like
    ``weighted_choice`` (one ``randrange(total)``) and return the same
    index, so swapping one for the other never changes a seeded stream.
    """

    __slots__ = ("cumulative", "total")

    def __init__(self, weights: Sequence[int]):
        self.cumulative: tuple[int, ...] = tuple(accumulate(weights))
        if not self.cumulative or self.cumulative[-1] <= 0:
            raise ValueError("total weight must be positive")
        self.total: int = self.cumulative[-1]

    def __len__(self) -> int:
        """Number of categories in the table."""
        return len(self.cumulative)

    def pick(self, rng: random.Random) -> int:
        """One exact draw: index ``i`` with probability ``weights[i]/total``."""
        return bisect_right(self.cumulative, rng.randrange(self.total))

    def choice(self, items: Sequence[T], rng: random.Random) -> T:
        """Like :meth:`pick`, but returning ``items[i]`` directly."""
        if len(items) != len(self.cumulative):
            raise ValueError("items and weights must have equal length")
        return items[self.pick(rng)]


def weighted_choice(items: Sequence[T], weights: Sequence[int], rng: random.Random) -> T:
    """Choose ``items[i]`` with probability ``weights[i] / sum(weights)``.

    Weights are exact non-negative integers (e.g. subtree sequence counts),
    so the induced distribution is exactly the intended rational one.
    One-shot convenience over :class:`CumulativeWeights` (same RNG
    consumption: a single ``randrange`` of the total).
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return CumulativeWeights(weights).choice(items, rng)


def uniform_choice(items: Sequence[T], rng: random.Random) -> T:
    """Choose uniformly among ``items`` (which must be non-empty)."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[rng.randrange(len(items))]


def philox_key(seed: int | None):
    """The 128-bit Philox key a pool seed hashes to (module docstring).

    One ``SeedSequence`` expansion per *pool* — planes cache the result
    and pass it back to :func:`numpy_substream`, so per-batch substream
    construction never re-hashes.  With ``seed=None`` the entropy comes
    from the OS — callers wanting a reproducible but unseeded *pool*
    should draw one value via :func:`fresh_entropy` and treat it as the
    seed for every batch.
    """
    if _numpy is None:  # pragma: no cover - guarded by HAVE_NUMPY at call sites
        raise RuntimeError(
            "the vectorized sample plane requires numpy; "
            "install the 'repro-uocqa[fast]' extra"
        )
    entropy = fresh_entropy() if seed is None else seed % (1 << 128)
    return _numpy.random.SeedSequence(entropy=entropy).generate_state(
        2, dtype=_numpy.uint64
    )


def numpy_substream(seed: int | None, stream: int, key=None):
    """A ``numpy.random.Generator`` for one vector-plane substream.

    Implements the seeding contract of the module docstring: substream
    ``stream`` of pool seed ``seed`` is
    ``Philox(key=philox_key(seed), counter=stream * 2**192)``.  Passing a
    cached ``key`` skips the per-call hash (planes do); the result is
    identical either way.
    """
    if key is None:
        key = philox_key(seed)
    bit_generator = _numpy.random.Philox(key=key, counter=stream << 192)
    return _numpy.random.Generator(bit_generator)


def fresh_entropy() -> int:
    """One OS-derived 128-bit entropy value for an unseeded vector pool."""
    return int.from_bytes(os.urandom(16), "little")
