"""Random-number utilities shared by the samplers.

All samplers take an optional :class:`random.Random`; passing a seeded
instance makes every experiment reproducible.  ``weighted_choice`` works on
exact integer weights so that sampling distributions match the paper's
rational transition probabilities with no floating-point drift.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def resolve_rng(rng: random.Random | None) -> random.Random:
    """The given generator, or a fresh unseeded one."""
    return rng if rng is not None else random.Random()


def weighted_choice(items: Sequence[T], weights: Sequence[int], rng: random.Random) -> T:
    """Choose ``items[i]`` with probability ``weights[i] / sum(weights)``.

    Weights are exact non-negative integers (e.g. subtree sequence counts),
    so the induced distribution is exactly the intended rational one.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = sum(weights)
    if total <= 0:
        raise ValueError("total weight must be positive")
    pick = rng.randrange(total)
    cumulative = 0
    for item, weight in zip(items, weights):
        cumulative += weight
        if pick < cumulative:
            return item
    raise AssertionError("unreachable: weights exhausted")  # pragma: no cover


def uniform_choice(items: Sequence[T], rng: random.Random) -> T:
    """Choose uniformly among ``items`` (which must be non-empty)."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[rng.randrange(len(items))]
