"""Sampling from the uniform-operations chain (Lemmas 7.2 and D.7).

``M_uo`` is local: at each step every justified operation is equally likely,
so sampling a leaf according to the leaf distribution is a straightforward
random walk — no counting oracle is needed, and (unlike the other samplers)
this works for *arbitrary FDs*, exactly as the paper notes for Lemma 7.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.operations import sorted_justified_operations
from ..core.sequences import RepairingSequence
from .rng import resolve_rng, uniform_choice


@dataclass(frozen=True)
class WalkResult:
    """One trajectory of the uniform-operations walk.

    ``probability`` is the exact leaf-distribution mass ``π(s)`` of the
    sampled sequence (the product of ``1/|Ops|`` along the path) — handy for
    diagnostics such as Prop D.6's exponentially small leaves.
    """

    sequence: RepairingSequence
    repair: Database
    probability: Fraction


class UniformOperationsSampler:
    """Draws leaves of ``M_uo(D)`` (or ``M_uo,1(D)``) per the leaf distribution."""

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        rng: random.Random | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.rng = resolve_rng(rng)

    def walk(self) -> WalkResult:
        """One full repairing walk from ``D`` to a consistent state."""
        state = self.database
        operations = []
        probability = Fraction(1)
        while True:
            available = sorted_justified_operations(
                state, self.constraints, self.singleton_only
            )
            if not available:
                break
            chosen = uniform_choice(available, self.rng)
            probability /= len(available)
            operations.append(chosen)
            state = chosen.apply(state)
        return WalkResult(RepairingSequence(tuple(operations)), state, probability)

    def sample(self) -> Database:
        """The repair of one walk (most callers only need the result)."""
        return self.walk().repair

    def __iter__(self):
        while True:
            yield self.sample()


def sample_uniform_operations_repair(
    database: Database,
    constraints: FDSet,
    rng: random.Random | None = None,
    singleton_only: bool = False,
) -> Database:
    """One-shot convenience wrapper around :class:`UniformOperationsSampler`."""
    return UniformOperationsSampler(database, constraints, singleton_only, rng).sample()
